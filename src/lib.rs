//! Umbrella crate for the DDSketch reproduction workspace: re-exports every
//! member crate so examples and integration tests have a single dependency
//! surface.

pub use datasets;
pub use ddsketch;
pub use evalkit;
pub use gkarray;
pub use hdrhist;
pub use kll;
pub use momentsketch;
pub use pipeline;
pub use sketch_core;
pub use tdigest;
