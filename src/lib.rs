//! Umbrella crate for the DDSketch reproduction workspace: re-exports every
//! member crate so examples and integration tests have a single dependency
//! surface.
//!
//! # Quick start: a sketch fleet on loopback
//!
//! The workspace's deployment story (paper Figure 1) runs end to end
//! over real sockets via [`sketchd`]: agents build per-window sketches
//! locally, ship them as `DDSF` frames, and a server folds every
//! tenant's stream into state it answers quantile queries from —
//! *exactly*, because DDSketch's full mergeability makes the folded
//! state bit-identical to one sketch over the union of all raw data.
//!
//! | layer | crate | role |
//! |-------|-------|------|
//! | sketch | [`ddsketch`] | the quantile sketch + `DDS2` codec + `DDSF` frame streams |
//! | pipeline | [`pipeline`] | decode-free [`pipeline::Aggregator`], [`pipeline::TimeSeriesStore`], concurrent ingest planes |
//! | fleet | [`sketchd`] | TCP/Unix-socket server (`ServerHandle`), agent library (`AgentSender`), query client (`QueryClient`) |
//! | evaluation | [`evalkit`], [`datasets`] | accuracy/size/merge harnesses and generators |
//! | rivals | [`gkarray`], [`kll`], [`tdigest`], [`hdrhist`], [`momentsketch`] | the paper's comparison sketches |
//!
//! The ingest wire protocol is one handshake line + varint-length-framed
//! envelopes; the query protocol is plain text lines (`PING`, `STATS`,
//! `QUANTILE`, `SERIES`, `DUMP`, `SYNC`, `CHECKPOINT`, …) — both are
//! tabled in full in the [`sketchd`] crate docs.
//!
//! A complete loopback walkthrough (this test really runs a server):
//!
//! ```
//! use ddsketch_repro::sketchd::{AgentSender, Bind, QueryClient, ServerConfig, ServerHandle};
//! use ddsketch_repro::ddsketch::SketchConfig;
//!
//! // 1. A server on an OS-assigned loopback port.
//! let server = ServerHandle::spawn(
//!     &Bind::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! // 2. An agent ships one per-window sketch for tenant "acme".
//! let mut sketch = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
//! for v in [2.0, 8.0, 19.0, 42.0] {
//!     sketch.add(v).unwrap();
//! }
//! let mut agent = AgentSender::connect(server.endpoint().clone(), "acme").unwrap();
//! agent.send("api.latency", 1700000000, &sketch).unwrap();
//! agent.close().unwrap();
//!
//! // 3. A dashboard queries the live server.
//! let mut client = QueryClient::connect(server.endpoint()).unwrap();
//! while client.stats().unwrap().frames_ingested < 1 {
//!     std::thread::sleep(std::time::Duration::from_millis(2));
//! }
//! client.sync().unwrap();
//! assert_eq!(client.count("acme").unwrap(), 4);
//! let p50 = client.quantile("acme", 0.5).unwrap();
//! assert!((p50 - 8.0).abs() / 8.0 <= 0.01, "within the α guarantee");
//! server.shutdown().unwrap();
//! ```
//!
//! `examples/aggregator.rs` scales this to 50 agents over a Unix domain
//! socket with corruption injection and a kill/restore epilogue;
//! `examples/weighted.rs` runs the f64 count plane end to end
//! (trace-sampled `DDS3` submissions + ingest-time decay);
//! `crates/bench/benches/server.rs` soaks it with ≥ 1M payloads
//! (`results/BENCH_server.json`).

pub use datasets;
pub use ddsketch;
pub use evalkit;
pub use gkarray;
pub use hdrhist;
pub use kll;
pub use momentsketch;
pub use pipeline;
pub use sketch_core;
pub use sketchd;
pub use tdigest;
