//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the tiny subset of `rand`'s API it actually uses:
//! [`Rng`] (object-safe core), [`RngExt`] (generic sampling helpers),
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`] (xoshiro256++,
//! the same family the real `SmallRng` uses on 64-bit targets).
//!
//! Determinism is part of the contract: every consumer seeds explicitly and
//! several tests assert bit-identical streams, so the generator here is a
//! fixed, portable algorithm rather than a platform-dependent one.

/// Object-safe random source: everything else derives from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an [`Rng`]'s raw bits.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable uniformly; implemented for the integer ranges the
/// workspace draws from.
pub trait SampleRange<T> {
    /// Draw one value in the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is ≤ span/2^64 — irrelevant for the
                // synthetic-data use here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u64, u32, usize, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Generic convenience layer over [`Rng`]; blanket-implemented (including
/// for `dyn Rng`), mirroring rand 0.9's `Rng` extension methods.
pub trait RngExt: Rng {
    /// Sample a value of type `T` uniformly from its full domain
    /// (`[0, 1)` for `f64`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; state is
    /// expanded from the seed with SplitMix64 exactly as the reference
    /// implementation recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(1..1_000u64);
            assert!((1..1_000).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dyn_rng: &mut dyn super::Rng = &mut rng;
        let x = dyn_rng.random::<f64>();
        assert!((0.0..1.0).contains(&x));
    }
}
