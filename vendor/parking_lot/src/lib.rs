//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] with
//! `parking_lot`'s ergonomics (no poisoning, `lock()` returns the guard
//! directly) backed by `std::sync::Mutex`.

/// Guard type re-exported for signatures; identical to std's.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion without poison-tracking: a panicked holder simply
/// releases the lock, matching `parking_lot` semantics closely enough for
/// the sharded-sketch use in this workspace.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable.
        assert_eq!(*m.lock(), 0);
    }
}
