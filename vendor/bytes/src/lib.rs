//! Minimal offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`]
//! methods the wire codec uses, implemented for `&[u8]` and `Vec<u8>`.

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        f64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"))
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_f64_le(1.5);
        buf.put_slice(b"ab");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 1.5);
        r.advance(1);
        assert_eq!(r.get_u8(), b'b');
        assert!(!r.has_remaining());
    }
}
