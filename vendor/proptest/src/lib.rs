//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace uses: the `proptest!`
//! macro over `#[test]` functions with `name in strategy` arguments, range
//! and tuple strategies, `collection::vec`, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Failing cases are reported
//! with their case number and are reproducible (the RNG is seeded from the
//! test's name), but there is **no shrinking** — failures print the raw
//! generated input via the assertion message instead.

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps `cargo test` quick
        // while still exercising the properties meaningfully.
        Self { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64 over a name-derived seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the property name so every run (and
    /// every machine) replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xDDB4_BE57_5EED_0001u64;
        for b in name.bytes() {
            state = state.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn next_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirrors
    /// `proptest::strategy::Strategy::prop_map`; no shrinking in this
    /// stand-in).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i32, i64, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// `any::<T>()` support: the full domain of `T`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`prelude::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Uniform over `{false, true}`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The full boolean domain (`proptest::bool::ANY`).
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        #[inline]
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.next_in(self.size.start, self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use super::{Any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Assert a condition inside a property; failure aborts the whole test run
/// (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: one or more `#[test]` functions whose arguments
/// are drawn from strategies, run for `config.cases` random cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i32..50, y in 1u64..20, f in 0.5f64..2.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..20).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples(ops in crate::collection::vec((-10i32..10, 1u64..5), 1..40)) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
            for (i, c) in ops {
                prop_assert!((-10..10).contains(&i));
                prop_assert!((1..5).contains(&c));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honoured(b in any::<u8>()) {
            let _ = b;
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
