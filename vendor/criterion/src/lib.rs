//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`, `Bencher::iter`/`iter_batched`, throughput annotation,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple but
//! honest methodology: warm up for `warm_up_time`, size the measurement loop
//! from the warm-up estimate, then report the mean wall-clock time per
//! iteration (median of 3 measurement batches) and derived throughput.
//!
//! `--test` (what `cargo bench -- --test` passes) runs every benchmark body
//! exactly once as a smoke test and skips measurement. Any other non-flag
//! CLI argument is treated as a substring filter on benchmark IDs.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` if they prefer it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

/// One measured benchmark result, retained so a bench `main` can emit the
/// repo's machine-readable `results/BENCH_*.json` after the groups run.
#[derive(Debug, Clone)]
pub struct MeasuredResult {
    /// Full benchmark ID (`group/function/parameter`).
    pub id: String,
    /// Median-of-batches wall-clock time per iteration.
    pub ns_per_iter: f64,
    /// The group's throughput annotation at measurement time, if any.
    pub throughput: Option<Throughput>,
}

/// Results accumulate here as groups report; `--test` measures nothing so
/// smoke runs leave it empty.
static RESULTS: Mutex<Vec<MeasuredResult>> = Mutex::new(Vec::new());

/// Drain every result measured so far.
pub fn take_measured_results() -> Vec<MeasuredResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Write the measured results in the workspace's standard `BENCH_*.json`
/// schema (id → ns/iter plus derived throughput) — the same shape the
/// hand-rolled codec/ingest/server benches emit, so every trajectory can
/// be gated and diffed alike. Skipped under `--test` or an ID filter: a
/// partial run must never overwrite a full trajectory.
pub fn write_bench_json(bench: &str, path: &str) {
    let mut test_mode = false;
    let mut filtered = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => test_mode = true,
            s if s.starts_with('-') => {}
            _ => filtered = true,
        }
    }
    let results = take_measured_results();
    if test_mode || filtered || results.is_empty() {
        return;
    }
    let mut out =
        format!("{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}",
            r.id, r.ns_per_iter
        ));
        match r.throughput {
            Some(Throughput::Elements(n)) => out.push_str(&format!(
                ", \"melem_per_s\": {:.3}",
                n as f64 / r.ns_per_iter * 1e3
            )),
            Some(Throughput::Bytes(n)) => out.push_str(&format!(
                ", \"mb_per_ms\": {:.3}",
                n as f64 / r.ns_per_iter * 1e3 / 1024.0
            )),
            None => {}
        }
        out.push_str(if k + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("\nmachine-readable results -> {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; the stand-in times the routine
/// alone for every variant, so the distinction is cosmetic.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Few, large inputs.
    LargeInput,
    /// Many, small inputs.
    SmallInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an ID from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an ID from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level benchmark driver (config + parsed CLI).
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // ignore harness flags (--bench, …)
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the stand-in sizes its loops from
    /// the warm-up estimate instead of a fixed sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into().id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            test_mode: self.criterion.test_mode,
            ns_per_iter: None,
        };
        f(&mut bencher);
        report(&full_id, &bencher, self.throughput);
        self
    }

    /// End the group (no-op; results are printed eagerly).
    pub fn finish(&mut self) {}
}

/// Times a closure; handed to the benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    /// Measured mean, filled by `iter`/`iter_batched`.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Benchmark `routine` by calling it repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run until the clock expires, counting iterations to
        // estimate the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        // Measurement: 3 batches, each sized to a third of measurement_time;
        // report the median batch to damp scheduler noise.
        let batch_iters = ((self.measurement.as_nanos() as f64 / 3.0 / est_ns) as u64).max(1);
        let mut samples = [0.0f64; 3];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            *sample = start.elapsed().as_nanos() as f64 / batch_iters as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(samples[1]);
    }

    /// Benchmark `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let deadline = Instant::now() + self.warm_up;
        let mut est = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            est += start.elapsed();
            warm_iters += 1;
        }
        let est_ns = (est.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let total_iters =
            ((self.measurement.as_nanos() as f64 / est_ns) as u64).clamp(1, 1_000_000);
        let mut timed = Duration::ZERO;
        for _ in 0..total_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.ns_per_iter = Some(timed.as_nanos() as f64 / total_iters as f64);
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    match bencher.ns_per_iter {
        None => println!("{id:<50} ok (smoke)"),
        Some(ns) => {
            RESULTS.lock().expect("results lock").push(MeasuredResult {
                id: id.to_string(),
                ns_per_iter: ns,
                throughput,
            });
            let time = human_time(ns);
            match throughput {
                Some(Throughput::Elements(n)) => {
                    let rate = n as f64 / ns * 1e3; // Melem/s
                    println!("{id:<50} time: {time:>12}   thrpt: {rate:>10.2} Melem/s");
                }
                Some(Throughput::Bytes(n)) => {
                    let rate = n as f64 / ns * 1e3 / 1024.0; // GiB-ish/s in MB/ms
                    println!("{id:<50} time: {time:>12}   thrpt: {rate:>10.2} MB/ms");
                }
                None => println!("{id:<50} time: {time:>12}"),
            }
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else {
        format!("{:.2} ms/iter", ns / 1e6)
    }
}

/// Define a group runner function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(30));
        // Force non-test mode regardless of harness args.
        c.test_mode = false;
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
