//! Minimal offline stand-in for `crossbeam`: the `channel::unbounded` MPSC
//! channel the pipeline simulator uses, backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer single-consumer unbounded channel.

    /// Error returned when every receiver is gone.
    pub use std::sync::mpsc::SendError;

    /// Sending half; clonable across producer threads.
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking iterator that ends when all senders are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Receive one message, blocking.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_then_drain() {
            let (tx, rx) = super::unbounded::<u32>();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    });
                }
            });
            drop(tx);
            assert_eq!(rx.iter().count(), 400);
        }
    }
}
