//! Minimal offline stand-in for `crossbeam`: the `channel::unbounded` MPSC
//! channel the pipeline simulator uses, backed by `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer single-consumer unbounded channel.

    /// Error returned when every receiver is gone.
    pub use std::sync::mpsc::SendError;

    /// Sending half; clonable across producer threads.
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking iterator that ends when all senders are dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Receive one message, blocking.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.0.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_then_drain() {
            let (tx, rx) = super::unbounded::<u32>();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    });
                }
            });
            drop(tx);
            assert_eq!(rx.iter().count(), 400);
        }
    }
}

pub mod utils {
    //! Cache-line alignment helper mirroring `crossbeam_utils::CachePadded`.

    /// Pads and aligns a value to (at least) one cache line so that two
    /// `CachePadded` values never share a line — the standard cure for
    /// false sharing between per-thread atomic counters.
    ///
    /// 128 bytes covers the adjacent-line prefetcher on modern x86 (which
    /// effectively operates on 128-byte sector pairs) as well as 128-byte
    /// lines on some aarch64 parts; upstream crossbeam makes the same
    /// choice for these targets.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value` to its own cache line.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Consume the padding, returning the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligns_and_derefs() {
            let padded = CachePadded::new(7u64);
            assert_eq!(*padded, 7);
            assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
            assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
            assert_eq!(padded.into_inner(), 7);
            let mut p = CachePadded::from(1u32);
            *p += 1;
            assert_eq!(p.into_inner(), 2);
        }
    }
}
