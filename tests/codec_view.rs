//! Integration: the decode-free wire plane.
//!
//! The contract under test: a [`SketchView`] over encoded bytes is
//! indistinguishable from the live sketch that produced them — header
//! accessors, bin walks (from either end, in any interleaving), quantile
//! estimates (bit-identical, collapsed tails included) — and the mixed
//! live∪view merge plane (`merge_sources`, `merged_quantiles_sources`,
//! `Aggregator`) equals decode-then-merge exactly. Plus the
//! checkpoint/restore round-trip property for `TimeSeriesStore`.

use ddsketch::{
    AnyDDSketch, SketchConfig, SketchError, SketchSource, SketchView, SourceQuantileScratch,
};
use pipeline::{Aggregator, TimeSeriesStore};
use proptest::prelude::*;

const QS: [f64; 9] = [0.0, 0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

/// All five runtime configurations, with a bound small enough that the
/// value streams below actually collapse the bounded families.
fn configs() -> [SketchConfig; 5] {
    SketchConfig::all(0.01, 64)
}

fn build(config: SketchConfig, values: &[f64]) -> AnyDDSketch {
    let mut s = config.build().unwrap();
    for &v in values {
        s.add(v).unwrap();
    }
    s
}

/// Interesting fixed streams: empty, zero-only, negative-only, single
/// value, wide-range (collapsing for m = 64), mixed signs.
fn streams() -> Vec<Vec<f64>> {
    let mut wide = Vec::new();
    for i in 0..500 {
        wide.push(1.0002_f64.powi(i * 37) * 0.001);
    }
    let mut mixed = Vec::new();
    for i in 1..300 {
        mixed.push(match i % 4 {
            0 => 0.0,
            1 => f64::from(i) * 0.01,
            2 => -f64::from(i) * 3.0,
            _ => f64::from(i * i),
        });
    }
    vec![
        vec![],
        vec![0.0, 0.0, -0.0],
        (1..100).map(|i| -f64::from(i) * 0.5).collect(),
        vec![42.0],
        wide,
        mixed,
    ]
}

#[test]
fn view_header_and_bin_walks_match_the_live_sketch() {
    for config in configs() {
        for values in streams() {
            let sketch = build(config, &values);
            let bytes = sketch.encode();
            let view = SketchView::parse(&bytes).unwrap();
            let name = config.name();

            assert_eq!(view.config(), config, "{name}");
            assert_eq!(view.count(), sketch.count(), "{name}");
            assert_eq!(view.is_empty(), sketch.is_empty());
            assert_eq!(view.zero_count(), sketch.zero_count());
            assert_eq!(view.min(), sketch.min(), "{name}");
            assert_eq!(view.max(), sketch.max(), "{name}");
            assert_eq!(view.sum(), sketch.sum(), "{name}");
            assert_eq!(view.average(), sketch.average());
            assert_eq!(view.num_bins(), sketch.num_bins(), "{name}");
            assert_eq!(
                view.bin_limit().map(|l| l as u64).unwrap_or(0),
                config.max_bins as u64
            );

            // Forward, backward, and alternating walks over both stores.
            let payload = sketch.to_payload();
            for (walk, expected) in [
                (view.positive_bins(), &payload.positive),
                (view.negative_bins(), &payload.negative),
            ] {
                assert_eq!(walk.clone().collect::<Vec<_>>(), *expected, "{name}");
                let mut reversed: Vec<_> = walk.clone().rev().collect();
                reversed.reverse();
                assert_eq!(reversed, *expected, "{name}: rev must mirror");
                let mut front_back = Vec::new();
                let mut back = Vec::new();
                let mut iter = walk.clone();
                while let Some(front) = iter.next() {
                    front_back.push(front);
                    if let Some(b) = iter.next_back() {
                        back.push(b);
                    }
                }
                back.reverse();
                front_back.extend(back);
                assert_eq!(front_back, *expected, "{name}: alternating walk");
            }
        }
    }
}

#[test]
fn view_quantiles_are_bit_identical_to_the_live_sketch() {
    for config in configs() {
        for values in streams() {
            let sketch = build(config, &values);
            let bytes = sketch.encode();
            let view = SketchView::parse(&bytes).unwrap();
            let name = config.name();
            if sketch.is_empty() {
                assert!(matches!(view.quantile(0.5), Err(SketchError::Empty)));
                continue;
            }
            assert_eq!(
                view.quantiles(&QS).unwrap(),
                sketch.quantiles(&QS).unwrap(),
                "{name}: view quantiles must be bit-identical"
            );
            assert!(view.quantiles(&[1.5]).is_err());
        }
    }
}

proptest! {
    // The central equivalence, under arbitrary streams: view quantile
    // walks over encoded bytes ≡ the live sketch, for every config —
    // including collapsed tails (m = 64 with values spanning ~12 decades)
    // and sketches that are empty or negative-only.
    #[test]
    fn prop_view_walks_equal_live_sketch(
        raw in proptest::collection::vec(-1e6f64..1e6, 0..400)
    ) {
        // Sprinkle exact zeros and near-zero values into the stream so
        // the zero bucket and both store sides are exercised.
        let values: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| match i % 7 {
                0 => 0.0,
                1 => v * 1e-10,
                _ => v,
            })
            .collect();
        for config in configs() {
            let sketch = build(config, &values);
            let bytes = sketch.encode();
            let view = SketchView::parse(&bytes).unwrap();
            prop_assert_eq!(view.count(), sketch.count());
            prop_assert_eq!(view.min(), sketch.min());
            prop_assert_eq!(view.max(), sketch.max());
            let payload = sketch.to_payload();
            prop_assert_eq!(view.positive_bins().collect::<Vec<_>>(), payload.positive);
            prop_assert_eq!(view.negative_bins().collect::<Vec<_>>(), payload.negative);
            if sketch.is_empty() {
                prop_assert!(matches!(view.quantile(0.5), Err(SketchError::Empty)));
            } else {
                prop_assert_eq!(
                    view.quantiles(&QS).unwrap(),
                    sketch.quantiles(&QS).unwrap(),
                    "{}", config.name()
                );
            }
        }
    }

    // Mixed-source plane ≡ decode-then-merge, under arbitrary shard
    // streams: both the zero-materialization quantile walk and the
    // add_bins fold must agree with materializing every payload.
    #[test]
    fn prop_mixed_sources_equal_decode_then_merge(
        shards in proptest::collection::vec(
            proptest::collection::vec(-1e5f64..1e5, 0..150),
            1..6,
        ),
        live_count in 0usize..3,
    ) {
        for config in configs() {
            let sketches: Vec<AnyDDSketch> =
                shards.iter().map(|vals| build(config, vals)).collect();
            let (live, encoded) = sketches.split_at(live_count.min(sketches.len()));
            let frames: Vec<Vec<u8>> = encoded.iter().map(|s| s.encode()).collect();
            let views: Vec<SketchView<'_>> =
                frames.iter().map(|f| SketchView::parse(f).unwrap()).collect();

            // Baseline: materialize everything.
            let mut reference = config.build().unwrap();
            for s in &sketches {
                reference.merge_from(s).unwrap();
            }

            // merge_sources fold.
            let mut folded = config.build().unwrap();
            folded
                .merge_sources(
                    live.iter()
                        .map(SketchSource::Live)
                        .chain(views.iter().map(|v| SketchSource::View(*v))),
                )
                .unwrap();
            prop_assert_eq!(
                folded.to_payload(),
                reference.to_payload(),
                "{}: fold must equal decode-then-merge",
                config.name()
            );

            // merged_quantiles_sources walk.
            if !reference.is_empty() {
                let mut scratch = SourceQuantileScratch::default();
                let mut out = Vec::new();
                AnyDDSketch::merged_quantiles_sources(
                    live.iter()
                        .map(SketchSource::Live)
                        .chain(views.iter().map(|v| SketchSource::View(*v))),
                    &QS,
                    &mut scratch,
                    &mut out,
                )
                .unwrap();
                prop_assert_eq!(
                    out,
                    reference.quantiles(&QS).unwrap(),
                    "{}: walk must equal decode-then-merge-then-query",
                    config.name()
                );
            }
        }
    }

    // `TimeSeriesStore::restore(checkpoint(s))` round-trips a populated
    // store exactly: configuration, window width, interned ids, cells,
    // and quantiles.
    #[test]
    fn prop_checkpoint_restore_roundtrips(
        records in proptest::collection::vec(
            (0u8..4, 0u64..500, -1e4f64..1e4),
            0..120,
        ),
        config_idx in 0usize..5,
        window_secs in 1u64..30,
    ) {
        let config = configs()[config_idx];
        let mut ts = TimeSeriesStore::with_config(config, window_secs).unwrap();
        let metrics = ["api.lat", "db.query", "q", "api.lat.p99"];
        for &(m, ts_secs, v) in &records {
            ts.record(metrics[m as usize], ts_secs, v).unwrap();
        }
        let bytes = ts.checkpoint(Vec::new()).unwrap();
        let restored = TimeSeriesStore::restore(bytes.as_slice()).unwrap();
        prop_assert_eq!(restored.config(), ts.config());
        prop_assert_eq!(restored.window_secs(), ts.window_secs());
        prop_assert_eq!(restored.num_cells(), ts.num_cells());
        prop_assert_eq!(
            restored.metrics().map(|(i, n)| (i, n.to_string())).collect::<Vec<_>>(),
            ts.metrics().map(|(i, n)| (i, n.to_string())).collect::<Vec<_>>()
        );
        for ((m, w, original), (rm, rw, restored_cell)) in ts.cells().zip(restored.cells()) {
            prop_assert_eq!((m, w), (rm, rw));
            prop_assert_eq!(original.to_payload(), restored_cell.to_payload());
        }
        // Quantile queries agree on every populated cell.
        for (m, w, cell) in ts.cells() {
            prop_assert_eq!(restored.quantile(m, w, 0.9), cell.quantile(0.9).ok());
        }
    }
}

/// `SketchViewMeta` detaches a parse result and rebinds in O(1): the
/// rebound view must be indistinguishable from a fresh parse, and a
/// buffer of the wrong length must be rejected.
#[test]
fn view_meta_rebinds_without_reparsing() {
    let config = SketchConfig::dense_collapsing(0.01, 64);
    let sketch = build(
        config,
        &(1..200).map(|i| f64::from(i) * 0.3).collect::<Vec<_>>(),
    );
    let bytes = sketch.encode();
    let meta = SketchView::parse(&bytes).unwrap().meta();
    assert_eq!(meta.config(), config);
    assert_eq!(meta.count(), sketch.count());
    let rebound = meta.bind(&bytes).unwrap();
    assert_eq!(
        rebound.quantiles(&QS).unwrap(),
        sketch.quantiles(&QS).unwrap()
    );
    assert_eq!(
        rebound.positive_bins().collect::<Vec<_>>(),
        sketch.to_payload().positive
    );
    assert!(matches!(
        meta.bind(&bytes[..bytes.len() - 1]),
        Err(SketchError::Malformed(_))
    ));
}

/// The aggregator over many encoded payloads equals one big decode-based
/// fold, through fold boundaries, for every configuration.
#[test]
fn aggregator_matches_reference_through_folds() {
    for config in configs() {
        let mut agg = Aggregator::with_config(config, 5).unwrap();
        let mut reference = config.build().unwrap();
        for k in 1..=23u32 {
            let values: Vec<f64> = (1..=40)
                .map(|i| f64::from(i * k) * if i % 7 == 0 { -0.1 } else { 0.9 })
                .collect();
            let sketch = build(config, &values);
            let bytes = sketch.encode();
            agg.feed(&bytes).unwrap();
            reference.merge_from(&sketch).unwrap();
            // Querying mid-stream (arbitrary pending counts) stays exact.
            if k % 3 == 0 {
                assert_eq!(
                    agg.quantiles(&QS).unwrap(),
                    reference.quantiles(&QS).unwrap(),
                    "{} after {k} frames",
                    config.name()
                );
            }
        }
        assert_eq!(agg.count(), reference.count());
        assert_eq!(
            agg.quantiles(&QS).unwrap(),
            reference.quantiles(&QS).unwrap()
        );
    }
}
