//! Property tests for the batched ingestion fast path (`DDSketch::add_slice`
//! → `IndexMapping::index_batch` → `Store::add_indices`): for every preset,
//! ingesting a stream in batches must be **bit-identical** to ingesting it
//! one value at a time — same bins, `count`, `sum`, `min`, `max` — across
//! mixed-sign streams, zeros and subnormals, and arbitrary batch splits.
//! Batches containing unsupported values (NaN, ±∞, out-of-range) must be
//! rejected without corrupting any sketch state.

use ddsketch::{presets, DDSketch, IndexMapping, QuantileSketch, SketchError, Store};
use proptest::prelude::*;

/// Assert that ingesting `values` via `add_slice` chunks of `batch` equals
/// scalar `add`s, field for field.
fn check_equivalence<M, SP, SN>(
    mut scalar: DDSketch<M, SP, SN>,
    mut batched: DDSketch<M, SP, SN>,
    values: &[f64],
    batch: usize,
    label: &str,
) where
    M: IndexMapping,
    SP: Store<Count = u64>,
    SN: Store<Count = u64>,
{
    for &v in values {
        scalar.add(v).unwrap();
    }
    for chunk in values.chunks(batch.max(1)) {
        batched.add_slice(chunk).unwrap();
    }
    assert_eq!(batched.count(), scalar.count(), "{label}: count");
    assert_eq!(
        batched.zero_count(),
        scalar.zero_count(),
        "{label}: zero bucket"
    );
    assert_eq!(
        batched.sum().to_bits(),
        scalar.sum().to_bits(),
        "{label}: sum must be bit-identical"
    );
    assert_eq!(batched.min(), scalar.min(), "{label}: min");
    assert_eq!(batched.max(), scalar.max(), "{label}: max");
    assert_eq!(
        batched.positive_store().bins_ascending(),
        scalar.positive_store().bins_ascending(),
        "{label}: positive bins"
    );
    assert_eq!(
        batched.negative_store().bins_ascending(),
        scalar.negative_store().bins_ascending(),
        "{label}: negative bins"
    );
    assert_eq!(
        batched.has_collapsed(),
        scalar.has_collapsed(),
        "{label}: collapse flag"
    );
    if !values.is_empty() {
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                batched.quantile(q).unwrap(),
                scalar.quantile(q).unwrap(),
                "{label}: quantile {q}"
            );
        }
    }
}

/// Run the equivalence check over every preset family.
fn check_all_presets(values: &[f64], batch: usize) {
    check_equivalence(
        presets::unbounded(0.01).unwrap(),
        presets::unbounded(0.01).unwrap(),
        values,
        batch,
        "unbounded",
    );
    // Small bin cap so collapsing engages on wide streams.
    check_equivalence(
        presets::logarithmic_collapsing(0.02, 64).unwrap(),
        presets::logarithmic_collapsing(0.02, 64).unwrap(),
        values,
        batch,
        "logarithmic_collapsing",
    );
    check_equivalence(
        presets::fast(0.02, 64).unwrap(),
        presets::fast(0.02, 64).unwrap(),
        values,
        batch,
        "fast",
    );
    check_equivalence(
        presets::sparse(0.01).unwrap(),
        presets::sparse(0.01).unwrap(),
        values,
        batch,
        "sparse",
    );
    check_equivalence(
        presets::paper_exact(0.02, 32).unwrap(),
        presets::paper_exact(0.02, 32).unwrap(),
        values,
        batch,
        "paper_exact",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_equals_scalar_on_positive_streams(
        values in proptest::collection::vec(1e-6f64..1e9, 0..400),
        batch in 1usize..130,
    ) {
        check_all_presets(&values, batch);
    }

    #[test]
    fn batched_equals_scalar_on_mixed_streams(
        values in proptest::collection::vec(-1e9f64..1e9, 0..400),
        batch in 1usize..130,
    ) {
        check_all_presets(&values, batch);
    }

    #[test]
    fn batched_equals_scalar_on_wide_magnitude_streams(
        exponents in proptest::collection::vec(-250i32..250, 1..200),
        batch in 1usize..64,
    ) {
        // Exercise the full indexable dynamic range (and heavy collapsing
        // in the bounded presets).
        let values: Vec<f64> = exponents
            .iter()
            .map(|&e| if e % 3 == 0 { -1.0 } else { 1.0 } * 10f64.powi(e / 2))
            .collect();
        check_all_presets(&values, batch);
    }
}

#[test]
fn zeros_and_subnormals_route_to_the_zero_bucket() {
    let values = [0.0, -0.0, 1e-320, -1e-321, 5.0, -5.0, 4.9e-324];
    check_all_presets(&values, 3);
    let mut s = presets::unbounded(0.01).unwrap();
    s.add_slice(&values).unwrap();
    assert_eq!(s.zero_count(), 5);
}

#[test]
fn unsupported_values_fail_the_batch_atomically() {
    let baseline = [1.0, 2.5, -3.0, 0.0];
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        s.add_slice(&baseline).unwrap();
        let bins_before = s.positive_store().bins_ascending();
        let count_before = s.count();
        let sum_before = s.sum();

        // Bad value in the middle of an otherwise-fine batch.
        let err = s.add_slice(&[7.0, bad, 9.0]).unwrap_err();
        assert!(matches!(err, SketchError::UnsupportedValue(_)), "{bad:?}");
        assert_eq!(s.count(), count_before, "{bad:?}: partial ingestion");
        assert_eq!(s.sum(), sum_before, "{bad:?}: sum corrupted");
        assert_eq!(s.positive_store().bins_ascending(), bins_before);

        // The sketch remains fully usable afterwards.
        s.add_slice(&[7.0, 9.0]).unwrap();
        assert_eq!(s.count(), count_before + 2);
    }
}

#[test]
fn out_of_range_magnitudes_are_rejected_atomically() {
    // A tight α leaves the indexable range narrow enough to overflow.
    let mut s = presets::unbounded(1e-9).unwrap();
    let too_big = s.mapping().max_indexable_value() * 2.0;
    for batch in [vec![too_big], vec![1.0, too_big], vec![-too_big, 1.0]] {
        assert!(s.add_slice(&batch).is_err());
        assert!(s.is_empty(), "rejected batch must leave the sketch empty");
    }
    s.add_slice(&[1.0, 2.0]).unwrap();
    assert_eq!(s.count(), 2);
}

#[test]
fn quantiles_matches_repeated_quantile_for_batched_sketches() {
    let mut s = presets::fast(0.01, 2048).unwrap();
    let values: Vec<f64> = (1..=4000)
        .map(|i| {
            let v = (i as f64).powf(1.4) * 0.01;
            if i % 4 == 0 {
                -v
            } else {
                v
            }
        })
        .collect();
    for chunk in values.chunks(512) {
        s.add_slice(chunk).unwrap();
    }
    let qs = [0.99, 0.0, 0.5, 0.25, 1.0, 0.5, 0.75];
    let at_once = QuantileSketch::quantiles(&s, &qs).unwrap();
    for (&q, &got) in qs.iter().zip(&at_once) {
        assert_eq!(got, s.quantile(q).unwrap(), "q = {q}");
    }
}
