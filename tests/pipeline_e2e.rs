//! Integration: the distributed pipeline end-to-end, including the wire
//! codec and concurrent producers, parameterized over the runtime sketch
//! configurations.

use ddsketch::SketchConfig;
use pipeline::{run_sequential, run_simulation, ConcurrentSketch, SimConfig};

/// The configurations the e2e suite sweeps: the production default
/// (dense-collapsing), the speed-optimized cubic mapping, and the
/// memory-bound sparse store.
fn e2e_configs() -> [SketchConfig; 3] {
    [
        SketchConfig::dense_collapsing(0.01, 2048),
        SketchConfig::fast(0.01, 2048),
        SketchConfig::sparse(0.01),
    ]
}

#[test]
fn distributed_aggregation_is_lossless() {
    for sketch in e2e_configs() {
        let config = SimConfig {
            workers: 6,
            requests_per_worker: 20_000,
            duration_secs: 60,
            window_secs: 10,
            sketch,
            seed: 77,
        };
        let report = run_simulation(&config).unwrap();
        let sequential = run_sequential(&config).unwrap();
        assert_eq!(report.total_requests, 120_000, "{}", sketch.name());
        assert_eq!(report.store.num_cells(), sequential.num_cells());
        for (metric, window_start, direct) in sequential.cells() {
            for q in [0.5, 0.9, 0.99] {
                assert_eq!(
                    report.store.quantile(metric, window_start, q),
                    direct.quantile(q).ok(),
                    "{}: {metric} @ {window_start} q={q}",
                    sketch.name(),
                );
            }
        }
    }
}

#[test]
fn rollups_compose() {
    for sketch in e2e_configs() {
        let config = SimConfig {
            workers: 3,
            requests_per_worker: 30_000,
            duration_secs: 120,
            window_secs: 5,
            sketch,
            ..SimConfig::default()
        };
        let report = run_simulation(&config).unwrap();
        // 5s → 20s → 60s must equal 5s → 60s directly.
        let via_20 = report.store.rollup(4).unwrap().rollup(3).unwrap();
        let direct = report.store.rollup(12).unwrap();
        assert_eq!(via_20.num_cells(), direct.num_cells());
        for (metric, window_start, cell) in direct.cells() {
            assert_eq!(
                via_20.quantile(metric, window_start, 0.95),
                cell.quantile(0.95).ok(),
                "{}: rollup composition mismatch at {metric} / {window_start}",
                sketch.name(),
            );
        }
    }
}

#[test]
fn concurrent_sketch_under_contention() {
    use std::sync::Arc;
    for sketch in e2e_configs() {
        let cs = Arc::new(ConcurrentSketch::with_config(sketch, 4).unwrap());
        // More threads than shards: forces lock contention on the hinted
        // path.
        std::thread::scope(|scope| {
            for t in 0..16u32 {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..5_000u32 {
                        cs.add_hinted(t as usize, 1.0 + f64::from(i % 1000))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(cs.count(), 16 * 5_000, "{}", sketch.name());
        let p50 = cs.quantile(0.5).unwrap();
        assert!((400.0..700.0).contains(&p50), "{} p50 {p50}", sketch.name());
        // The batched-quantile path answers from one snapshot.
        let qs = cs.quantiles(&[0.5, 0.99, 0.01]).unwrap();
        assert_eq!(qs[0], p50, "{}", sketch.name());
    }
}

#[test]
fn wire_roundtrip_through_simulation_payload_sizes() {
    let config = SimConfig {
        workers: 2,
        requests_per_worker: 5_000,
        duration_secs: 20,
        window_secs: 10,
        ..SimConfig::default()
    };
    let report = run_simulation(&config).unwrap();
    assert!(report.payloads > 0);
    // Sketch shipping must be dramatically cheaper than raw values.
    assert!(report.wire_bytes < report.total_requests * 8);
}
