//! Surface-parity audit: [`AnyDDSketch`] must dispatch every operation
//! bit-identically to the statically-typed preset it wraps.
//!
//! The drive script below is expanded **twice per configuration by one
//! macro** — once against the typed preset, once against the enum — so
//! the two runs are guaranteed to perform the same calls in the same
//! order; the collected [`Surface`] records are then compared field by
//! field. Because the macro calls every method by name on both receivers,
//! a method that exists on `DDSketch` but was forgotten (or wired to the
//! wrong preset call) in `AnyDDSketch` either fails to compile here or
//! diverges in the comparison — this file is the CI tripwire the enum's
//! hand-written dispatch needs.
//!
//! **Maintenance contract:** when a public method is added to `DDSketch`,
//! add it to `drive_surface!` (and to `AnyDDSketch`). The known,
//! deliberate asymmetries are `mapping()`/`positive_store()`/
//! `negative_store()` (type-level accessors; the enum exposes
//! `positive_bins`/`negative_bins` instead, compared below) and
//! `QuantileSketch::name` (the enum reports the config-precise name).

use ddsketch::{presets, AnyDDSketch, SketchConfig, Store};

/// Everything observable after the drive script ran.
#[derive(Debug, PartialEq)]
struct Surface {
    count: u64,
    is_empty: bool,
    zero_count: u64,
    sum: f64,
    average: Option<f64>,
    min: Option<f64>,
    max: Option<f64>,
    num_bins: usize,
    has_collapsed: bool,
    relative_accuracy: f64,
    quantile_errors: Vec<bool>,
    quantiles: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    add_errors: Vec<bool>,
    deletes: Vec<bool>,
    memory_after_release: usize,
    post_clear_count: u64,
    post_drain_min: Option<f64>,
    post_drain_sum: f64,
}

/// Run the full mutation + query script against `$sketch` (`&mut` to a
/// typed preset or an `AnyDDSketch` — the macro body is the single source
/// of truth for the shared surface).
macro_rules! drive_surface {
    ($sketch:expr) => {{
        let s = $sketch;
        // Weighted, scalar, batched and iterator ingestion.
        s.add_n(2.5, 3).unwrap();
        s.add(725.0).unwrap();
        s.add_slice(&[0.004, 81.0, -3.25, 0.0, 0.33]).unwrap();
        s.extend([8.5, f64::NAN, 16.25, -0.5]);
        // Rejected inputs must not mutate (and must agree on rejection).
        let add_errors = vec![
            s.add(f64::NAN).is_err(),
            s.add(f64::INFINITY).is_err(),
            s.add_slice(&[1.0, f64::NEG_INFINITY, 2.0]).is_err(),
            s.add_n(f64::NAN, 7).is_err(),
        ];
        // Deletions: present, bucket-empty, zero bucket, at the extremes.
        let deletes = vec![
            s.delete(2.5),
            s.delete(2.5),
            s.delete(1e9),
            s.delete(0.0),
            s.delete(0.0),
            s.delete(725.0), // the tracked maximum: bounds re-tighten
            s.delete(f64::NAN),
        ];
        // Merge plane: self-merge via both entry points.
        let snapshot = s.clone();
        s.merge_from(&snapshot).unwrap();
        s.merge_many(&[&snapshot]).unwrap();
        // Query surface.
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
        let quantile_errors = vec![
            s.quantile(1.5).is_err(),
            s.quantile(f64::NAN).is_err(),
            s.quantiles(&[0.5, -0.1]).is_err(),
            s.quantile_bounds(2.0).is_err(),
        ];
        let quantiles = s.quantiles(&qs).unwrap();
        for (&q, &est) in qs.iter().zip(&quantiles) {
            assert_eq!(est, s.quantile(q).unwrap(), "quantiles vs quantile at {q}");
        }
        let bounds: Vec<(f64, f64)> = qs.iter().map(|&q| s.quantile_bounds(q).unwrap()).collect();
        s.release_scratch();
        let memory_after_release = s.memory_bytes();
        let surface = Surface {
            count: s.count(),
            is_empty: s.is_empty(),
            zero_count: s.zero_count(),
            sum: s.sum(),
            average: s.average(),
            min: s.min(),
            max: s.max(),
            num_bins: s.num_bins(),
            has_collapsed: s.has_collapsed(),
            relative_accuracy: s.relative_accuracy(),
            quantile_errors,
            quantiles,
            bounds,
            add_errors,
            deletes,
            memory_after_release,
            post_clear_count: {
                s.clear();
                s.count()
            },
            // Drain-to-empty then re-add: the delete fix's reset path.
            post_drain_min: {
                s.add(0.1).unwrap();
                s.add(0.3).unwrap();
                assert!(s.delete(0.1) && s.delete(0.3));
                s.add(42.0).unwrap();
                s.min()
            },
            post_drain_sum: s.sum(),
        };
        surface
    }};
}

macro_rules! parity_tests {
    ($($name:ident: $config:expr => $preset:expr;)*) => {$(
        #[test]
        fn $name() {
            let config: SketchConfig = $config;
            let mut any = config.build().unwrap();
            let mut typed = $preset.unwrap();
            let from_any = drive_surface!(&mut any);
            let from_typed = drive_surface!(&mut typed);
            assert_eq!(
                from_any,
                from_typed,
                "AnyDDSketch drifted from its typed preset for {}",
                config.name()
            );
            // Bin-level identity and config round-trips.
            assert_eq!(any.positive_bins(), typed.positive_store().bins_ascending());
            assert_eq!(any.negative_bins(), typed.negative_store().bins_ascending());
            assert_eq!(any.config(), config);
            assert_eq!(any.memory_bytes(), typed.memory_bytes());
            assert_eq!(AnyDDSketch::from(typed).positive_bins(), any.positive_bins());
        }
    )*};
}

parity_tests! {
    unbounded_matches_preset:
        SketchConfig::unbounded(0.01) => presets::unbounded(0.01);
    dense_collapsing_matches_preset:
        SketchConfig::dense_collapsing(0.01, 64) => presets::logarithmic_collapsing(0.01, 64);
    fast_matches_preset:
        SketchConfig::fast(0.01, 64) => presets::fast(0.01, 64);
    sparse_matches_preset:
        SketchConfig::sparse(0.01) => presets::sparse(0.01);
    paper_exact_matches_preset:
        SketchConfig::paper_exact(0.01, 64) => presets::paper_exact(0.01, 64);
}

/// The static merge-plane entry points must also agree variant-for-
/// variant (they dispatch through a different macro arm than the
/// instance methods).
#[test]
fn static_merge_plane_dispatch_parity() {
    for config in SketchConfig::all(0.01, 64) {
        let mut shards = Vec::new();
        for k in 0..3usize {
            let mut s = config.build().unwrap();
            for i in 1..=(120 * (k + 1)) {
                let v = match i % 5 {
                    0 => 0.0,
                    1 | 2 => (i as f64).sqrt() * 2.0,
                    _ => -(i as f64) * 0.4,
                };
                s.add(v).unwrap();
            }
            shards.push(s);
        }
        let refs: Vec<&AnyDDSketch> = shards.iter().collect();
        let qs = [0.0, 0.5, 0.99, 1.0];
        let walked = AnyDDSketch::merged_quantiles(&refs, &qs).unwrap();
        let mut materialized = shards[0].clone();
        materialized.merge_many(&refs[1..]).unwrap();
        assert_eq!(
            walked,
            materialized.quantiles(&qs).unwrap(),
            "{}",
            config.name()
        );
        // The scratch-based walk and the weighted walk at unit weights
        // agree with the allocating one.
        let mut scratch = ddsketch::MergedQuantileScratch::default();
        let mut out = Vec::new();
        AnyDDSketch::merged_quantiles_into(shards.iter(), &qs, &mut scratch, &mut out).unwrap();
        assert_eq!(out, walked, "{}", config.name());
        let pairs: Vec<(&AnyDDSketch, f64)> = shards.iter().map(|s| (s, 1.0)).collect();
        assert_eq!(
            AnyDDSketch::weighted_merged_quantiles(&pairs, &qs).unwrap(),
            walked,
            "{}",
            config.name()
        );
    }
}
