//! Integration: the runtime-configuration surface — `SketchConfig`,
//! `DDSketchBuilder`, `AnyDDSketch`, and the self-describing wire format —
//! exercised across the whole configuration matrix.

use ddsketch::{
    presets, AnyDDSketch, DDSketchBuilder, MappingKind, SketchConfig, SketchError, Store, StoreKind,
};
use proptest::prelude::*;

/// Build every supported config at the given parameters.
fn matrix(alpha: f64, max_bins: usize) -> [SketchConfig; 5] {
    SketchConfig::all(alpha, max_bins)
}

/// Acceptance: an `AnyDDSketch` built from each of the five configs is
/// bit-identical (bins, count, sum, min, max) to its statically-typed
/// preset on the same stream.
#[test]
fn any_sketch_is_bit_identical_to_every_preset() {
    let values: Vec<f64> = (1..=20_000)
        .map(|i| {
            let v = (i as f64).powf(1.21) * 0.037;
            if i % 4 == 0 {
                -v
            } else {
                v
            }
        })
        .collect();
    let (alpha, max_bins) = (0.01, 512);

    macro_rules! check {
        ($config:expr, $preset:expr) => {{
            let config = $config;
            let mut any = config.build().unwrap();
            let mut preset = $preset;
            for chunk in values.chunks(900) {
                any.add_slice(chunk).unwrap();
            }
            for &v in &values {
                preset.add(v).unwrap();
            }
            assert_eq!(
                any.positive_bins(),
                preset.positive_store().bins_ascending(),
                "{}",
                config.name()
            );
            assert_eq!(
                any.negative_bins(),
                preset.negative_store().bins_ascending(),
                "{}",
                config.name()
            );
            assert_eq!(any.count(), preset.count());
            assert_eq!(any.sum(), preset.sum(), "sum must be bit-identical");
            assert_eq!(any.min(), preset.min());
            assert_eq!(any.max(), preset.max());
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                assert_eq!(
                    any.quantile(q).unwrap(),
                    preset.quantile(q).unwrap(),
                    "{} q={q}",
                    config.name()
                );
            }
        }};
    }
    check!(
        SketchConfig::unbounded(alpha),
        presets::unbounded(alpha).unwrap()
    );
    check!(
        SketchConfig::dense_collapsing(alpha, max_bins),
        presets::logarithmic_collapsing(alpha, max_bins).unwrap()
    );
    check!(
        SketchConfig::fast(alpha, max_bins),
        presets::fast(alpha, max_bins).unwrap()
    );
    check!(SketchConfig::sparse(alpha), presets::sparse(alpha).unwrap());
    check!(
        SketchConfig::paper_exact(alpha, max_bins),
        presets::paper_exact(alpha, max_bins).unwrap()
    );
}

/// Acceptance: `encode → AnyDDSketch::decode` round-trips every variant
/// with no caller-side type annotation.
#[test]
fn self_describing_roundtrip_needs_no_type_knowledge() {
    for config in matrix(0.02, 256) {
        let mut sketch = config.build().unwrap();
        for i in 1..=3000u32 {
            sketch.add(f64::from(i) * 0.25).unwrap();
        }
        let bytes = sketch.encode();
        let decoded = AnyDDSketch::decode(&bytes).unwrap();
        assert_eq!(decoded.config(), config, "wire format must self-describe");
        assert_eq!(decoded.to_payload(), sketch.to_payload());
        // The decoded sketch keeps merging with the original.
        let mut merged = decoded;
        merged.merge_from(&sketch).unwrap();
        assert_eq!(merged.count(), 2 * sketch.count());
    }
}

/// Every pair of distinct variants refuses to merge; same-config pairs
/// merge bucket-exactly.
#[test]
fn cross_config_merges_reject_and_same_config_merges_exactly() {
    let configs = matrix(0.01, 256);
    for (i, ca) in configs.iter().enumerate() {
        for (j, cb) in configs.iter().enumerate() {
            let mut a = ca.build().unwrap();
            let mut b = cb.build().unwrap();
            for v in 1..200 {
                a.add(v as f64).unwrap();
                b.add(v as f64 * 3.1).unwrap();
            }
            if i == j {
                let mut union = ca.build().unwrap();
                for v in 1..200 {
                    union.add(v as f64).unwrap();
                    union.add(v as f64 * 3.1).unwrap();
                }
                a.merge_from(&b).unwrap();
                assert_eq!(a.positive_bins(), union.positive_bins(), "{}", ca.name());
                assert_eq!(a.count(), union.count());
                assert_eq!(a.sum(), union.sum());
            } else {
                assert!(
                    matches!(a.merge_from(&b), Err(SketchError::IncompatibleMerge(_))),
                    "{} vs {} must reject",
                    ca.name(),
                    cb.name()
                );
                // A failed merge must leave the target untouched.
                assert_eq!(a.count(), 199);
            }
        }
    }
}

#[test]
fn builder_and_config_agree_end_to_end() {
    let from_builder = DDSketchBuilder::new(0.01)
        .mapping(MappingKind::CubicInterpolated)
        .store(StoreKind::CollapsingDense)
        .max_bins(128)
        .build()
        .unwrap();
    let from_config = SketchConfig::fast(0.01, 128).build().unwrap();
    assert_eq!(from_builder.config(), from_config.config());
}

/// Strategy: a random valid `SketchConfig`.
fn arb_config() -> impl Strategy<Value = SketchConfig> {
    (0usize..5, 1u32..40, 5usize..9).prop_map(|(variant, alpha_step, bins_pow)| {
        let alpha = f64::from(alpha_step) * 0.005; // 0.005 ..= 0.195
        let max_bins = 1usize << bins_pow; // 32 ..= 256
        SketchConfig::all(alpha, max_bins)[variant]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Satellite: encode → decode round-trip over *random* configs and
    // random streams, with no type annotation at the decode site.
    #[test]
    fn prop_roundtrip_over_random_configs(
        config in arb_config(),
        values in proptest::collection::vec(-1e6f64..1e6, 0..400),
    ) {
        let mut sketch = config.build().unwrap();
        for &v in &values {
            sketch.add(v).unwrap();
        }
        let decoded = AnyDDSketch::decode(&sketch.encode()).unwrap();
        prop_assert_eq!(decoded.config(), config);
        prop_assert_eq!(decoded.to_payload(), sketch.to_payload());
        prop_assert_eq!(decoded.count(), values.len() as u64);
    }

    // Random config pairs: merging succeeds iff variant (mapping + store)
    // and alpha agree. max_bins may differ — the target re-collapses to
    // its own bound (Algorithm 4), so bounded sketches of different sizes
    // still merge.
    #[test]
    fn prop_merge_compatibility_is_variant_and_alpha_equality(
        ca in arb_config(),
        cb in arb_config(),
    ) {
        let mut a = ca.build().unwrap();
        let b = cb.build().unwrap();
        let compatible = ca.mapping == cb.mapping && ca.store == cb.store && ca.alpha == cb.alpha;
        if compatible {
            prop_assert!(a.merge_from(&b).is_ok());
        } else {
            prop_assert!(matches!(
                a.merge_from(&b),
                Err(SketchError::IncompatibleMerge(_))
            ));
        }
    }
}
