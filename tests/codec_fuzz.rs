//! Fast corrupted-bytes fuzz loop for the wire plane.
//!
//! Deterministic (no proptest shrink cycles, a simple xorshift for the
//! random cases) so it stays a cheap `cargo test --test codec_fuzz`
//! target that CI runs on every push. The property everywhere: hostile
//! bytes produce `Err`, never a panic, never a huge allocation — and
//! whenever a *decode* succeeds on mutated bytes, the parallel *view*
//! must succeed too and agree with it (the two readers may not drift).

use ddsketch::codec::FrameReader;
use ddsketch::{
    AnyDDSketch, AnyWeightedDDSketch, SketchConfig, SketchPayload, SketchView,
    WeightedSketchPayload,
};
use pipeline::TimeSeriesStore;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Every reader that accepts raw payload bytes, run over one mutation.
fn exercise_payload_readers(bytes: &[u8]) {
    let payload = SketchPayload::decode(bytes);
    let view = SketchView::parse(bytes);
    // A payload the decoder accepts is one the view must accept — unless
    // the decoder was more lenient about the *configuration* (the view
    // insists on a buildable config, exactly like AnyDDSketch::decode).
    if let (Ok(p), Ok(v)) = (&payload, &view) {
        assert_eq!(p.zero_count, v.zero_count());
        assert_eq!(
            p.positive,
            v.positive_bins().collect::<Vec<_>>(),
            "decode and view disagree on the positive bins"
        );
        assert_eq!(p.negative, v.negative_bins().collect::<Vec<_>>());
    }
    // The weighted decoder is literally a view parse plus a bin
    // transfer: it must accept a byte string iff the view does, for
    // every dialect.
    let weighted = WeightedSketchPayload::decode(bytes);
    assert_eq!(
        weighted.is_ok(),
        view.is_ok(),
        "weighted decode and view drifted on mutated bytes"
    );
    if let (Ok(w), Ok(v)) = (&weighted, &view) {
        assert_eq!(w.zero_count.to_bits(), v.weighted_zero_count().to_bits());
        assert_eq!(
            w.positive,
            v.weighted_positive_bins().collect::<Vec<_>>(),
            "weighted positive bins drifted"
        );
        assert_eq!(w.negative, v.weighted_negative_bins().collect::<Vec<_>>());
    }
    // An integer decode means DDS1/DDS2 bytes: the weighted reader must
    // take them too, with every count widened exactly.
    if let (Ok(p), Ok(w)) = (&payload, &weighted) {
        assert_eq!(p.zero_count as f64, w.zero_count);
        assert!(p
            .positive
            .iter()
            .zip(&w.positive)
            .chain(p.negative.iter().zip(&w.negative))
            .all(|(&(i, c), &(wi, wc))| i == wi && c as f64 == wc));
    }
    if let Ok(decoded) = AnyDDSketch::decode(bytes) {
        let v = view
            .as_ref()
            .expect("AnyDDSketch::decode accepted bytes the view rejected");
        assert_eq!(decoded.config(), v.config());
        assert_eq!(decoded.count(), v.count());
        if !decoded.is_empty() {
            assert_eq!(
                decoded.quantiles(&[0.0, 0.5, 1.0]).unwrap(),
                v.quantiles(&[0.0, 0.5, 1.0]).unwrap(),
                "decode and view disagree on quantiles of mutated bytes"
            );
        }
    }
    if let Ok(decoded) = AnyWeightedDDSketch::decode(bytes) {
        let v = view
            .as_ref()
            .expect("AnyWeightedDDSketch::decode accepted bytes the view rejected");
        assert_eq!(decoded.config(), v.config());
        let total = v.weighted_count();
        assert!(
            (decoded.weighted_count() - total).abs() <= 1e-9 * total.abs().max(1.0),
            "weighted sketch and view disagree on total weight"
        );
    }
}

fn pristine_payloads() -> Vec<Vec<u8>> {
    SketchConfig::all(0.013, 32)
        .into_iter()
        .flat_map(|config| {
            let mut empty = config.build().unwrap();
            let populated = {
                let mut s = config.build().unwrap();
                for i in 1..400 {
                    let v = 1.001_f64.powi(i * 29) * 1e-3;
                    s.add(if i % 11 == 0 { -v } else { v }).unwrap();
                    if i % 17 == 0 {
                        s.add(0.0).unwrap();
                    }
                }
                s
            };
            empty.add(0.0).unwrap();
            empty.delete(0.0);
            // A DDS3 payload mixing fractional weights (the 8-byte escape
            // encoding) with integral ones (the varint fast path).
            let weighted = {
                let mut w = AnyWeightedDDSketch::new(config).unwrap();
                for i in 1..200 {
                    let v = 1.002_f64.powi(i * 31) * 1e-2;
                    let frac = 0.25 + f64::from(i % 7) * 0.375;
                    w.add_with_count(if i % 9 == 0 { -v } else { v }, frac)
                        .unwrap();
                    if i % 13 == 0 {
                        w.add_with_count(0.0, 2.0).unwrap();
                    }
                }
                w
            };
            [empty.encode(), populated.encode(), weighted.encode()]
        })
        .collect()
}

#[test]
fn truncations_never_panic() {
    for bytes in pristine_payloads() {
        for cut in 0..bytes.len() {
            assert!(
                SketchPayload::decode(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded"
            );
            assert!(
                SketchView::parse(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} parsed as a view"
            );
            assert!(
                WeightedSketchPayload::decode(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded as weighted"
            );
        }
        // Trailing garbage in several flavours.
        for tail in [&[0u8][..], &[0xff; 3], &[0x80; 16]] {
            let mut extended = bytes.clone();
            extended.extend_from_slice(tail);
            assert!(SketchPayload::decode(&extended).is_err());
            assert!(SketchView::parse(&extended).is_err());
            assert!(WeightedSketchPayload::decode(&extended).is_err());
        }
    }
}

#[test]
fn bit_flips_never_panic() {
    for bytes in pristine_payloads() {
        // Single-bit flips at every position (each of the 8 bits for the
        // header, one per byte beyond it to keep the loop fast).
        for i in 0..bytes.len() {
            let masks: &[u8] = if i < 30 {
                &[1, 2, 4, 8, 16, 32, 64, 128]
            } else {
                &[1 << (i % 8)]
            };
            for &mask in masks {
                let mut flipped = bytes.clone();
                flipped[i] ^= mask;
                exercise_payload_readers(&flipped);
            }
        }
    }
}

#[test]
fn oversized_varints_and_random_mutations_never_panic() {
    let payloads = pristine_payloads();
    let mut rng = 0x5DEECE66D_u64;
    // Splice over-long / overflowing varints at random offsets, and apply
    // random multi-byte stomps.
    let hostile_splices: Vec<Vec<u8>> = vec![
        vec![0x80; 12], // never-ending varint
        vec![0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f], // u64::MAX-ish
        vec![
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02,
        ], // > 64 bits
        vec![0x00],
    ];
    for bytes in &payloads {
        for _ in 0..400 {
            let mut mutated = bytes.clone();
            match xorshift(&mut rng) % 3 {
                0 => {
                    let at = (xorshift(&mut rng) as usize) % mutated.len();
                    let splice =
                        &hostile_splices[(xorshift(&mut rng) as usize) % hostile_splices.len()];
                    let end = (at + splice.len()).min(mutated.len());
                    mutated[at..end].copy_from_slice(&splice[..end - at]);
                }
                1 => {
                    for _ in 0..4 {
                        let at = (xorshift(&mut rng) as usize) % mutated.len();
                        mutated[at] = xorshift(&mut rng) as u8;
                    }
                }
                _ => {
                    let at = (xorshift(&mut rng) as usize) % (mutated.len() + 1);
                    mutated.truncate(at);
                    let splice =
                        &hostile_splices[(xorshift(&mut rng) as usize) % hostile_splices.len()];
                    mutated.extend_from_slice(splice);
                }
            }
            exercise_payload_readers(&mutated);
        }
    }
    // Pure noise of assorted lengths.
    for len in [0usize, 1, 3, 4, 5, 16, 40, 200] {
        for _ in 0..50 {
            let mut noise: Vec<u8> = (0..len).map(|_| xorshift(&mut rng) as u8).collect();
            exercise_payload_readers(&noise);
            // And with a valid magic up front, to get past the first
            // gate — all three dialects.
            if noise.len() >= 4 {
                noise[..4].copy_from_slice(b"DDS2");
                exercise_payload_readers(&noise);
                noise[..4].copy_from_slice(b"DDS1");
                exercise_payload_readers(&noise);
                noise[..4].copy_from_slice(b"DDS3");
                exercise_payload_readers(&noise);
            }
        }
    }
}

/// `DDS3`'s weighted counts admit byte strings no integer dialect can
/// express: `NaN`/`±∞`/negative/zero weights, reserved escape tags,
/// truncated 8-byte escapes, subnormal totals. Every reader must reject
/// the invalid ones identically and agree on the legal-but-extreme
/// ones — never panic.
#[test]
fn hostile_weighted_counts_never_panic() {
    let template = {
        let mut w = AnyWeightedDDSketch::new(SketchConfig::dense_collapsing(0.01, 64)).unwrap();
        w.add_with_count(1.5, 2.5).unwrap();
        w.add_with_count(100.0, 1.0).unwrap();
        w.add_with_count(-3.0, 1.25).unwrap();
        w.add_with_count(0.0, 0.75).unwrap();
        WeightedSketchPayload::decode(&w.encode()).unwrap()
    };

    // Struct-level hostility round-tripped through the encoder: the wire
    // can express any f64, the readers must refuse the invalid ones.
    let reject_zero = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -1e-308];
    for &bad in &reject_zero {
        let mut p = template.clone();
        p.zero_count = bad;
        let bytes = p.encode();
        assert!(
            SketchView::parse(&bytes).is_err(),
            "zero_count {bad} parsed"
        );
        assert!(WeightedSketchPayload::decode(&bytes).is_err());
        assert!(AnyWeightedDDSketch::decode(&bytes).is_err());
        exercise_payload_readers(&bytes);
    }
    // Bin weights additionally reject exact zero (empty bins must not be
    // encoded).
    for &bad in reject_zero.iter().chain([0.0].iter()) {
        let mut p = template.clone();
        p.positive[0].1 = bad;
        let bytes = p.encode();
        assert!(
            SketchView::parse(&bytes).is_err(),
            "bin weight {bad} parsed"
        );
        assert!(WeightedSketchPayload::decode(&bytes).is_err());
        assert!(AnyWeightedDDSketch::decode(&bytes).is_err());
        exercise_payload_readers(&bytes);
    }
    // Per-bin weights that are finite but overflow the f64 total.
    {
        let mut p = template.clone();
        for bin in &mut p.positive {
            bin.1 = f64::MAX;
        }
        let bytes = p.encode();
        assert!(
            SketchView::parse(&bytes).is_err(),
            "overflowing total weight parsed"
        );
        exercise_payload_readers(&bytes);
    }
    // Subnormal weights are extreme but *legal*: every reader must
    // accept them and agree bit-for-bit.
    {
        let mut p = template.clone();
        for bin in p.positive.iter_mut().chain(p.negative.iter_mut()) {
            bin.1 = f64::MIN_POSITIVE / 8.0;
        }
        p.zero_count = f64::MIN_POSITIVE / 8.0;
        let bytes = p.encode();
        let view = SketchView::parse(&bytes).expect("subnormal weights are valid");
        assert!(view.is_weighted());
        assert!(view.weighted_count() > 0.0);
        let decoded = WeightedSketchPayload::decode(&bytes).unwrap();
        assert_eq!(decoded, p);
        exercise_payload_readers(&bytes);
    }

    // Byte-level hostility at the first weighted count: reserved odd
    // escape tags and a truncated 8-byte escape. The empty payload puts
    // `zero_count` at a fixed offset: magic(4) + kind(1) + store(1) +
    // alpha(8) + bin_limit varint(1 for 64).
    let empty = AnyWeightedDDSketch::new(SketchConfig::dense_collapsing(0.01, 64))
        .unwrap()
        .encode();
    const ZERO_AT: usize = 15;
    for splice in [&[0x03u8][..], &[0x05], &[0xff, 0x01], &[0x01, 0, 0, 0]] {
        let mut bytes = empty[..ZERO_AT].to_vec();
        bytes.extend_from_slice(splice);
        if splice[0] != 0x01 {
            // Reserved tags keep the rest of the payload intact.
            bytes.extend_from_slice(&empty[ZERO_AT + 1..]);
        }
        assert!(
            SketchView::parse(&bytes).is_err(),
            "hostile count splice {splice:?} parsed"
        );
        assert!(WeightedSketchPayload::decode(&bytes).is_err());
        assert!(AnyWeightedDDSketch::decode(&bytes).is_err());
        exercise_payload_readers(&bytes);
    }
}

#[test]
fn frame_streams_and_checkpoints_survive_corruption() {
    let mut ts = TimeSeriesStore::new(0.01, 64, 10).unwrap();
    for w in 0..6u64 {
        for i in 1..=25 {
            ts.record("api", w * 10, f64::from(i) * 1.3).unwrap();
            ts.record("db", w * 10 + 3, f64::from(i) * 0.2).unwrap();
        }
    }
    let bytes = ts.checkpoint(Vec::new()).unwrap();
    assert!(TimeSeriesStore::restore(bytes.as_slice()).is_ok());

    for cut in 0..bytes.len() {
        assert!(
            TimeSeriesStore::restore(&bytes[..cut]).is_err(),
            "checkpoint prefix {cut} restored"
        );
    }
    let mut rng = 0xC0FFEE_u64;
    for _ in 0..1500 {
        let mut mutated = bytes.clone();
        for _ in 0..=(xorshift(&mut rng) % 4) {
            let at = (xorshift(&mut rng) as usize) % mutated.len();
            mutated[at] ^= (xorshift(&mut rng) % 255 + 1) as u8;
        }
        // Error or a (different) store — never a panic.
        let _ = TimeSeriesStore::restore(mutated.as_slice());
    }

    // The raw frame reader on noise.
    let mut buf = Vec::new();
    for _ in 0..200 {
        let len = (xorshift(&mut rng) % 64) as usize;
        let noise: Vec<u8> = (0..len).map(|_| xorshift(&mut rng) as u8).collect();
        if let Ok(mut reader) = FrameReader::new(noise.as_slice()) {
            while let Ok(Some(_)) = reader.read_frame(&mut buf) {}
        }
    }
}
