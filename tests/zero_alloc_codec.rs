//! Allocation accounting for the decode-free wire plane.
//!
//! The aggregator's pitch is *zero materialized sketches*: a payload is
//! parsed as a borrowed view (no allocation at all) and queried through
//! the mixed-source rank walk (scratch-backed, so zero allocations at
//! steady state on the dense store families). This binary installs a
//! counting global allocator and holds both claims to their numbers,
//! after feeding an aggregator 1000 encoded payloads.
//!
//! Kept as the only test in this integration binary so no concurrent
//! test's allocations can bleed into the counter (the sibling
//! `zero_alloc.rs` binary covers the in-memory read paths).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::{SketchConfig, SketchView};
use pipeline::Aggregator;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count the allocations `f` performs.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn aggregator_query_path_does_not_allocate() {
    let dense_configs = [
        SketchConfig::unbounded(0.01),
        SketchConfig::dense_collapsing(0.01, 512),
        SketchConfig::fast(0.01, 512),
    ];
    let qs = [0.5, 0.9, 0.99, 0.0, 1.0];
    for config in dense_configs {
        let name = config.name();

        // 1000 agent payloads, each a few dozen observations.
        let frames: Vec<Vec<u8>> = (0..1000u32)
            .map(|k| {
                let mut sketch = config.build().unwrap();
                for i in 1..=40 {
                    sketch.add(f64::from(i * (k % 97 + 1)) * 1e-3).unwrap();
                }
                sketch.encode()
            })
            .collect();

        // Parsing a frame as a view allocates nothing, ever — no warmup
        // involved; there is simply no store to build.
        let parse_allocs = allocations_during(|| {
            for frame in &frames {
                let view = SketchView::parse(frame).unwrap();
                assert!(!view.is_empty());
            }
        });
        assert_eq!(parse_allocs, 0, "{name}: SketchView::parse allocated");

        // Feed all 1000 payloads; folds happen every 32 frames, so the
        // query below walks the resident sketch plus ≤ 32 pending views.
        let mut agg = Aggregator::with_config(config, 32).unwrap();
        for frame in &frames {
            agg.feed(frame).unwrap();
        }
        assert_eq!(agg.frames_received(), 1000);
        assert!(
            agg.pending_frames() > 0,
            "test wants unfolded views in the walk"
        );

        // Steady-state feeding recycles staging payloads: after a full
        // pass the spare pool covers every in-flight frame, so re-feeding
        // the same workload touches the allocator only for stray growth.
        let refeed_allocs = allocations_during(|| {
            for frame in &frames {
                agg.feed(frame).unwrap();
            }
        });
        assert_eq!(refeed_allocs, 0, "{name}: steady-state feed+fold allocated");

        // Warm the scratch and output buffers once, then the query path
        // must be allocation-free: no intermediate sketch, no walk
        // buffers, nothing.
        let mut out = Vec::new();
        agg.quantiles_into(&qs, &mut out).unwrap();
        let expected = out.clone();
        let query_allocs = allocations_during(|| {
            for _ in 0..100 {
                agg.quantiles_into(&qs, &mut out).unwrap();
                assert_eq!(out.len(), qs.len());
            }
        });
        assert_eq!(
            query_allocs, 0,
            "{name}: aggregator quantiles allocated at steady state"
        );
        assert_eq!(out, expected, "{name}: repeated queries must agree");
    }
}
