//! Allocation accounting for the hot read paths.
//!
//! After the `MetricId` interning refactor, per-metric lookups must not
//! allocate: `TimeSeriesStore::quantile` and `metric_count` are an
//! id-table probe plus a B-tree range scan plus a borrowed cumulative bin
//! walk, and the scalar sketch quantile walks `BinIter` — no `String`
//! keys, no materialized bin vectors. This binary installs a counting
//! global allocator and holds those paths to **zero** allocations (and
//! the series queries to exactly their output allocations).
//!
//! Kept as the only test in this integration binary so no concurrent
//! test's allocations can bleed into the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::SketchConfig;
use pipeline::{SlidingWindowSketch, TimeSeriesStore};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count the allocations `f` performs.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn lookup_paths_do_not_allocate() {
    for config in SketchConfig::all(0.01, 512) {
        let mut store = TimeSeriesStore::with_config(config, 10).unwrap();
        for (metric, scale) in [
            ("api.home", 1.0),
            ("api.checkout", 50.0),
            ("db.query", 0.01),
        ] {
            for window in 0..20u64 {
                for i in 1..=50 {
                    let sign = if i % 7 == 0 { -1.0 } else { 1.0 };
                    store
                        .record(metric, window * 10, sign * scale * f64::from(i))
                        .unwrap();
                }
            }
        }

        // Warm up once (lazy statics, branch caches — nothing should
        // allocate here either, but the assertion below is the contract).
        let _ = store.quantile("api.checkout", 50, 0.99);

        let name = config.name();
        let quantile_allocs = allocations_during(|| {
            for q in [0.0, 0.5, 0.99, 1.0] {
                for window in (0..200u64).step_by(10) {
                    assert!(store.quantile("api.checkout", window, q).is_some());
                }
            }
        });
        assert_eq!(quantile_allocs, 0, "{name}: quantile lookups allocated");

        let count_allocs = allocations_during(|| {
            assert_eq!(store.metric_count("api.home"), 20 * 50);
            assert_eq!(store.metric_count("db.query"), 20 * 50);
            assert_eq!(store.metric_count("nope"), 0);
            assert!(store.metric_id("api.home").is_some());
        });
        assert_eq!(count_allocs, 0, "{name}: metric_count allocated");

        // Missing metrics and cells short-circuit without allocating.
        let miss_allocs = allocations_during(|| {
            assert!(store.quantile("absent.metric", 0, 0.5).is_none());
            assert!(store.quantile("api.home", 999_990, 0.5).is_none());
            assert!(store.quantile_series("absent.metric", 0.5).is_empty());
        });
        assert_eq!(miss_allocs, 0, "{name}: misses allocated");

        // Series queries may allocate exactly their output vector (plus
        // its growth), never per-cell or per-metric scratch.
        let series_allocs = allocations_during(|| {
            let series = store.quantile_series("api.checkout", 0.9);
            assert_eq!(series.len(), 20);
        });
        assert!(
            series_allocs <= 8,
            "{name}: quantile_series allocated {series_allocs} times \
             (expected just the output vector's growth)"
        );
    }

    // The sliding-window read path: on the dense store families,
    // `SlidingWindowSketch::quantiles_into` is one borrowed-shard k-way
    // walk through reusable scratch — zero heap allocations at steady
    // state, for both the ring walk and the suffix-aggregate layout.
    // (The sparse families intentionally keep their per-shard iterator
    // allocations; their walks are covered by the correctness suites.)
    let dense_configs = [
        SketchConfig::unbounded(0.01),
        SketchConfig::dense_collapsing(0.01, 512),
        SketchConfig::fast(0.01, 512),
    ];
    let qs = [0.5, 0.99, 0.0, 1.0];
    for config in dense_configs {
        for folded in [false, true] {
            let mut window = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config, 1, 30).unwrap()
            } else {
                SlidingWindowSketch::with_config(config, 1, 30).unwrap()
            };
            // Several full window turns so rotations (and, for the
            // two-stack layout, flips) have all happened.
            let values: Vec<f64> = (1..=64).map(|i| 0.3 + f64::from(i) * 0.7).collect();
            for ts in 0..95u64 {
                window.record_slice(ts, &values).unwrap();
            }
            let mut out = Vec::new();
            // Warm the scratch and output buffers once.
            window.quantiles_into(&qs, &mut out).unwrap();
            let name = config.name();
            let query_allocs = allocations_during(|| {
                for _ in 0..50 {
                    window.quantiles_into(&qs, &mut out).unwrap();
                    assert_eq!(out.len(), qs.len());
                }
            });
            assert_eq!(
                query_allocs, 0,
                "{name} (suffix aggregates: {folded}): sliding-window \
                 quantiles allocated at steady state"
            );
        }
    }
}
