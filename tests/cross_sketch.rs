//! Integration: the four sketches run side-by-side on the paper's three
//! data sets, and each one's published guarantee is checked against the
//! exact oracle.

use datasets::Dataset;
use evalkit::ExactOracle;
use gkarray::GKArray;
use hdrhist::ScaledHdr;
use momentsketch::MomentSketch;
use sketch_core::{MemoryFootprint, QuantileSketch};

const QS: [f64; 5] = [0.25, 0.5, 0.9, 0.95, 0.99];

fn hdr_for(ds: Dataset) -> ScaledHdr {
    match ds {
        Dataset::Pareto => ScaledHdr::new(1e10, 1e3, 2).unwrap(),
        Dataset::Span => ScaledHdr::new(datasets::SPAN_MAX_NS, 1.0, 2).unwrap(),
        Dataset::Power => ScaledHdr::new(datasets::POWER_MAX_KW, 1e4, 2).unwrap(),
    }
}

#[test]
fn ddsketch_alpha_guarantee_on_all_datasets() {
    for ds in Dataset::all() {
        let values = ds.generate(200_000, 1);
        let oracle = ExactOracle::new(values.clone());
        let mut s = ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for &v in &values {
            s.add(v).unwrap();
        }
        assert!(!s.has_collapsed(), "{}: 2048 bins must suffice", ds.name());
        for q in QS {
            let rel = oracle.relative_error(q, s.quantile(q).unwrap());
            assert!(
                rel <= 0.01 + 1e-9,
                "{} p{}: rel {rel}",
                ds.name(),
                q * 100.0
            );
        }
    }
}

#[test]
fn fast_ddsketch_alpha_guarantee_on_all_datasets() {
    for ds in Dataset::all() {
        let values = ds.generate(100_000, 2);
        let oracle = ExactOracle::new(values.clone());
        let mut s = ddsketch::presets::fast(0.01, 4096).unwrap();
        for &v in &values {
            s.add(v).unwrap();
        }
        for q in QS {
            let rel = oracle.relative_error(q, s.quantile(q).unwrap());
            assert!(
                rel <= 0.01 + 1e-9,
                "{} p{}: rel {rel}",
                ds.name(),
                q * 100.0
            );
        }
    }
}

#[test]
fn gkarray_rank_guarantee_on_all_datasets() {
    for ds in Dataset::all() {
        let values = ds.generate(100_000, 3);
        let oracle = ExactOracle::new(values.clone());
        let mut s = GKArray::new(0.01).unwrap();
        for &v in &values {
            s.add(v).unwrap();
        }
        s.flush();
        for q in QS {
            let rank_err = oracle.rank_error(q, s.quantile(q).unwrap());
            assert!(
                rank_err <= 0.01 + 1e-4,
                "{} p{}: rank err {rank_err}",
                ds.name(),
                q * 100.0
            );
        }
    }
}

#[test]
fn hdr_relative_guarantee_where_in_range() {
    for ds in Dataset::all() {
        let values = ds.generate(100_000, 4);
        let oracle = ExactOracle::new(values.clone());
        let mut s = hdr_for(ds);
        let mut dropped = 0u64;
        for &v in &values {
            if s.add(v).is_err() {
                dropped += 1;
            }
        }
        // Drops only on pareto's extreme tail, and rarely.
        assert!(
            dropped as f64 <= values.len() as f64 * 1e-4,
            "{}",
            ds.name()
        );
        for q in QS {
            let rel = oracle.relative_error(q, s.quantile(q).unwrap());
            // d = 2 → 1%; allow quantization slack at power's small values.
            assert!(rel <= 0.011, "{} p{}: rel {rel}", ds.name(), q * 100.0);
        }
    }
}

#[test]
fn moments_sketch_beats_nothing_on_span_but_stays_finite() {
    // The paper: "the Moments sketch has particular difficulty with the
    // span data set as it has trouble dealing with such a large range of
    // values." It must degrade, not crash.
    let values = Dataset::Span.generate(100_000, 5);
    let oracle = ExactOracle::new(values.clone());
    let mut s = MomentSketch::new(20, true).unwrap();
    for &v in &values {
        s.add(v).unwrap();
    }
    for q in QS {
        let est = s.quantile(q).unwrap();
        assert!(est.is_finite(), "span p{} must stay finite", q * 100.0);
    }
    // And on the benign power data set it should actually be decent.
    let values = Dataset::Power.generate(100_000, 6);
    let oracle_p = ExactOracle::new(values.clone());
    let mut s = MomentSketch::new(20, true).unwrap();
    for &v in &values {
        s.add(v).unwrap();
    }
    let rel = oracle_p.relative_error(0.5, s.quantile(0.5).unwrap());
    assert!(rel < 0.2, "power p50 rel {rel}");
    // Contrast: DDSketch handles the same span stream within α.
    let mut dd = ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap();
    for v in Dataset::Span.generate(100_000, 5) {
        dd.add(v).unwrap();
    }
    let dd_rel = oracle.relative_error(0.99, dd.quantile(0.99).unwrap());
    assert!(dd_rel <= 0.01 + 1e-9);
}

#[test]
fn size_ordering_matches_paper_figure6() {
    // Moments < GK ≈ small, DDSketch moderate, HDR largest (heavy-tailed
    // data): Section 4.2's qualitative ordering at laptop n.
    let values = Dataset::Span.generate(300_000, 7);
    let mut dd = ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap();
    let mut gk = GKArray::new(0.01).unwrap();
    let mut hdr = hdr_for(Dataset::Span);
    let mut mo = MomentSketch::new(20, true).unwrap();
    for &v in &values {
        dd.add(v).unwrap();
        gk.add(v).unwrap();
        let _ = hdr.add(v);
        mo.add(v).unwrap();
    }
    gk.flush();
    let (dd_b, gk_b, hdr_b, mo_b) = (
        dd.memory_bytes(),
        gk.memory_bytes(),
        hdr.memory_bytes(),
        mo.memory_bytes(),
    );
    assert!(mo_b < gk_b, "Moments ({mo_b}) < GK ({gk_b})");
    assert!(mo_b < dd_b, "Moments ({mo_b}) < DDSketch ({dd_b})");
    assert!(dd_b < hdr_b, "DDSketch ({dd_b}) < HDR ({hdr_b})");
}
