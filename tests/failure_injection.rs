//! Integration: hostile and degenerate inputs against every sketch in the
//! workspace — nothing may panic, corrupt state, or silently mis-answer.

use gkarray::GKArray;
use hdrhist::ScaledHdr;
use kll::KllSketch;
use momentsketch::MomentSketch;
use sketch_core::{QuantileSketch, SketchError};
use tdigest::TDigest;

/// Every sketch behind one trait object for uniform abuse.
fn all_sketches() -> Vec<Box<dyn QuantileSketch>> {
    vec![
        Box::new(ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap()),
        Box::new(ddsketch::presets::fast(0.01, 2048).unwrap()),
        Box::new(ddsketch::presets::unbounded(0.01).unwrap()),
        Box::new(ddsketch::presets::sparse(0.01).unwrap()),
        Box::new(ddsketch::presets::paper_exact(0.01, 2048).unwrap()),
        Box::new(GKArray::new(0.01).unwrap()),
        Box::new(ScaledHdr::new(1e9, 1.0, 2).unwrap()),
        Box::new(MomentSketch::new(20, true).unwrap()),
        Box::new(TDigest::new(100.0).unwrap()),
        Box::new(KllSketch::new(200).unwrap()),
    ]
}

#[test]
fn non_finite_values_are_rejected_without_state_change() {
    for mut s in all_sketches() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(s.add(bad), Err(SketchError::UnsupportedValue(_))),
                "{} accepted {bad}",
                s.name()
            );
        }
        assert!(s.is_empty(), "{} counted a rejected value", s.name());
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
    }
}

#[test]
fn invalid_quantiles_are_rejected() {
    for mut s in all_sketches() {
        s.add(1.0).unwrap();
        for bad_q in [-0.001, 1.001, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(s.quantile(bad_q), Err(SketchError::InvalidQuantile(_))),
                "{} answered q = {bad_q}",
                s.name()
            );
        }
    }
}

#[test]
fn single_value_streams() {
    for mut s in all_sketches() {
        s.add(123.456).unwrap();
        for q in [0.0, 0.5, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!(
                (est - 123.456).abs() <= 123.456 * 0.011 + 1.0,
                "{} q={q}: {est}",
                s.name()
            );
        }
    }
}

#[test]
fn constant_streams() {
    for mut s in all_sketches() {
        for _ in 0..10_000 {
            s.add(7.0).unwrap();
        }
        assert_eq!(s.count(), 10_000, "{}", s.name());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = s.quantile(q).unwrap();
            assert!(
                (est - 7.0).abs() <= 7.0 * 0.011 + 0.01,
                "{} q={q}: {est}",
                s.name()
            );
        }
    }
}

#[test]
fn alternating_extremes_stream() {
    // Pathological bucket churn: alternate tiny and huge values.
    for mut s in all_sketches() {
        let mut dropped = 0u64;
        for i in 0..20_000u32 {
            let v = if i % 2 == 0 { 1e-3 } else { 1e8 };
            if s.add(v).is_err() {
                dropped += 1;
            }
        }
        assert!(
            dropped == 0 || s.name() == "HDRHistogram",
            "{} dropped values",
            s.name()
        );
        let p50 = s.quantile(0.5).unwrap();
        assert!(p50.is_finite(), "{}", s.name());
        // Monotone quantiles even under churn.
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let v = s.quantile(f64::from(k) / 10.0).unwrap();
            assert!(v >= prev, "{} quantiles not monotone", s.name());
            prev = v;
        }
    }
}

#[test]
fn adversarial_geometric_stream_for_collapse() {
    // The paper's worst case for Proposition 4: S = {γ¹, γ², …, γ^2m}.
    // The bounded sketch must collapse, keep every count, and stay
    // α-accurate on the quantiles whose buckets survive.
    let alpha = 0.01f64;
    let gamma = (1.0 + alpha) / (1.0 - alpha);
    let m = 128usize;
    let mut s = ddsketch::presets::logarithmic_collapsing(alpha, m).unwrap();
    let mut values = Vec::new();
    for i in 1..=(2 * m) {
        let v = gamma.powi(i as i32);
        s.add(v).unwrap();
        values.push(v);
    }
    assert!(s.has_collapsed(), "2m distinct buckets must exceed m");
    assert_eq!(s.count(), 2 * m as u64);
    values.sort_by(f64::total_cmp);
    // The top half of the distribution lives in surviving buckets.
    for q in [0.6, 0.75, 0.9, 1.0] {
        let actual = values[sketch_core::lower_quantile_index(q, values.len())];
        let est = s.quantile(q).unwrap();
        let rel = (est - actual).abs() / actual;
        assert!(rel <= alpha + 1e-9, "q={q}: rel {rel}");
    }
    // The bottom quantiles are allowed to be wrong (collapsed), but must
    // still return finite, in-range values.
    let p0 = s.quantile(0.0).unwrap();
    assert!(p0.is_finite() && p0 >= values[0] - 1e-9);
}

#[test]
fn giant_weights_do_not_overflow() {
    let mut s = ddsketch::presets::unbounded(0.01).unwrap();
    s.add_n(1.0, u64::MAX / 4).unwrap();
    s.add_n(2.0, u64::MAX / 4).unwrap();
    assert_eq!(s.count(), u64::MAX / 4 * 2);
    let p25 = s.quantile(0.25).unwrap();
    let p75 = s.quantile(0.75).unwrap();
    assert!((p25 - 1.0).abs() <= 0.011);
    assert!((p75 - 2.0).abs() <= 0.022);
}

#[test]
fn subnormal_and_near_zero_values() {
    let mut s = ddsketch::presets::unbounded(0.01).unwrap();
    for v in [5e-324, 1e-320, -5e-324, 0.0, -0.0] {
        s.add(v).unwrap();
    }
    assert_eq!(s.count(), 5);
    // All are within floating-point distance of zero → exact zero bucket.
    assert_eq!(s.quantile(0.5).unwrap(), 0.0);
}

#[test]
fn delete_then_requery_is_consistent() {
    let mut s = ddsketch::presets::unbounded(0.01).unwrap();
    for i in 1..=100 {
        s.add(f64::from(i)).unwrap();
    }
    for i in 51..=100 {
        assert!(s.delete(f64::from(i)), "delete {i}");
    }
    assert_eq!(s.count(), 50);
    let p100 = s.quantile(1.0).unwrap();
    // max is a stale upper bound after deletes; the bucket walk must
    // still land within the remaining data's bucket range (≤ 50·(1+α)).
    assert!(p100 <= 50.0 * 1.02, "p100 {p100}");
}
