//! Integration: checkpoint/restore streamed through real sockets and
//! hostile readers — the `DDSF` stream survives byte-at-a-time
//! fragmentation, `Interrupted` noise, and non-blocking (`WouldBlock`)
//! sources without losing or tearing a frame.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use ddsketch::codec::{FrameReader, FrameWriter};
use pipeline::TimeSeriesStore;

fn populated_store() -> TimeSeriesStore {
    let mut store = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
    for i in 0..5_000u64 {
        let metric = ["api.latency", "db.latency", "queue.depth"][(i % 3) as usize];
        let value = 0.1 + ((i * 37) % 911) as f64 * 0.5;
        store.record(metric, (i % 60) * 7, value).unwrap();
    }
    store
}

fn assert_stores_equal(a: &TimeSeriesStore, b: &TimeSeriesStore) {
    assert_eq!(a.num_cells(), b.num_cells());
    let mut cells_b: Vec<_> = b.cells().collect();
    cells_b.sort_by_key(|&(metric, window, _)| (metric.to_string(), window));
    let mut cells_a: Vec<_> = a.cells().collect();
    cells_a.sort_by_key(|&(metric, window, _)| (metric.to_string(), window));
    for ((m1, w1, c1), (m2, w2, c2)) in cells_a.into_iter().zip(cells_b) {
        assert_eq!((m1, w1), (m2, w2));
        assert_eq!(c1.encode(), c2.encode(), "{m1} @ {w1} diverged");
    }
}

/// A checkpoint written straight into a TCP socket restores on the
/// other end to an identical store — no file in between.
#[test]
fn checkpoint_restores_identically_over_a_tcp_socket() {
    let store = populated_store();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // `populated_store` is deterministic, so the writer thread rebuilds
    // its own copy to stream out.
    let writer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        // The socket is dropped (FIN) after the checkpoint: `restore`
        // reads until EOF, so the close is the stream terminator.
        populated_store()
            .checkpoint(io::BufWriter::new(stream))
            .unwrap();
    });
    let (stream, _) = listener.accept().unwrap();
    let restored = TimeSeriesStore::restore(io::BufReader::new(stream)).unwrap();
    writer.join().unwrap();

    assert_stores_equal(&store, &restored);
}

/// Delivers one byte per `read`, with an `Interrupted` error before
/// every byte — the worst cooperating transport.
struct OneByteInterrupted<R> {
    inner: R,
    interrupt_next: bool,
}

impl<R: Read> Read for OneByteInterrupted<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.interrupt_next {
            self.interrupt_next = false;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
        }
        self.interrupt_next = true;
        let take = buf.len().min(1);
        self.inner.read(&mut buf[..take])
    }
}

/// Restore through a reader that fragments the checkpoint to single
/// bytes and injects `Interrupted` between every one of them.
#[test]
fn checkpoint_survives_a_byte_at_a_time_reader() {
    let store = populated_store();
    let bytes = store.checkpoint(Vec::new()).unwrap();
    let restored = TimeSeriesStore::restore(OneByteInterrupted {
        inner: bytes.as_slice(),
        interrupt_next: true,
    })
    .unwrap();
    assert_stores_equal(&store, &restored);
}

/// A frame stream read from a genuinely non-blocking socket: the OS
/// hands out real `WouldBlock`s mid-header, mid-varint, and mid-body,
/// and the resumable reader must reassemble every frame losslessly.
#[test]
fn frame_stream_resumes_across_real_wouldblock() {
    let frames: Vec<Vec<u8>> = (0..200usize)
        .map(|i| {
            (0..i % 97)
                .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect()
        })
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = {
        let frames = frames.clone();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = FrameWriter::new(stream).unwrap();
            for (i, frame) in frames.iter().enumerate() {
                writer.write_frame(frame).unwrap();
                if i % 17 == 0 {
                    // Stall so the reader drains the socket dry and hits
                    // genuine WouldBlock mid-stream (the writer is
                    // unbuffered: every frame goes straight to the socket).
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            writer.finish().unwrap();
            // Dropping the stream sends FIN: the clean end-of-stream.
        })
    };

    let (stream, _) = listener.accept().unwrap();
    stream.set_nonblocking(true).unwrap();
    let mut reader = FrameReader::lazy(stream);
    let mut frame = Vec::new();
    let mut got: Vec<Vec<u8>> = Vec::new();
    let mut wouldblocks = 0u64;
    loop {
        match reader.read_frame(&mut frame) {
            Ok(Some(len)) => {
                assert_eq!(len, frame.len());
                got.push(frame.clone());
            }
            Ok(None) => break,
            Err(ddsketch::SketchError::WouldBlock) => {
                wouldblocks += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("frame stream failed: {e}"),
        }
    }
    writer.join().unwrap();
    assert_eq!(got, frames);
    assert!(wouldblocks > 0, "the socket never ran dry — not exercised");
}
