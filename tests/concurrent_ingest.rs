//! Multithreaded stress tests for the lock-free ingest plane.
//!
//! The contract under test (see `ddsketch::atomic` and
//! `pipeline::concurrent`): N racing writers plus concurrent readers, and
//! once the writers quiesce (thread join) the shared sketch is **exactly**
//! the sketch a single thread would have built from the union of every
//! writer's values — bit-identical bins, count, min, max, and quantiles
//! (the `f64` sum matches up to addition reassociation). Readers racing
//! the writers must never panic, never observe counts above the true
//! final total, and always get monotone quantile answers.

use ddsketch::{AnyAtomicDDSketch, AnyDDSketch, SketchConfig};
use pipeline::ConcurrentSketch;
use std::sync::atomic::{AtomicBool, Ordering};

/// The dense-family configs the atomic plane serves.
fn dense_configs() -> [SketchConfig; 3] {
    [
        SketchConfig::unbounded(0.01),
        SketchConfig::dense_collapsing(0.01, 1024),
        SketchConfig::fast(0.01, 1024),
    ]
}

/// Deterministic per-writer value stream: mixed signs and magnitudes so
/// both stores, the zero bucket, and the extremes all see traffic.
fn value(t: u32, i: u32) -> f64 {
    let k = u64::from(t) * 1_000_003 + u64::from(i);
    let magnitude = 1e-2 + (k % 10_000) as f64 * 0.173;
    if k % 7 == 0 {
        -magnitude
    } else {
        magnitude
    }
}

/// Single-threaded replication of what `threads` writers insert.
fn reference(config: SketchConfig, threads: u32, per_thread: u32) -> AnyDDSketch {
    let mut plain = config.build().unwrap();
    for t in 0..threads {
        for i in 0..per_thread {
            let v = value(t, i);
            match i % 16 {
                0 => plain.add_n(v, 3).unwrap(),
                1..=3 => {
                    let batch = [v, v * 0.5, -v];
                    plain.add_slice(&batch).unwrap();
                }
                _ => plain.add(v).unwrap(),
            }
        }
    }
    plain
}

/// One ingestion operation; writers replay a deterministic op stream so
/// every front-end sees identical traffic.
enum Op<'a> {
    Add(f64),
    AddN(f64, u64),
    Slice(&'a [f64]),
}

/// One writer's share, against any ingestion front-end.
fn write_share(sink: &mut dyn FnMut(Op), t: u32, per_thread: u32) {
    for i in 0..per_thread {
        let v = value(t, i);
        match i % 16 {
            0 => sink(Op::AddN(v, 3)),
            1..=3 => {
                let batch = [v, v * 0.5, -v];
                sink(Op::Slice(&batch));
            }
            _ => sink(Op::Add(v)),
        }
    }
}

/// The exactness assertions shared by every scenario.
fn assert_union_exact(snap: &AnyDDSketch, plain: &AnyDDSketch, label: &str) {
    assert_eq!(snap.count(), plain.count(), "{label}: count");
    assert_eq!(
        snap.positive_bins(),
        plain.positive_bins(),
        "{label}: positive bins"
    );
    assert_eq!(
        snap.negative_bins(),
        plain.negative_bins(),
        "{label}: negative bins"
    );
    assert_eq!(snap.zero_count(), plain.zero_count(), "{label}: zeros");
    assert_eq!(snap.min(), plain.min(), "{label}: min");
    assert_eq!(snap.max(), plain.max(), "{label}: max");
    let reference_sum = plain.sum();
    assert!(
        (snap.sum() - reference_sum).abs() <= reference_sum.abs() * 1e-9,
        "{label}: sum drifted beyond reassociation tolerance"
    );
    for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
        assert_eq!(
            snap.quantile(q).unwrap(),
            plain.quantile(q).unwrap(),
            "{label}: q = {q}"
        );
    }
}

#[test]
fn atomic_sketch_writers_with_racing_readers_end_exact() {
    let threads = 8u32;
    let per_thread = 30_000u32;
    for config in dense_configs() {
        let atomic = AnyAtomicDDSketch::new(config).unwrap();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let atomic = &atomic;
                scope.spawn(move || {
                    write_share(
                        &mut |op| match op {
                            Op::Add(v) => atomic.add(v).unwrap(),
                            Op::AddN(v, n) => atomic.add_n(v, n).unwrap(),
                            Op::Slice(vs) => atomic.add_slice(vs).unwrap(),
                        },
                        t,
                        per_thread,
                    );
                });
            }
            // Two racing readers: snapshots must never panic and never
            // exceed the true final totals.
            let true_final = reference(config, threads, per_thread).count();
            for _ in 0..2 {
                let atomic = &atomic;
                let done = &done;
                scope.spawn(move || {
                    let mut scratch = ddsketch::AtomicSketchScratch::default();
                    let mut target = config.build().unwrap();
                    while !done.load(Ordering::Acquire) {
                        atomic.snapshot_into(&mut target, &mut scratch).unwrap();
                        assert!(target.count() <= true_final, "read overshot the union");
                        if !target.is_empty() {
                            let q = target.quantiles(&[0.25, 0.5, 0.75]).unwrap();
                            assert!(q[0] <= q[1] && q[1] <= q[2], "non-monotone quantiles");
                        }
                    }
                });
            }
            // Writers are the first `threads` spawned handles; scope join
            // order doesn't matter — flag readers done after scope's
            // writers finish naturally via a sentinel thread.
            let atomic = &atomic;
            let done = &done;
            scope.spawn(move || {
                let expected = reference(config, threads, per_thread).count();
                while atomic.count() < expected {
                    std::hint::spin_loop();
                }
                done.store(true, Ordering::Release);
            });
        });
        let snap = atomic.snapshot().unwrap();
        let plain = reference(config, threads, per_thread);
        assert_union_exact(&snap, &plain, config.name());
    }
}

#[test]
fn concurrent_sketch_atomic_plane_ends_exact() {
    let threads = 8u32;
    let per_thread = 25_000u32;
    for config in dense_configs() {
        let cs = ConcurrentSketch::with_config(config, 4).unwrap();
        assert!(cs.is_lock_free());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = &cs;
                scope.spawn(move || {
                    write_share(
                        &mut |op| match op {
                            Op::Add(v) => cs.add(v).unwrap(),
                            Op::AddN(v, n) => cs.add_n(v, n).unwrap(),
                            Op::Slice(vs) => cs.add_slice(vs).unwrap(),
                        },
                        t,
                        per_thread,
                    );
                });
            }
        });
        let snap = cs.snapshot().unwrap();
        let plain = reference(config, threads, per_thread);
        assert_union_exact(&snap, &plain, config.name());
    }
}

#[test]
fn local_ingest_publish_ends_exact_on_both_planes() {
    let threads = 6u32;
    let per_thread = 20_000u32;
    let config = SketchConfig::dense_collapsing(0.01, 1024);
    for locked in [false, true] {
        let cs = if locked {
            ConcurrentSketch::with_config_locked(config, 4).unwrap()
        } else {
            ConcurrentSketch::with_config(config, 4).unwrap()
        };
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = &cs;
                scope.spawn(move || {
                    let mut local = cs.local_ingest().unwrap().flush_every(777);
                    write_share(
                        &mut |op| match op {
                            Op::Add(v) => local.add(v).unwrap(),
                            Op::AddN(v, n) => local.add_n(v, n).unwrap(),
                            Op::Slice(vs) => local.add_slice(vs).unwrap(),
                        },
                        t,
                        per_thread,
                    );
                    // Drop publishes the tail.
                });
            }
        });
        let snap = cs.snapshot().unwrap();
        let plain = reference(config, threads, per_thread);
        let label = if locked { "locked" } else { "atomic" };
        assert_union_exact(&snap, &plain, label);
    }
}

#[test]
fn atomic_and_locked_planes_agree_under_race() {
    // Same writer fleet against both planes; the quiesced views must be
    // bit-identical to each other (both equal the union).
    let threads = 4u32;
    let per_thread = 15_000u32;
    let config = SketchConfig::unbounded(0.005);
    let atomic = ConcurrentSketch::with_config(config, 4).unwrap();
    let locked = ConcurrentSketch::with_config_locked(config, 4).unwrap();
    for cs in [&atomic, &locked] {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    write_share(
                        &mut |op| match op {
                            Op::Add(v) => cs.add(v).unwrap(),
                            Op::AddN(v, n) => cs.add_n(v, n).unwrap(),
                            Op::Slice(vs) => cs.add_slice(vs).unwrap(),
                        },
                        t,
                        per_thread,
                    );
                });
            }
        });
    }
    let (a, l) = (atomic.snapshot().unwrap(), locked.snapshot().unwrap());
    assert_union_exact(&a, &reference(config, threads, per_thread), "atomic");
    assert_eq!(a.positive_bins(), l.positive_bins());
    assert_eq!(a.negative_bins(), l.negative_bins());
    assert_eq!(a.count(), l.count());
}
