//! Allocation accounting for the weighted (f64 count) wire plane.
//!
//! The [`pipeline::WeightedAggregator`] accepts every dialect — `DDS3`
//! weighted payloads, `DDS2` integer payloads (counts lifted at weight
//! 1), and legacy `DDS1` bytes — and folds them through one walk. This
//! binary installs a counting global allocator and holds the weighted
//! plane to the integer plane's number: zero allocations at steady
//! state, for both feeding and querying, over a *mixed-dialect* stream.
//!
//! Kept as the only test in this integration binary so no concurrent
//! test's allocations can bleed into the counter (same discipline as
//! the sibling `zero_alloc*.rs` binaries).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::{AnyDDSketch, AnyWeightedDDSketch, SketchConfig};
use pipeline::WeightedAggregator;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count the allocations `f` performs.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Re-dress a `DDS2` frame in the legacy `DDS1` layout: the dialects
/// differ only in the magic and the `store` byte at offset 5 (which v1
/// lacked — its store family is guessed from the bucket limit, so this
/// only round-trips for the collapsing-dense family used below).
fn to_dds1(frame: &[u8]) -> Vec<u8> {
    assert_eq!(&frame[..4], b"DDS2");
    let mut v1 = Vec::with_capacity(frame.len() - 1);
    v1.extend_from_slice(b"DDS1");
    v1.push(frame[4]);
    v1.extend_from_slice(&frame[6..]);
    v1
}

#[test]
fn weighted_aggregator_mixed_dialect_path_does_not_allocate() {
    let config = SketchConfig::dense_collapsing(0.01, 512);
    let qs = [0.5, 0.9, 0.99, 0.0, 1.0];

    // 999 agent payloads cycling through the three dialects. Dyadic
    // weights keep every partial sum exact, so the total-weight anchor
    // below is an equality, not a tolerance.
    let mut expected_weight = 0.0f64;
    let frames: Vec<Vec<u8>> = (0..999u32)
        .map(|k| match k % 3 {
            0 => {
                let mut sketch = AnyWeightedDDSketch::new(config).unwrap();
                for i in 1..=40u32 {
                    let w = f64::from(i % 8 + 1) / 4.0;
                    sketch
                        .add_with_count(f64::from(i * (k % 97 + 1)) * 1e-3, w)
                        .unwrap();
                    expected_weight += w;
                }
                sketch.encode()
            }
            rest => {
                let mut sketch = AnyDDSketch::new(config).unwrap();
                for i in 1..=40u32 {
                    sketch.add(f64::from(i * (k % 97 + 1)) * 1e-3).unwrap();
                }
                expected_weight += 40.0;
                let frame = sketch.encode();
                if rest == 1 {
                    frame
                } else {
                    to_dds1(&frame)
                }
            }
        })
        .collect();

    // Feed all 999 payloads; folds happen every 32 frames, so the query
    // below walks the resident sketch plus ≤ 32 pending payloads.
    let mut agg = WeightedAggregator::with_config(config, 32).unwrap();
    for frame in &frames {
        agg.feed(frame).unwrap();
    }
    assert_eq!(agg.frames_received(), 999);
    assert!(
        agg.pending_frames() > 0,
        "test wants unfolded payloads in the walk"
    );
    assert_eq!(
        agg.weighted_count(),
        expected_weight,
        "integer dialects must lift at weight 1, exactly"
    );

    // Steady-state feeding recycles staging payloads across all three
    // dialects: after a full pass the spare pool covers every in-flight
    // frame, so re-feeding the same workload never touches the allocator.
    let refeed_allocs = allocations_during(|| {
        for frame in &frames {
            agg.feed(frame).unwrap();
        }
    });
    assert_eq!(
        refeed_allocs, 0,
        "steady-state mixed-dialect feed allocated"
    );
    assert_eq!(agg.weighted_count(), expected_weight * 2.0);

    // Warm the scratch and output buffers once, then the weighted query
    // walk must be allocation-free.
    let mut out = Vec::new();
    agg.quantiles_into(&qs, &mut out).unwrap();
    let expected = out.clone();
    let query_allocs = allocations_during(|| {
        for _ in 0..100 {
            agg.quantiles_into(&qs, &mut out).unwrap();
            assert_eq!(out.len(), qs.len());
        }
    });
    assert_eq!(
        query_allocs, 0,
        "weighted quantile walk allocated at steady state"
    );
    assert_eq!(out, expected, "repeated queries must agree");
}
