//! Allocation accounting for the lock-free ingest plane.
//!
//! Steady-state ingestion into an [`AnyAtomicDDSketch`] — once the atomic
//! stores have grown to cover the live value range — must be **zero**
//! allocations per value: the hot path is a relaxed `fetch_add` into an
//! existing table cell plus relaxed summary updates, with growth confined
//! to the rare guarded slow path. The same holds through the
//! [`ConcurrentSketch`] facade, and warm snapshots reuse their recycled
//! buffers end to end.
//!
//! Kept as the only test in this integration binary (like `zero_alloc.rs`)
//! so no concurrent test's allocations can bleed into the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::{AnyAtomicDDSketch, AtomicSketchScratch, SketchConfig};
use pipeline::ConcurrentSketch;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count the allocations `f` performs.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_atomic_ingest_does_not_allocate() {
    for config in [
        SketchConfig::unbounded(0.01),
        SketchConfig::dense_collapsing(0.01, 512),
        SketchConfig::fast(0.01, 512),
    ] {
        // Warm up: grow the stores over the whole value range (and run
        // this thread's lazy stripe-id init).
        let atomic = AnyAtomicDDSketch::new(config).unwrap();
        for i in 1..=1000 {
            let v = f64::from(i) * 0.5;
            atomic.add(v).unwrap();
            atomic.add(-v).unwrap();
        }

        // Steady state: same value range, every ingestion front-door.
        let batch = [1.0, 2.5, 100.0, 499.0, -3.0];
        let allocs = allocations_during(|| {
            for i in 1..=1000 {
                let v = f64::from(i) * 0.5;
                atomic.add(v).unwrap();
                atomic.add(-v).unwrap();
                atomic.add_n(v, 7).unwrap();
            }
            atomic.add_slice(&batch).unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "steady-state atomic ingest allocated ({})",
            config.name()
        );

        // Warm snapshots are allocation-free end to end: raw scan buffers,
        // bin conversion buffers, and the target's stores all recycle.
        let mut target = config.build().unwrap();
        let mut scratch = AtomicSketchScratch::default();
        atomic.snapshot_into(&mut target, &mut scratch).unwrap();
        let allocs = allocations_during(|| {
            atomic.snapshot_into(&mut target, &mut scratch).unwrap();
        });
        assert_eq!(allocs, 0, "warm snapshot allocated ({})", config.name());
    }
}

#[test]
fn steady_state_concurrent_sketch_ingest_does_not_allocate() {
    let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
    assert!(cs.is_lock_free());
    for i in 1..=1000 {
        cs.add(f64::from(i) * 0.25).unwrap();
        cs.add(f64::from(i)).unwrap();
    }
    let allocs = allocations_during(|| {
        for i in 1..=1000 {
            cs.add(f64::from(i) * 0.25).unwrap();
            cs.add_n(f64::from(i), 3).unwrap();
        }
    });
    assert_eq!(allocs, 0, "steady-state facade ingest allocated");

    // The lock-free count read allocates nothing either.
    let allocs = allocations_during(|| {
        assert!(cs.count() > 0);
    });
    assert_eq!(allocs, 0, "lock-free count allocated");
}
