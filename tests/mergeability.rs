//! Integration: full-mergeability properties across arbitrary partitions
//! and merge-tree shapes — the paper's Table 1 distinction made
//! executable.

use datasets::Dataset;
use ddsketch::presets;
use proptest::prelude::*;
use sketch_core::{MergeableSketch, QuantileSketch};

/// Split `values` into `parts` chunks, sketch each, merge in the given
/// tree shape, and return the merged sketch.
fn merge_tree(values: &[f64], parts: usize, balanced: bool) -> presets::BoundedDDSketch {
    let chunk = values.len().div_ceil(parts).max(1);
    let mut sketches: Vec<presets::BoundedDDSketch> = values
        .chunks(chunk)
        .map(|c| {
            let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
            for &v in c {
                s.add(v).unwrap();
            }
            s
        })
        .collect();
    if balanced {
        // Pairwise rounds (a reduction tree, as a distributed system does).
        while sketches.len() > 1 {
            let mut next = Vec::with_capacity(sketches.len().div_ceil(2));
            let mut iter = sketches.into_iter();
            while let Some(mut a) = iter.next() {
                if let Some(b) = iter.next() {
                    a.merge_from(&b).unwrap();
                }
                next.push(a);
            }
            sketches = next;
        }
        sketches.pop().unwrap()
    } else {
        // Sequential left fold (a single aggregator consuming a queue).
        let mut iter = sketches.into_iter();
        let mut acc = iter.next().unwrap();
        for s in iter {
            acc.merge_from(&s).unwrap();
        }
        acc
    }
}

#[test]
fn merge_tree_shape_does_not_matter() {
    let values = Dataset::Pareto.generate(100_000, 10);
    let mut single = presets::logarithmic_collapsing(0.01, 2048).unwrap();
    for &v in &values {
        single.add(v).unwrap();
    }
    for parts in [2, 7, 32] {
        for balanced in [false, true] {
            let merged = merge_tree(&values, parts, balanced);
            assert_eq!(merged.count(), single.count());
            // Bucket-for-bucket identical — the strongest form of full
            // mergeability.
            let (pm, ps) = (merged.to_payload(), single.to_payload());
            assert_eq!(
                pm.positive, ps.positive,
                "parts={parts} balanced={balanced}"
            );
            assert_eq!(pm.zero_count, ps.zero_count);
            assert_eq!(pm.min, ps.min);
            assert_eq!(pm.max, ps.max);
        }
    }
}

#[test]
fn hdr_merge_tree_is_also_exact() {
    use hdrhist::ScaledHdr;
    let values = Dataset::Power.generate(50_000, 11);
    let build = |chunk: &[f64]| {
        let mut h = ScaledHdr::new(datasets::POWER_MAX_KW, 1e4, 2).unwrap();
        for &v in chunk {
            h.add(v).unwrap();
        }
        h
    };
    let mut merged = build(&values[..25_000]);
    let other = build(&values[25_000..]);
    merged.merge_from(&other).unwrap();
    let single = build(&values);
    for q in [0.1, 0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q).unwrap(), single.quantile(q).unwrap());
    }
}

#[test]
fn moments_merge_tree_is_exact_up_to_fp() {
    use momentsketch::MomentSketch;
    let values = Dataset::Power.generate(50_000, 12);
    let build = |chunk: &[f64]| {
        let mut m = MomentSketch::new(20, true).unwrap();
        for &v in chunk {
            m.add(v).unwrap();
        }
        m
    };
    let mut merged = build(&values[..10_000]);
    for chunk in values[10_000..].chunks(10_000) {
        merged.merge_from(&build(chunk)).unwrap();
    }
    let single = build(&values);
    for q in [0.25, 0.5, 0.75] {
        let a = merged.quantile(q).unwrap();
        let b = single.quantile(q).unwrap();
        assert!((a - b).abs() <= 1e-3 * b.abs(), "q={q}: {a} vs {b}");
    }
}

#[test]
fn merging_collapsed_sketches_stays_accurate_up_top() {
    // Collapse-under-merge: two sketches over disjoint ranges whose union
    // exceeds the bucket budget. Upper quantiles must stay α-accurate
    // (Proposition 4 applies to the merged sketch too).
    let mut lo = presets::logarithmic_collapsing(0.01, 256).unwrap();
    let mut hi = presets::logarithmic_collapsing(0.01, 256).unwrap();
    let mut all = Vec::new();
    for i in 0..20_000 {
        let v = 1e-6 * (1.0 + (i % 100) as f64);
        lo.add(v).unwrap();
        all.push(v);
    }
    for i in 0..20_000 {
        let v = 1e6 * (1.0 + (i % 100) as f64);
        hi.add(v).unwrap();
        all.push(v);
    }
    lo.merge_from(&hi).unwrap();
    assert!(lo.has_collapsed());
    assert_eq!(lo.count(), 40_000);
    all.sort_by(f64::total_cmp);
    for q in [0.9, 0.99, 1.0] {
        let actual = all[sketch_core::lower_quantile_index(q, all.len())];
        let est = lo.quantile(q).unwrap();
        let rel = (est - actual).abs() / actual;
        assert!(rel <= 0.01 + 1e-9, "q={q}: rel {rel}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_partitioned_merge_equals_union(
        values in proptest::collection::vec(1e-6f64..1e12, 10..400),
        cut in 1usize..9,
    ) {
        let cut = values.len() * cut / 10;
        let (a_vals, b_vals) = values.split_at(cut.max(1).min(values.len() - 1));
        let build = |chunk: &[f64]| {
            let mut s = presets::logarithmic_collapsing(0.02, 4096).unwrap();
            for &v in chunk {
                s.add(v).unwrap();
            }
            s
        };
        let mut merged = build(a_vals);
        merged.merge_from(&build(b_vals)).unwrap();
        let single = build(&values);
        prop_assert_eq!(merged.to_payload().positive, single.to_payload().positive);
        prop_assert_eq!(merged.count(), single.count());
    }

    #[test]
    fn prop_merge_is_commutative_on_buckets(
        a in proptest::collection::vec(0.1f64..1e6, 1..200),
        b in proptest::collection::vec(0.1f64..1e6, 1..200),
    ) {
        let build = |chunk: &[f64]| {
            let mut s = presets::sparse(0.02).unwrap();
            for &v in chunk {
                s.add(v).unwrap();
            }
            s
        };
        let mut ab = build(&a);
        ab.merge_from(&build(&b)).unwrap();
        let mut ba = build(&b);
        ba.merge_from(&build(&a)).unwrap();
        prop_assert_eq!(ab.to_payload().positive, ba.to_payload().positive);
    }
}
