//! Property tests for the k-way merge plane: for every runtime
//! configuration and random shard splits of a random stream,
//!
//! * `merge_many` ≡ folding `merge_from` sequentially (bit-identical:
//!   bins, count, zero bucket, min, max, and `sum`, which accumulates in
//!   the same order),
//! * the merged sketch ≡ a single sketch over the union of the stream
//!   (full mergeability, Proposition 3 — bucket-identical even through
//!   collapsed tails),
//! * `merged_quantiles` ≡ the quantiles of the materialized merge, with
//!   no intermediate sketch built.
//!
//! The bin caps are kept deliberately tiny so the dense and sparse
//! collapsing stores fold on most cases — the equivalences must hold
//! through Algorithm 3/4 collapse, not just in the easy uncollapsed
//! regime.

use ddsketch::{AnyDDSketch, SketchConfig};
use pipeline::SlidingWindowSketch;
use proptest::prelude::*;

/// Decode a raw `(mantissa, class)` pair into a stream value covering the
/// interesting regimes: wide-magnitude positives (to force dense-store
/// collapse), negatives, and exact zeros.
fn decode_value(mantissa: f64, class: u8) -> f64 {
    let magnitude = (0.5 + mantissa) * 10f64.powi(i32::from(class % 9) - 4);
    match class % 5 {
        0..=2 => magnitude,
        3 => -magnitude,
        _ => 0.0,
    }
}

/// Split `values` into `shards` contiguous chunks at the given cut points.
fn shard_streams(values: &[f64], cuts: &[usize]) -> Vec<Vec<f64>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (values.len() + 1)).collect();
    bounds.push(0);
    bounds.push(values.len());
    bounds.sort_unstable();
    bounds
        .windows(2)
        .map(|w| values[w[0]..w[1]].to_vec())
        .collect()
}

fn build(config: SketchConfig, values: &[f64]) -> AnyDDSketch {
    let mut sketch = config.build().unwrap();
    for &v in values {
        sketch.add(v).unwrap();
    }
    sketch
}

fn assert_state_eq(a: &AnyDDSketch, b: &AnyDDSketch, what: &str, config: SketchConfig) {
    let name = config.name();
    assert_eq!(a.count(), b.count(), "{name}: {what}: count");
    assert_eq!(
        a.zero_count(),
        b.zero_count(),
        "{name}: {what}: zero bucket"
    );
    assert_eq!(a.min(), b.min(), "{name}: {what}: min");
    assert_eq!(a.max(), b.max(), "{name}: {what}: max");
    assert_eq!(
        a.positive_bins(),
        b.positive_bins(),
        "{name}: {what}: positive bins"
    );
    assert_eq!(
        a.negative_bins(),
        b.negative_bins(),
        "{name}: {what}: negative bins"
    );
    assert_eq!(
        a.has_collapsed(),
        b.has_collapsed(),
        "{name}: {what}: collapse flag"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn merge_plane_is_exact_for_every_config(
        raw in proptest::collection::vec((0.0f64..1.0, 0u8..255), 1..300),
        cuts in proptest::collection::vec(0usize..300, 0..6),
        max_bins in 8usize..48,
    ) {
        let values: Vec<f64> = raw
            .iter()
            .map(|&(mantissa, class)| decode_value(mantissa, class))
            .collect();
        let shards_values = shard_streams(&values, &cuts);
        for config in SketchConfig::all(0.02, max_bins) {
            let shards: Vec<AnyDDSketch> = shards_values
                .iter()
                .map(|chunk| build(config, chunk))
                .collect();
            let refs: Vec<&AnyDDSketch> = shards.iter().collect();

            // merge_many ≡ sequential merge_from, bit-identical
            // (including sum, which folds in the same order).
            let mut bulk = config.build().unwrap();
            bulk.merge_many(&refs).unwrap();
            let mut seq = config.build().unwrap();
            for shard in &refs {
                seq.merge_from(shard).unwrap();
            }
            assert_state_eq(&bulk, &seq, "merge_many vs sequential", config);
            prop_assert_eq!(
                bulk.sum(),
                seq.sum(),
                "{}: merge_many sum must fold in order",
                config.name()
            );

            // Merged ≡ a single sketch over the union (full
            // mergeability), modulo floating-point sum association.
            let union = build(config, &values);
            assert_state_eq(&bulk, &union, "merge vs union", config);
            let tolerance = 1e-9 * values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
            prop_assert!(
                (bulk.sum() - union.sum()).abs() <= tolerance,
                "{}: merged sum {} vs union sum {}",
                config.name(),
                bulk.sum(),
                union.sum()
            );

            // merged_quantiles ≡ quantiles of the materialized merge —
            // exactly, including collapsed tails — and, via quantiles'
            // implementation, ≡ per-q scalar quantile calls.
            let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.01, 0.25, 0.75, 0.9];
            if bulk.is_empty() {
                prop_assert!(AnyDDSketch::merged_quantiles(&refs, &qs).is_err());
            } else {
                let walked = AnyDDSketch::merged_quantiles(&refs, &qs).unwrap();
                let materialized = bulk.quantiles(&qs).unwrap();
                prop_assert_eq!(
                    &walked,
                    &materialized,
                    "{}: merged_quantiles diverged from the materialized merge",
                    config.name()
                );
                for (&q, &estimate) in qs.iter().zip(&walked) {
                    prop_assert_eq!(
                        estimate,
                        bulk.quantile(q).unwrap(),
                        "{}: q={} diverged from the scalar walk",
                        config.name(),
                        q
                    );
                }
            }
        }
    }

    // A sliding window's quantiles must equal a from-scratch sketch fed
    // only the in-window values — across every configuration, both read
    // layouts (ring walk and two-stack suffix aggregates), random slot
    // shapes, and streams whose timestamp jumps cross (and overshoot)
    // slot-rotation boundaries. Since the window rides the same k-way
    // walk the merge plane proves exact above, the equality here is
    // exact, not merely within bucket tolerance.
    #[test]
    fn sliding_window_equals_from_scratch_union(
        raw in proptest::collection::vec((0.0f64..1.0, 0u8..255, 0u64..6), 1..200),
        slot_secs in 1u64..4,
        num_slots in 1usize..10,
        max_bins in 8usize..48,
    ) {
        // Timestamps advance by 0..6·slot span per step: dwells, single
        // rotations, multi-slot jumps, and full-window overshoots.
        let mut ts = 0u64;
        let stream: Vec<(u64, f64)> = raw
            .iter()
            .map(|&(mantissa, class, dt)| {
                ts += dt * (dt % 3); // 0, 1·dt or 2·dt: bursty advances
                (ts, decode_value(mantissa, class))
            })
            .collect();
        let head = {
            let last = stream.last().expect("non-empty stream").0;
            last - last % slot_secs
        };
        let window_lo = head.saturating_sub((num_slots as u64 - 1) * slot_secs);
        for config in SketchConfig::all(0.02, max_bins) {
            let mut ring = SlidingWindowSketch::with_config(config, slot_secs, num_slots).unwrap();
            let mut folded =
                SlidingWindowSketch::with_suffix_aggregates(config, slot_secs, num_slots).unwrap();
            for &(t, v) in &stream {
                ring.record(t, v).unwrap();
                folded.record(t, v).unwrap();
            }
            let mut union = config.build().unwrap();
            for &(t, v) in &stream {
                if t - t % slot_secs >= window_lo {
                    union.add(v).unwrap();
                }
            }
            prop_assert_eq!(ring.count(), union.count(), "{}: count", config.name());
            prop_assert_eq!(folded.count(), union.count(), "{}: folded count", config.name());
            let qs = [0.99, 0.0, 0.5, 1.0, 0.01, 0.75];
            if union.is_empty() {
                prop_assert!(ring.quantiles(&qs).is_err());
                prop_assert!(folded.quantiles(&qs).is_err());
            } else {
                let expected = union.quantiles(&qs).unwrap();
                prop_assert_eq!(
                    ring.quantiles(&qs).unwrap(),
                    expected.clone(),
                    "{}: ring walk diverged from the in-window union",
                    config.name()
                );
                prop_assert_eq!(
                    folded.quantiles(&qs).unwrap(),
                    expected,
                    "{}: suffix-aggregate walk diverged from the in-window union",
                    config.name()
                );
            }
        }
    }
}
