//! Property tests for the weighted count plane: `add_with_count(v, k)`
//! at an integral weight `k` must be **bit-identical** to k-fold
//! `add(v)` — same bins, weighted count, zero weight, `sum`, `min`,
//! `max`, quantiles — across all five preset configurations, and the
//! weighted plane at integral weights must mirror the integer (`u64`)
//! plane exactly. The lock-free `f64` atomic plane (per-bucket CAS on
//! float bits) must agree bit-for-bit too, both single-threaded and
//! under racing writers.
//!
//! Every stream is dyadic (values `m/64`, weights `k/4`), so each f64
//! partial sum is exact and bit-equality is independent of association
//! order — the assertions below hold mathematically, not just "usually".

use ddsketch::{
    AnyDDSketch, AnyWeightedDDSketch, LogarithmicMapping, SketchConfig, SketchError,
    WeightedAtomicDDSketch,
};
use proptest::prelude::*;

/// Bit-exact comparison of two weighted bin lists.
fn assert_bins_eq(got: &[(i32, f64)], want: &[(i32, f64)], label: &str) {
    let got: Vec<(i32, u64)> = got.iter().map(|&(i, c)| (i, c.to_bits())).collect();
    let want: Vec<(i32, u64)> = want.iter().map(|&(i, c)| (i, c.to_bits())).collect();
    assert_eq!(got, want, "{label}: bins");
}

/// Assert two weighted sketches are bit-identical, field for field.
fn assert_weighted_eq(got: &AnyWeightedDDSketch, want: &AnyWeightedDDSketch, label: &str) {
    assert_eq!(
        got.weighted_count().to_bits(),
        want.weighted_count().to_bits(),
        "{label}: weighted count"
    );
    assert_eq!(
        got.zero_weight().to_bits(),
        want.zero_weight().to_bits(),
        "{label}: zero weight"
    );
    assert_eq!(got.sum().to_bits(), want.sum().to_bits(), "{label}: sum");
    assert_eq!(got.min(), want.min(), "{label}: min");
    assert_eq!(got.max(), want.max(), "{label}: max");
    assert_bins_eq(&got.positive_bins(), &want.positive_bins(), label);
    assert_bins_eq(&got.negative_bins(), &want.negative_bins(), label);
    if !got.is_empty() {
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                got.quantile(q).unwrap().to_bits(),
                want.quantile(q).unwrap().to_bits(),
                "{label}: quantile {q}"
            );
        }
    }
}

/// For one config: fold `(value, k)` pairs three ways — weighted
/// `add_with_count(v, k)`, k-fold `add(v)` on a second weighted sketch,
/// and `add_with_count(v, k)` on the integer plane — and demand exact
/// agreement.
fn check_config(config: SketchConfig, pairs: &[(f64, u32)]) {
    let label = config.name();
    let mut folded = AnyWeightedDDSketch::new(config).unwrap();
    let mut replicated = AnyWeightedDDSketch::new(config).unwrap();
    let mut integer = AnyDDSketch::new(config).unwrap();
    for &(v, k) in pairs {
        folded.add_with_count(v, f64::from(k)).unwrap();
        for _ in 0..k {
            replicated.add(v).unwrap();
        }
        integer.add_with_count(v, u64::from(k)).unwrap();
    }
    assert_weighted_eq(&folded, &replicated, label);

    // Integral weights mirror the u64 plane: same bins, counts exactly
    // widened, bit-identical quantiles.
    assert_eq!(
        folded.weighted_count().to_bits(),
        (integer.count() as f64).to_bits(),
        "{label}: weighted vs integer count"
    );
    let widened: Vec<(i32, f64)> = integer
        .positive_bins()
        .into_iter()
        .map(|(i, c)| (i, c as f64))
        .collect();
    assert_bins_eq(&folded.positive_bins(), &widened, label);
    if !folded.is_empty() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(
                folded.quantile(q).unwrap().to_bits(),
                integer.quantile(q).unwrap().to_bits(),
                "{label}: weighted vs integer quantile {q}"
            );
        }
    }
}

/// Dyadic test stream: values `m/64`, integral weights `0..=20`
/// (zero-weight inserts must be exact no-ops).
fn dyadic_pairs(raw: &[(i64, u32)]) -> Vec<(f64, u32)> {
    raw.iter().map(|&(m, k)| (m as f64 / 64.0, k)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn folded_weights_equal_replication_on_all_configs(
        raw in proptest::collection::vec((-(1i64 << 20)..(1i64 << 20), 0u32..20), 1..100),
    ) {
        let pairs = dyadic_pairs(&raw);
        for config in SketchConfig::all(0.02, 64) {
            check_config(config, &pairs);
        }
    }

    #[test]
    fn atomic_f64_plane_matches_the_sequential_weighted_sketch(
        raw in proptest::collection::vec((-(1i64 << 20)..(1i64 << 20), 0u32..20), 1..100),
    ) {
        // Fractional (quarter-unit) weights: the plane the u64 stores
        // cannot express.
        let config = SketchConfig::dense_collapsing(0.02, 64);
        let atomic =
            WeightedAtomicDDSketch::with_config(LogarithmicMapping::new(0.02).unwrap(), config)
                .unwrap();
        let mut sequential = AnyWeightedDDSketch::new(config).unwrap();
        for &(m, k) in &raw {
            let (v, w) = (m as f64 / 64.0, f64::from(k) / 4.0);
            atomic.add_with_count(v, w).unwrap();
            sequential.add_with_count(v, w).unwrap();
        }
        assert_weighted_eq(&atomic.snapshot_weighted().unwrap(), &sequential, "atomic");
    }
}

/// Racing writers on the f64 atomic count plane: the quiesced snapshot
/// must be bit-identical to a single-threaded weighted sketch over the
/// union of every thread's stream, regardless of interleaving. This is
/// the test CI soaks in release mode, where optimized atomics produce
/// real interleavings.
#[test]
fn racing_weighted_writers_quiesce_to_the_sequential_union() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 4_000;
    let config = SketchConfig::dense_collapsing(0.01, 512);
    let atomic =
        WeightedAtomicDDSketch::with_config(LogarithmicMapping::new(0.01).unwrap(), config)
            .unwrap();

    // Deterministic dyadic stream for thread `t`: mixed-sign values on
    // a wide range, quarter-unit weights 0.25..=4.0.
    let pair = |t: u64, i: u64| {
        let h = (t * PER_THREAD + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17;
        let m = (h % 200_001) as i64 - 100_000;
        let w = f64::from((h >> 24 & 15) as u32 + 1) / 4.0;
        (m as f64 / 64.0, w)
    };

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let atomic = &atomic;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let (v, w) = pair(t, i);
                    atomic.add_with_count(v, w).unwrap();
                }
            });
        }
    });

    let mut sequential = AnyWeightedDDSketch::new(config).unwrap();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let (v, w) = pair(t, i);
            sequential.add_with_count(v, w).unwrap();
        }
    }
    assert_weighted_eq(
        &atomic.snapshot_weighted().unwrap(),
        &sequential,
        "racing writers",
    );
}

#[test]
fn invalid_weights_are_rejected_without_corrupting_state() {
    let config = SketchConfig::dense_collapsing(0.01, 512);
    let mut sketch = AnyWeightedDDSketch::new(config).unwrap();
    let atomic =
        WeightedAtomicDDSketch::with_config(LogarithmicMapping::new(0.01).unwrap(), config)
            .unwrap();
    sketch.add_with_count(1.5, 2.25).unwrap();
    atomic.add_with_count(1.5, 2.25).unwrap();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -0.25] {
        assert!(
            matches!(
                sketch.add_with_count(3.0, bad),
                Err(SketchError::InvalidConfig(_))
            ),
            "sequential accepted weight {bad}"
        );
        assert!(
            atomic.add_with_count(3.0, bad).is_err(),
            "atomic accepted weight {bad}"
        );
    }
    assert_eq!(sketch.weighted_count(), 2.25, "state corrupted by rejects");
    assert_eq!(
        atomic.snapshot_weighted().unwrap().weighted_count(),
        2.25,
        "atomic state corrupted by rejects"
    );
}
