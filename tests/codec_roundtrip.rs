//! Integration: the wire codec across presets, with hostile inputs.

use datasets::Dataset;
use ddsketch::{presets, AnyWeightedDDSketch, SketchConfig, SketchPayload, SketchView};
use proptest::prelude::*;

#[test]
fn every_preset_roundtrips_on_real_data() {
    let values = Dataset::Span.generate(20_000, 20);

    let mut bounded = presets::logarithmic_collapsing(0.01, 2048).unwrap();
    let mut fast = presets::fast(0.01, 2048).unwrap();
    let mut unbounded = presets::unbounded(0.01).unwrap();
    let mut sparse = presets::sparse(0.01).unwrap();
    let mut paper = presets::paper_exact(0.01, 2048).unwrap();
    for &v in &values {
        bounded.add(v).unwrap();
        fast.add(v).unwrap();
        unbounded.add(v).unwrap();
        sparse.add(v).unwrap();
        paper.add(v).unwrap();
    }

    macro_rules! check {
        ($sketch:expr, $ty:ty) => {{
            let bytes = $sketch.encode();
            let decoded = <$ty>::decode(&bytes).unwrap();
            assert_eq!(decoded.to_payload(), $sketch.to_payload());
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(decoded.quantile(q).unwrap(), $sketch.quantile(q).unwrap());
            }
        }};
    }
    check!(bounded, presets::BoundedDDSketch);
    check!(fast, presets::FastDDSketch);
    check!(unbounded, presets::UnboundedDDSketch);
    check!(sparse, presets::SparseDDSketch);
    check!(paper, presets::PaperExactDDSketch);
}

#[test]
fn decoded_sketches_keep_merging() {
    // decode → merge → encode → decode: the full agent/collector cycle.
    let mut a = presets::logarithmic_collapsing(0.01, 2048).unwrap();
    let mut b = presets::logarithmic_collapsing(0.01, 2048).unwrap();
    for v in Dataset::Pareto.generate(10_000, 21) {
        a.add(v).unwrap();
    }
    for v in Dataset::Pareto.generate(10_000, 22) {
        b.add(v).unwrap();
    }
    let mut da = presets::BoundedDDSketch::decode(&a.encode()).unwrap();
    let db = presets::BoundedDDSketch::decode(&b.encode()).unwrap();
    da.merge_from(&db).unwrap();
    let roundtrip = presets::BoundedDDSketch::decode(&da.encode()).unwrap();
    assert_eq!(roundtrip.count(), 20_000);
    a.merge_from(&b).unwrap();
    assert_eq!(roundtrip.to_payload().positive, a.to_payload().positive);
}

#[test]
fn cross_preset_decoding_is_rejected() {
    let mut fast = presets::fast(0.01, 2048).unwrap();
    fast.add(1.0).unwrap();
    let bytes = fast.encode();
    assert!(presets::BoundedDDSketch::decode(&bytes).is_err());
    assert!(presets::UnboundedDDSketch::decode(&bytes).is_err());
    assert!(presets::FastDDSketch::decode(&bytes).is_ok());
}

#[test]
fn payload_survives_manual_edits_within_reason() {
    // A payload is plain data; a pipeline may legitimately rewrite it
    // (e.g. dropping the negative side). Rebuilding must respect it.
    let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
    for v in [1.0, 2.0, -3.0] {
        s.add(v).unwrap();
    }
    let mut payload: SketchPayload = s.to_payload();
    payload.negative.clear();
    payload.min = 1.0;
    payload.sum = 3.0;
    let rebuilt = presets::BoundedDDSketch::from_payload(&payload).unwrap();
    assert_eq!(rebuilt.count(), 2);
    assert!(rebuilt.quantile(0.0).unwrap() >= 0.9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // DDS3 round-trips *exactly*: encode → `SketchView` → decode
    // preserves every f64 weight bit-for-bit (arbitrary finite weights,
    // both varint-integral and raw-escape encodings), re-encoding is
    // byte-identical, and the zero-copy view reads the same counts the
    // materialized decode does — across all five configurations.
    #[test]
    fn prop_dds3_roundtrips_exactly(
        pairs in proptest::collection::vec((-1e9f64..1e9, 0.001f64..1e9), 0..200),
    ) {
        for config in SketchConfig::all(0.02, 64) {
            let mut sketch = AnyWeightedDDSketch::new(config).unwrap();
            for (i, &(v, w)) in pairs.iter().enumerate() {
                // Alternate raw-escape (fractional) and varint-integral
                // weights so both DDS3 count encodings are on the wire.
                let w = if i % 2 == 0 { w } else { w.ceil() };
                sketch.add_with_count(v, w).unwrap();
            }
            let bytes = sketch.encode();
            prop_assert_eq!(&bytes[..4], b"DDS3");

            let decoded = AnyWeightedDDSketch::decode(&bytes).unwrap();
            prop_assert_eq!(decoded.config(), config);
            // The total weight is derived (zero bucket + Σ bins), so the
            // decoder's summation order may legally reassociate it; every
            // *stored* field below must round-trip bit-for-bit.
            let (wc, dc) = (sketch.weighted_count(), decoded.weighted_count());
            prop_assert!((dc - wc).abs() <= wc.abs() * 1e-12);
            prop_assert_eq!(decoded.zero_weight().to_bits(), sketch.zero_weight().to_bits());
            prop_assert_eq!(decoded.sum().to_bits(), sketch.sum().to_bits());
            prop_assert_eq!(decoded.min(), sketch.min());
            prop_assert_eq!(decoded.max(), sketch.max());
            prop_assert_eq!(decoded.positive_bins(), sketch.positive_bins());
            prop_assert_eq!(decoded.negative_bins(), sketch.negative_bins());
            prop_assert_eq!(decoded.encode(), bytes.clone(), "re-encode must be byte-identical");

            let view = SketchView::parse(&bytes).unwrap();
            prop_assert!(view.is_weighted());
            let vc = view.weighted_count();
            prop_assert!((vc - wc).abs() <= wc.abs() * 1e-12);
            prop_assert_eq!(
                view.weighted_positive_bins().collect::<Vec<_>>(),
                sketch.positive_bins()
            );
            prop_assert_eq!(
                view.weighted_negative_bins().collect::<Vec<_>>(),
                sketch.negative_bins()
            );
        }
    }

    #[test]
    fn prop_codec_never_panics_on_mutations(
        values in proptest::collection::vec(0.001f64..1e9, 1..100),
        flip_at in 0usize..4096,
        flip_bits in 0u8..255,
    ) {
        let mut s = presets::logarithmic_collapsing(0.02, 1024).unwrap();
        for &v in &values {
            s.add(v).unwrap();
        }
        let mut bytes = s.encode();
        if !bytes.is_empty() {
            let idx = flip_at % bytes.len();
            bytes[idx] ^= flip_bits;
        }
        // Must either decode to *something* or fail cleanly — never panic.
        let _ = SketchPayload::decode(&bytes);
        let _ = presets::BoundedDDSketch::decode(&bytes);
    }
}
