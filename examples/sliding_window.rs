//! Sliding-window quantiles: the paper's opening question — "what is the
//! p99 over the last five minutes?" — answered continuously while a
//! latency regression rolls through a stream.
//!
//! A `SlidingWindowSketch` keeps 300 one-second slots. Ingest advances
//! the window on timestamps (no wall clock); queries run one zero-copy
//! k-way walk over the live slots. The suffix-aggregate variant
//! precomputes two-stack aggregates so a query folds at most three
//! sketches regardless of slot count, and the decayed read weighs each
//! slot by `decay^age` at query time — three read strategies over the
//! same ring, all exact against the in-window data (the first two
//! bit-identically so).
//!
//! Run with: `cargo run --release --example sliding_window`

use ddsketch::SketchConfig;
use pipeline::{ConcurrentSlidingWindow, SlidingWindowSketch};

/// Deterministic pseudo-random latency in seconds: lognormal-ish body
/// with a heavy tail, scaled up during the "incident".
fn latency(tick: u64, incident: bool) -> f64 {
    let u = ((tick.wrapping_mul(2654435761) >> 7) % 10_000) as f64 / 10_000.0;
    let base = 0.004 + 0.02 * u * u * u * u; // body ~4ms, tail to ~24ms
    if incident {
        base * 8.0 // the regression: everything 8× slower
    } else {
        base
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SketchConfig::dense_collapsing(0.01, 2048);
    // 300 × 1s slots = a five-minute window, two-stack read path.
    let mut window = SlidingWindowSketch::with_suffix_aggregates(config, 1, 300)?;

    // Twenty minutes of traffic at 200 requests/second; minutes 8–11 are
    // an incident. Watch the sliding p99 inflate as the bad minutes
    // enter the window and deflate as they age out — no resets, no
    // fixed-epoch seams.
    println!("five-minute sliding p99 (300 × 1s slots, suffix-aggregate reads):");
    let mut out = Vec::new();
    for ts in 0..1200u64 {
        let incident = (480..660).contains(&ts);
        for r in 0..200u64 {
            window.record(ts, latency(ts * 200 + r, incident))?;
        }
        if ts % 60 == 59 {
            window.quantiles_into(&[0.5, 0.99], &mut out)?;
            println!(
                "  t={:>4}s  window [{:>4}s..{:>4}s]  p50={:>6.2} ms  p99={:>6.2} ms{}",
                ts,
                window.window_start().unwrap(),
                window.head().unwrap(),
                out[0] * 1e3,
                out[1] * 1e3,
                if incident { "   << incident live" } else { "" }
            );
        }
    }

    // The same window, recent-biased: with slot weights decaying 2% per
    // second of age, the read recovers from the incident faster than the
    // evenly-weighted one — the paper's α guarantee per bucket, the
    // operator's recency preference per slot.
    let even = window.quantile(0.99)?;
    let biased = window.quantiles_decayed(&[0.99], 0.98)?[0];
    println!(
        "\nfinal window p99: evenly weighted {:.2} ms, recent-biased {:.2} ms",
        even * 1e3,
        biased * 1e3
    );

    // Sharded writers: each thread feeds its own full sliding window
    // behind its own lock (no roll coordination, no attribution skew);
    // reads merge every shard's live slots in one walk. The merged
    // answer must match a single-writer window fed the same stream —
    // full mergeability, sliding.
    let concurrent = ConcurrentSlidingWindow::with_config(config, 1, 300, 4)?;
    let mut single = SlidingWindowSketch::with_config(config, 1, 300)?;
    std::thread::scope(|scope| {
        for shard in 0..4u64 {
            let concurrent = &concurrent;
            scope.spawn(move || {
                for ts in 0..300u64 {
                    for r in 0..50u64 {
                        let v = latency(shard * 1_000_000 + ts * 50 + r, false);
                        concurrent.record_hinted(shard as usize, ts, v).unwrap();
                    }
                }
            });
        }
    });
    for ts in 0..300u64 {
        for shard in 0..4u64 {
            for r in 0..50u64 {
                single.record(ts, latency(shard * 1_000_000 + ts * 50 + r, false))?;
            }
        }
    }
    let qs = [0.5, 0.99];
    assert_eq!(
        concurrent.quantiles(&qs)?,
        single.quantiles(&qs)?,
        "4 sharded writers ≡ 1 writer, bit for bit"
    );
    println!(
        "\n4-shard concurrent window ({} requests): p50={:.2} ms p99={:.2} ms — identical to the single-writer window",
        concurrent.count(),
        concurrent.quantiles(&qs)?[0] * 1e3,
        concurrent.quantiles(&qs)?[1] * 1e3,
    );
    Ok(())
}
