//! Side-by-side accuracy comparison of all four sketches on a
//! heavy-tailed stream — the paper's Section 4.4 story in one screen:
//! rank-error sketches look fine on rank error but can be off by orders
//! of magnitude in *value* on the upper quantiles.
//!
//! Run with: `cargo run --release --example sketch_comparison [n]`

use datasets::Dataset;
use evalkit::{ExactOracle, Table};
use gkarray::GKArray;
use hdrhist::ScaledHdr;
use momentsketch::MomentSketch;
use sketch_core::QuantileSketch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);

    let ds = Dataset::Pareto;
    println!("data set: {} (n = {n})", ds.name());
    let values = ds.generate(n, 99);
    let oracle = ExactOracle::new(values.clone());

    // Paper Table 2 configurations.
    let mut dd = ddsketch::presets::logarithmic_collapsing(0.01, 2048)?;
    let mut gk = GKArray::new(0.01)?;
    let mut hdr = ScaledHdr::new(1e10, 1e3, 2)?;
    let mut moments = MomentSketch::new(20, true)?;

    let mut hdr_drops = 0u64;
    for &v in &values {
        dd.add(v)?;
        gk.add(v)?;
        if hdr.add(v).is_err() {
            hdr_drops += 1; // bounded range — HDR's documented limitation
        }
        moments.add(v)?;
    }
    gk.flush();
    if hdr_drops > 0 {
        println!("HDR dropped {hdr_drops} out-of-range values (bounded sketch)");
    }

    let mut t = Table::new(
        "relative error of quantile estimates (actual value in col 2)",
        &[
            "q",
            "actual",
            "DDSketch",
            "GKArray",
            "HDRHistogram",
            "MomentSketch",
        ],
    );
    for q in [0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
        let rel = |est: f64| format!("{:.2e}", oracle.relative_error(q, est));
        t.row(vec![
            format!("p{}", q * 100.0),
            format!("{:.3}", oracle.quantile(q)),
            rel(dd.quantile(q)?),
            rel(gk.quantile(q)?),
            rel(hdr.quantile(q)?),
            rel(moments.quantile(q)?),
        ]);
    }
    t.print();

    println!();
    let mut sizes = Table::new("sketch sizes", &["sketch", "kB"]);
    use sketch_core::MemoryFootprint;
    sizes.row(vec!["DDSketch".into(), format!("{:.2}", dd.memory_kb())]);
    sizes.row(vec!["GKArray".into(), format!("{:.2}", gk.memory_kb())]);
    sizes.row(vec![
        "HDRHistogram".into(),
        format!("{:.2}", hdr.memory_kb()),
    ]);
    sizes.row(vec![
        "MomentSketch".into(),
        format!("{:.2}", moments.memory_kb()),
    ]);
    sizes.print();
    Ok(())
}
