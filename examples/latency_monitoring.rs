//! The paper's Figure 1 scenario end-to-end: worker threads sketch their
//! request latencies per 10-second window, ship encoded sketches to an
//! aggregator, and the aggregator answers quantile queries over any
//! endpoint, window, or rollup — exactly as if it had seen every request.
//!
//! # Batched ingestion
//!
//! The workers inside [`run_simulation`] use the batched fast path: each
//! per-(endpoint, window) cell buffers latencies and flushes them through
//! `DDSketch::add_slice`, which indexes the whole batch in one tight loop
//! and pays store bookkeeping once per flush. Because `add_slice` is
//! bit-identical to per-value `add`, the distributed-equals-sequential
//! check at the bottom of this example still holds exactly. The same
//! pattern is available at every layer: `ConcurrentSketch::add_slice`
//! (one lock acquisition per batch) and `TimeSeriesStore::record_slice`
//! (one cell lookup per batch).
//!
//! Run with: `cargo run --release --example latency_monitoring`

use ddsketch::SketchConfig;
use pipeline::{run_sequential, run_simulation, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig {
        workers: 8,
        requests_per_worker: 100_000,
        duration_secs: 600,
        window_secs: 10,
        // The sketch parameters are runtime data: swap in
        // `SketchConfig::sparse(0.01)` or any other preset and the whole
        // pipeline — workers, wire format, aggregator — follows.
        sketch: SketchConfig::dense_collapsing(0.01, 2048),
        seed: 42,
    };

    println!(
        "simulating {} workers × {} requests over {}s ({}s windows)…",
        config.workers, config.requests_per_worker, config.duration_secs, config.window_secs
    );
    let report = run_simulation(&config)?;
    println!(
        "aggregated {} requests from {} payloads ({:.1} kB on the wire, {:.1} bytes/request)",
        report.total_requests,
        report.payloads,
        report.wire_bytes as f64 / 1000.0,
        report.wire_bytes as f64 / report.total_requests as f64,
    );

    // Per-window p99 of the heavy-tailed checkout endpoint.
    println!("\nweb.checkout p50 / p99 per window (ms):");
    let p50 = report.store.quantile_series("web.checkout", 0.5);
    let p99 = report.store.quantile_series("web.checkout", 0.99);
    for ((w, a), (_, b)) in p50.iter().zip(&p99) {
        println!("  t={w:>4}s  p50={:>8.2}  p99={:>9.2}", a * 1e3, b * 1e3);
    }

    // The monitoring question the paper opens with: "what is the p99
    // over the last five minutes?" — a *sliding* window, answered here
    // two ways that must agree. First, straight off the store's fixed
    // cells: `sliding_view` borrows the trailing 30 cells and runs one
    // zero-copy k-way walk over them.
    let view = report
        .store
        .sliding_view("web.checkout", 300)
        .expect("checkout has cells");
    let (from, to) = view.range();
    println!(
        "\nsliding 5-minute p99 (cells [{from}s, {to}s), {} requests): {:.2} ms",
        view.count(),
        view.quantile(0.99)? * 1e3
    );
    // Second, through a continuously-fed `SlidingWindowSketch` with the
    // two-stack suffix-aggregate read path (steady-state queries fold ≤3
    // sketches no matter how many slots the window has). Feeding it the
    // same cells via `absorb` reproduces the view exactly — full
    // mergeability again.
    let mut sliding = pipeline::SlidingWindowSketch::with_suffix_aggregates(config.sketch, 10, 30)?;
    for (metric, window_start, cell) in report.store.cells() {
        if metric == "web.checkout" {
            sliding.absorb(window_start, cell)?;
        }
    }
    assert_eq!(
        sliding.quantile(0.99)?,
        view.quantile(0.99)?,
        "the live window and the cell view see the same five minutes"
    );
    // A recent-biased read on the same window: each slot's weight decays
    // by 0.98 per 10s of age at query time — nothing is copied.
    println!(
        "sliding 5-minute p99, recent-biased (decay 0.98/slot): {:.2} ms",
        sliding.quantiles_decayed(&[0.99], 0.98)?[0] * 1e3
    );

    // Roll the 10s windows up into 60s windows — losslessly, thanks to
    // full mergeability. Each 60s cell is produced by one k-way
    // `merge_many` over its six 10s cells.
    let rolled = report.store.rollup(6)?;
    println!("\nrolled up to 60s windows: {} cells", rolled.num_cells());
    for (w, v) in rolled.quantile_series("web.checkout", 0.99) {
        println!("  t={w:>4}s  p99={:>9.2} ms", v * 1e3);
    }

    // Prove the distributed path lost nothing: compare against a single
    // sequential ingest of the same streams.
    let sequential = run_sequential(&config)?;
    let mut mismatches = 0;
    for (metric, window_start, direct) in sequential.cells() {
        let agg = report.store.quantile(metric, window_start, 0.99);
        if agg != direct.quantile(0.99).ok() {
            mismatches += 1;
        }
    }
    println!(
        "\ndistributed vs sequential p99 mismatches across {} cells: {}",
        sequential.num_cells(),
        mismatches
    );
    assert_eq!(mismatches, 0, "full mergeability means zero mismatches");

    // Retention: a long-lived aggregator stays bounded by archiving old
    // fine windows into the (lossless) rollup and evicting them. The
    // coarse cells keep answering quantile queries for the archived span.
    let mut store = report.store;
    let horizon = 540; // keep the last minute at 10s resolution
    let evicted = store.evict_before(horizon);
    println!(
        "\nevicted {evicted} fine cells before t={horizon}s; {} remain \
         (archived at 60s resolution: {} cells)",
        store.num_cells(),
        rolled.num_cells()
    );
    let archived_p99 = rolled
        .quantile("web.checkout", 0, 0.99)
        .expect("archived window");
    println!("archived window t=0 p99 = {:.2} ms", archived_p99 * 1e3);
    Ok(())
}
