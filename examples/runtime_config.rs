//! Runtime configuration end-to-end: pick a sketch configuration from
//! "operational" input (here, a pretend config file), run the same
//! monitoring pipeline under every choice, and compare the trade-offs —
//! no compile-time types involved anywhere.
//!
//! Run with: `cargo run --release --example runtime_config`

use ddsketch::{AnyDDSketch, DDSketchBuilder, SketchConfig};
use pipeline::{run_simulation, SimConfig};

/// Parse an operator-facing config string — the kind of thing a YAML file
/// or CLI flag would carry — into a [`SketchConfig`].
fn parse(spec: &str, alpha: f64) -> Result<SketchConfig, Box<dyn std::error::Error>> {
    let builder = DDSketchBuilder::new(alpha);
    Ok(match spec {
        "unbounded" => builder.unbounded().config()?,
        "dense" => builder.dense_collapsing(2048).config()?,
        "fast" => builder.cubic().dense_collapsing(2048).config()?,
        "sparse" => builder.sparse().config()?,
        "paper-exact" => builder.sparse_collapsing(2048).config()?,
        other => return Err(format!("unknown sketch spec {other:?}").into()),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("spec         α      p50(ms)  p99(ms)  wire(kB)  sketch(kB)");
    for spec in ["unbounded", "dense", "fast", "sparse", "paper-exact"] {
        let sketch = parse(spec, 0.01)?;
        let report = run_simulation(&SimConfig {
            workers: 4,
            requests_per_worker: 50_000,
            duration_secs: 60,
            window_secs: 60,
            sketch,
            seed: 7,
        })?;
        // One 60s window: query the heavy-tailed endpoint.
        let p = report
            .store
            .quantile("web.checkout", 0, 0.5)
            .zip(report.store.quantile("web.checkout", 0, 0.99))
            .expect("cell exists");
        let sketch_bytes: usize = report
            .store
            .cells()
            .map(|(_, _, s): (_, _, &AnyDDSketch)| s.memory_bytes())
            .sum();
        println!(
            "{spec:<12} {:<6} {:>7.2}  {:>7.2}  {:>8.1}  {:>10.1}",
            sketch.alpha,
            p.0 * 1e3,
            p.1 * 1e3,
            report.wire_bytes as f64 / 1000.0,
            sketch_bytes as f64 / 1000.0,
        );
    }

    // The quantile estimates agree across configurations to within ~α,
    // because every configuration carries the same relative-error
    // guarantee — what changes is memory and speed, not accuracy.
    let dense = parse("dense", 0.01)?.build()?;
    let sparse = parse("sparse", 0.01)?.build()?;
    assert_eq!(dense.relative_accuracy(), sparse.relative_accuracy());
    println!("\nall configurations guarantee the same α; pick by memory/speed");
    Ok(())
}
