//! Serialization walk-through: encode sketches on many "hosts", ship the
//! bytes, decode and merge at the collector, and round-trip through the
//! serde payload for JSON-ish pipelines.
//!
//! Run with: `cargo run --release --example wire_format`

use datasets::Dataset;
use ddsketch::{presets, SketchPayload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 hosts each sketch 100k span durations and ship the bytes.
    let hosts = 16;
    let per_host = 100_000;
    let mut wire: Vec<Vec<u8>> = Vec::new();
    for host in 0..hosts {
        let mut sketch = presets::logarithmic_collapsing(0.01, 2048)?;
        for v in Dataset::Span.stream(host as u64).take(per_host) {
            sketch.add(v)?;
        }
        wire.push(sketch.encode());
    }
    let total_bytes: usize = wire.iter().map(Vec::len).sum();
    println!(
        "{hosts} hosts × {per_host} values → {} encoded sketches, {:.1} kB total \
         ({:.2} bytes/value vs 8 for raw f64)",
        wire.len(),
        total_bytes as f64 / 1000.0,
        total_bytes as f64 / (hosts * per_host) as f64,
    );

    // The collector decodes and merges everything.
    let mut merged = presets::logarithmic_collapsing(0.01, 2048)?;
    for bytes in &wire {
        let sketch = presets::BoundedDDSketch::decode(bytes)?;
        merged.merge_from(&sketch)?;
    }
    println!("merged count: {}", merged.count());
    for q in [0.5, 0.95, 0.99] {
        println!("p{:<4} = {:>14.0} ns", q * 100.0, merged.quantile(q)?);
    }

    // The payload struct is plain serde data — inspect or transform it.
    let payload: SketchPayload = merged.to_payload();
    println!(
        "\npayload: α = {}, {} positive bins, zero count {}, bin limit {}",
        payload.relative_accuracy,
        payload.positive.len(),
        payload.zero_count,
        payload.bin_limit,
    );
    let restored = presets::BoundedDDSketch::from_payload(&payload)?;
    assert_eq!(restored.quantile(0.99)?, merged.quantile(0.99)?);
    println!("payload round-trip preserves quantiles exactly");

    // Corruption is rejected, never mis-decoded.
    let mut corrupted = wire[0].clone();
    corrupted.truncate(corrupted.len() / 2);
    assert!(presets::BoundedDDSketch::decode(&corrupted).is_err());
    println!("truncated payload correctly rejected");
    Ok(())
}
