//! Serialization walk-through: encode sketches on many "hosts", ship the
//! bytes, and decode at the collector **without knowing what each host
//! runs** — the `DDS2` wire format carries the mapping and store family,
//! so `AnyDDSketch::decode` reconstructs the right variant by itself.
//!
//! Run with: `cargo run --release --example wire_format`

use datasets::Dataset;
use ddsketch::{AnyDDSketch, DDSketchBuilder, SketchConfig, SketchPayload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 hosts each sketch 100k span durations and ship the bytes. The
    // fleet is heterogeneous: hosts run whichever configuration suits
    // them (a rolling config migration, say) — the collector does not
    // care.
    let hosts = 16;
    let per_host = 100_000;
    let configs = [
        SketchConfig::dense_collapsing(0.01, 2048),
        SketchConfig::fast(0.01, 2048),
        SketchConfig::sparse(0.01),
    ];
    let mut wire: Vec<Vec<u8>> = Vec::new();
    for host in 0..hosts {
        let mut sketch = configs[host % configs.len()].build()?;
        let mut buffer = Vec::with_capacity(1024);
        for v in Dataset::Span.stream(host as u64).take(per_host) {
            buffer.push(v);
            if buffer.len() == buffer.capacity() {
                sketch.add_slice(&buffer)?;
                buffer.clear();
            }
        }
        sketch.add_slice(&buffer)?;
        wire.push(sketch.encode());
    }
    let total_bytes: usize = wire.iter().map(Vec::len).sum();
    println!(
        "{hosts} hosts × {per_host} values → {} encoded sketches, {:.1} kB total \
         ({:.2} bytes/value vs 8 for raw f64)",
        wire.len(),
        total_bytes as f64 / 1000.0,
        total_bytes as f64 / (hosts * per_host) as f64,
    );

    // The collector decodes self-describingly and buckets by config:
    // same-config sketches merge exactly, cross-config merges are
    // rejected rather than silently wrong.
    let mut merged: Vec<AnyDDSketch> = Vec::new();
    for bytes in &wire {
        let sketch = AnyDDSketch::decode(bytes)?;
        match merged.iter_mut().find(|m| m.config() == sketch.config()) {
            Some(m) => m.merge_from(&sketch)?,
            None => merged.push(sketch),
        }
    }
    for m in &merged {
        println!(
            "\n{} (α = {}): merged count {}",
            m.config().name(),
            m.config().alpha,
            m.count()
        );
        for q in [0.5, 0.95, 0.99] {
            println!("  p{:<4} = {:>14.0} ns", q * 100.0, m.quantile(q)?);
        }
    }

    // The payload struct is plain data — inspect or transform it.
    let payload: SketchPayload = merged[0].to_payload();
    println!(
        "\npayload: α = {}, store kind {}, {} positive bins, zero count {}, bin limit {}",
        payload.relative_accuracy,
        payload.store,
        payload.positive.len(),
        payload.zero_count,
        payload.bin_limit,
    );
    let restored = AnyDDSketch::from_payload(&payload)?;
    assert_eq!(restored.quantile(0.99)?, merged[0].quantile(0.99)?);
    println!("payload round-trip preserves quantiles exactly");

    // Statically-typed decoding still works when the caller *does* know
    // the configuration (zero-dispatch hot paths).
    let bounded = DDSketchBuilder::new(0.01).dense_collapsing(2048).build()?;
    let typed = ddsketch::BoundedDDSketch::decode(&bounded.encode())?;
    assert!(typed.is_empty());

    // Corruption is rejected, never mis-decoded.
    let mut corrupted = wire[0].clone();
    corrupted.truncate(corrupted.len() / 2);
    assert!(AnyDDSketch::decode(&corrupted).is_err());
    println!("truncated payload correctly rejected");
    Ok(())
}
