//! Weighted ingestion end to end: f64 counts through the sketch, the
//! DDS3 wire dialect, and ingest-time decay.
//!
//! Part 1 — pre-aggregated submissions. Three agents trace-sample their
//! request streams at different rates (1-in-1, 1-in-10, 1-in-100) and
//! record each sampled latency with weight = the inverse sampling rate,
//! so the sketch estimates the *unsampled* population. Each agent ships
//! one DDS3 frame; the aggregator decodes and merges them and answers
//! population quantiles, checked here against an exact weighted oracle.
//!
//! Part 2 — ingest-time decay. A `DecayedIngestWindow` multiplies every
//! resident weight by `decay` per one-second slot, so an incident's pull
//! on the p99 fades smoothly as it ages instead of falling off a window
//! edge — one resident sketch, no ring of slots.
//!
//! Run with: `cargo run --release --example weighted`

use ddsketch::{AnyWeightedDDSketch, SketchConfig};
use evalkit::ExactOracle;
use pipeline::DecayedIngestWindow;

/// Deterministic pseudo-random latency in seconds: ~4ms body with a
/// heavy tail, scaled up while `incident` holds.
fn latency(tick: u64, incident: bool) -> f64 {
    let u = ((tick.wrapping_mul(2654435761) >> 7) % 10_000) as f64 / 10_000.0;
    let base = 0.004 + 0.02 * u * u * u * u;
    if incident {
        base * 8.0
    } else {
        base
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SketchConfig::dense_collapsing(0.01, 2048);

    // ---- Part 1: trace-sampled agents, one DDS3 frame each -------------
    println!("trace-sampled agents (weight = inverse sampling rate):");
    let mut oracle = ExactOracle::new(Vec::new());
    let mut frames = Vec::new();
    for (agent, rate) in [("edge-a", 1u64), ("edge-b", 10), ("edge-c", 100)] {
        let mut sketch = AnyWeightedDDSketch::new(config)?;
        let mut kept = 0u64;
        for tick in 0..100_000u64 {
            let value = latency(tick.wrapping_add(rate * 7919), false);
            oracle.add(value); // the full population, for ground truth
            if tick % rate == 0 {
                sketch.add_with_count(value, rate as f64)?;
                kept += 1;
            }
        }
        let frame = sketch.encode();
        println!(
            "  {agent}: kept {kept:>6} of 100000 traces, \
             estimated weight {:>9.0}, frame {:>5} bytes",
            sketch.weighted_count(),
            frame.len()
        );
        frames.push(frame);
    }

    // The aggregator never sees a raw value — only DDS3 frames.
    let mut merged = AnyWeightedDDSketch::new(config)?;
    for frame in &frames {
        merged.merge_from(&AnyWeightedDDSketch::decode(frame)?)?;
    }
    println!(
        "  merged: weight {:.0} estimating {} population values",
        merged.weighted_count(),
        oracle.len()
    );
    println!("  population quantiles (alpha = {}):", config.alpha);
    for q in [0.5, 0.95, 0.99] {
        let est = merged.quantile(q)?;
        let exact = oracle.weighted_quantile(q);
        println!(
            "    p{:<4} est {:>9.5}s  exact {:>9.5}s  rel.err {:+.4}",
            (q * 100.0) as u32,
            est,
            exact,
            (est - exact) / exact
        );
    }

    // ---- Part 2: ingest-time decay -------------------------------------
    // One decay tick per one-second slot; after k seconds a value's
    // weight is decay^k. With decay 0.95 an incident loses ~40% of its
    // pull in 10s and ~95% in a minute.
    println!("\ningest-time decay (decay 0.95/s, incident seconds 40-59):");
    let mut window = DecayedIngestWindow::with_config(config, 1, 0.95)?;
    for second in 0..120u64 {
        let incident = (40..60).contains(&second);
        for r in 0..200u64 {
            window.record(second, latency(second * 200 + r, incident))?;
        }
        if (second + 1) % 10 == 0 {
            let mut out = Vec::new();
            window.quantiles_into(&[0.99], &mut out)?;
            println!(
                "  t={:>3}s  p99 {:>8.5}s  surviving weight {:>7.1}{}",
                second + 1,
                out[0],
                window.weighted_count(),
                if incident { "   << incident" } else { "" }
            );
        }
    }
    Ok(())
}
