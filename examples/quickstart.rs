//! Quickstart: build a DDSketch, feed it latencies, query quantiles,
//! and merge sketches from two "hosts".
//!
//! Run with: `cargo run --release --example quickstart`

use datasets::{Distribution, Weibull};
use ddsketch::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's production configuration: 1% relative error, at most
    // 2048 buckets (covers ~80µs .. 1 year of latencies in seconds).
    let mut sketch = presets::logarithmic_collapsing(0.01, 2048)?;

    // Simulate request latencies (seconds) from a Weibull model.
    let mut rng = SmallRng::seed_from_u64(7);
    let latency = Weibull::new(0.120, 1.4);
    for _ in 0..1_000_000 {
        sketch.add(latency.sample(&mut rng))?;
    }

    println!("handled {} requests", sketch.count());
    println!("mean    = {:.1} ms", sketch.average().unwrap() * 1e3);
    // Querying several quantiles at once walks the buckets a single time.
    let qs = [0.5, 0.9, 0.95, 0.99, 0.999];
    for (q, est) in qs.iter().zip(sketch.quantiles(&qs)?) {
        println!("p{:<5} = {:.1} ms", q * 100.0, est * 1e3);
    }

    // Batched ingestion: producers that buffer values (log shippers,
    // request handlers draining a queue) should flush through `add_slice`,
    // which classifies the whole batch in one pass and pays the store's
    // growth/collapse bookkeeping once per batch instead of once per
    // value — >2× faster than per-value `add` at batch size 1024, and
    // bit-identical to it. A batch containing an unsupported value (NaN,
    // ±∞) is rejected atomically, leaving the sketch untouched.
    let mut batcher = presets::logarithmic_collapsing(0.01, 2048)?;
    let mut buffer = Vec::with_capacity(1024);
    for _ in 0..1_000_000 {
        buffer.push(latency.sample(&mut rng));
        if buffer.len() == buffer.capacity() {
            batcher.add_slice(&buffer)?;
            buffer.clear();
        }
    }
    batcher.add_slice(&buffer)?; // flush the remainder
    println!(
        "\nbatched ingestion handled {} requests, p99 = {:.1} ms",
        batcher.count(),
        batcher.quantile(0.99)? * 1e3
    );

    // A second host's sketch merges exactly — the merged result is
    // bucket-identical to having seen both streams on one host.
    let mut other_host = presets::logarithmic_collapsing(0.01, 2048)?;
    for _ in 0..1_000_000 {
        other_host.add(latency.sample(&mut rng) * 2.0)?; // slower host
    }
    sketch.merge_from(&other_host)?;
    println!(
        "\nafter merging the slow host ({} requests total):",
        sketch.count()
    );
    println!("p99    = {:.1} ms", sketch.quantile(0.99)? * 1e3);

    // Sketches serialize compactly for shipping to a monitoring backend.
    let bytes = sketch.encode();
    println!(
        "wire size: {} bytes for {} values",
        bytes.len(),
        sketch.count()
    );
    let decoded = presets::BoundedDDSketch::decode(&bytes)?;
    assert_eq!(decoded.quantile(0.99)?, sketch.quantile(0.99)?);
    Ok(())
}
