//! Fleet demo, now over real sockets: `sketchd` listens on a Unix
//! domain socket, 50 agent threads each build per-window sketches
//! locally (after a lock-free multi-worker ingest on their host) and
//! ship them as `DDSF` frames with [`sketchd::AgentSender`], while a
//! [`sketchd::QueryClient`] asks the live server for fleet quantiles —
//! the paper's Figure 1 deployment, end to end, with a kill/restore
//! epilogue riding the checkpoint plane.
//!
//! Run with: `cargo run --release --example aggregator`

use datasets::Dataset;
use ddsketch::SketchConfig;
use pipeline::ConcurrentSketch;
use sketchd::{AgentSender, Bind, QueryClient, ServerConfig, ServerHandle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SketchConfig::dense_collapsing(0.01, 2048);
    let agents = 50;
    let flushes = 20; // one per-window sketch per agent per "second"
    let batch = 512; // values per window

    // ── Ingest plane (one host) ────────────────────────────────────────
    // Before anything ships, each host's worker threads note latencies
    // into ONE shared sketch — lock-free: a dense-store config puts
    // ConcurrentSketch on the atomic plane, where `add` is a single
    // relaxed fetch_add through a shared reference.
    {
        let workers = 4usize;
        let per_worker = 250_000usize;
        let values = Dataset::Pareto.generate(workers * per_worker, 7);
        let shared = ConcurrentSketch::with_config(config, workers)?;
        assert!(shared.is_lock_free());
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for (t, mine) in values.chunks(per_worker).enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    for &v in mine {
                        shared.add_hinted(t, v).unwrap();
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let total = workers * per_worker;
        println!(
            "{workers} workers ingested {total} values lock-free in {:.1} ms \
             ({:.1} Mops/s aggregate); p99 ≈ {:.3}",
            secs * 1e3,
            total as f64 / secs / 1e6,
            shared.quantile(0.99)?
        );
    }

    // ── The aggregator fleet server ────────────────────────────────────
    // `sketchd` on a Unix domain socket: per-tenant sharded state,
    // bounded staging backpressure, and a checkpoint directory so a
    // restart replays state instead of losing it.
    let dir = std::env::temp_dir().join(format!("sketchd-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let server_config = ServerConfig {
        sketch: config,
        window_secs: 1,
        checkpoint_dir: Some(dir.join("checkpoints")),
        ..ServerConfig::default()
    };
    let server = ServerHandle::spawn(&Bind::Unix(dir.join("sketchd.sock")), server_config.clone())?;
    println!("sketchd listening on {}", server.endpoint());

    // ── Agents ─────────────────────────────────────────────────────────
    // Each agent builds one sketch per window from its local latency
    // stream and ships it over its own connection. One agent injects a
    // corrupt payload mid-stream: the server rejects exactly that frame
    // and the stream carries on.
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for agent in 0..agents {
            let endpoint = server.endpoint().clone();
            scope.spawn(move || {
                let mut sender = AgentSender::connect(endpoint, "acme").unwrap();
                let mut latencies = Dataset::Pareto.stream(agent);
                let metric = if agent % 2 == 0 {
                    "api.latency"
                } else {
                    "db.latency"
                };
                for second in 0..flushes {
                    let mut sketch = config.build().unwrap();
                    for v in latencies.by_ref().take(batch) {
                        sketch.add(v).unwrap();
                    }
                    sender.send(metric, second, &sketch).unwrap();
                    if agent == 13 && second == 10 {
                        sender
                            .send_encoded(metric, second, b"DDS2 line noise")
                            .unwrap();
                    }
                }
                sender.close().unwrap();
            });
        }
    });

    // ── Queries, live off the server ───────────────────────────────────
    let mut client = QueryClient::connect(server.endpoint())?;
    // Close() flushes to the kernel; wait until the server has accounted
    // for every frame, then SYNC so staged frames are absorbed.
    let shipped = agents * flushes + 1; // + the corrupt one
    loop {
        let stats = client.stats()?;
        if stats.frames_ingested + stats.frames_rejected >= shipped {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    client.sync()?;
    let stats = client.stats()?;
    println!(
        "{agents} agents × {flushes} flushes → {} payloads absorbed, {} rejected \
         ({:.1} kB on the wire) in {:.1} ms",
        stats.frames_ingested,
        stats.frames_rejected,
        stats.bytes_ingested as f64 / 1000.0,
        start.elapsed().as_secs_f64() * 1e3,
    );
    assert_eq!(stats.frames_rejected, 1, "exactly the injected corruption");

    let p = client.quantiles("acme", &[0.5, 0.95, 0.99])?;
    println!(
        "fleet over {} values: p50 {:.3}  p95 {:.3}  p99 {:.3}",
        client.count("acme")?,
        p[0],
        p[1],
        p[2]
    );
    let series = client.series("acme", "api.latency", 0.99)?;
    println!(
        "api.latency p99 per window: first {:.3} @ t={}, last {:.3} @ t={}",
        series.first().unwrap().1,
        series.first().unwrap().0,
        series.last().unwrap().1,
        series.last().unwrap().0,
    );

    // Full mergeability (Proposition 3): the server's sharded, folded
    // state answers exactly like one sketch over every agent's raw
    // values — bit-identical, not approximately equal.
    let mut union = config.build()?;
    for agent in 0..agents {
        for v in Dataset::Pareto.stream(agent).take(batch * flushes as usize) {
            union.add(v)?;
        }
    }
    assert_eq!(p, union.quantiles(&[0.5, 0.95, 0.99])?);
    println!("✓ served quantiles ≡ one sketch over all raw values");

    // ── Kill and restore ───────────────────────────────────────────────
    // Graceful shutdown drains staged frames and takes a final
    // checkpoint sweep; a new server booted on the same directory
    // replays it and answers identically.
    let expected = client.count("acme")?;
    drop(client);
    server.shutdown()?;
    let server2 = ServerHandle::spawn(&Bind::Unix(dir.join("sketchd.sock")), server_config)?;
    let mut client = QueryClient::connect(server2.endpoint())?;
    assert_eq!(client.count("acme")?, expected);
    assert_eq!(client.quantiles("acme", &[0.5, 0.95, 0.99])?, p);
    println!(
        "✓ restart restored {} values from checkpoints; quantiles unchanged",
        expected
    );
    server2.shutdown()?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
