//! Fleet demo: worker threads ingest latencies lock-free on one host,
//! agents ship encoded sketches over frame streams, the aggregator
//! answers fleet quantiles **without decoding a single payload into a
//! sketch**, and the time-series store checkpoints itself for restarts —
//! the paper's Figure 1 deployment, end to end.
//!
//! Run with: `cargo run --release --example aggregator`

use datasets::Dataset;
use ddsketch::codec::{FrameReader, FrameWriter};
use ddsketch::{SketchConfig, SketchView};
use pipeline::{Aggregator, ConcurrentSketch, TimeSeriesStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SketchConfig::dense_collapsing(0.01, 2048);
    let agents = 50;
    let flushes = 20; // one flush per agent per "second"

    // ── Ingest plane ───────────────────────────────────────────────────
    // Before anything ships anywhere, each host's worker threads note
    // latencies into ONE shared sketch — lock-free: a dense-store config
    // puts ConcurrentSketch on the atomic plane, where `add` is a single
    // relaxed fetch_add through a shared reference.
    {
        let workers = 4usize;
        let per_worker = 250_000usize;
        let values = Dataset::Pareto.generate(workers * per_worker, 7);
        let shared = ConcurrentSketch::with_config(config, workers)?;
        assert!(shared.is_lock_free());
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for (t, mine) in values.chunks(per_worker).enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    for &v in mine {
                        shared.add_hinted(t, v).unwrap();
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let total = workers * per_worker;
        println!(
            "{workers} workers ingested {total} values lock-free in {:.1} ms \
             ({:.1} Mops/s aggregate); p99 ≈ {:.3}",
            secs * 1e3,
            total as f64 / secs / 1e6,
            shared.quantile(0.99)?
        );
        // Writers joined => the shared view is exact, not approximate.
        assert_eq!(shared.count() as usize, total);
    }

    // ── Agents ─────────────────────────────────────────────────────────
    // Each agent batches its per-second sketches onto one frame stream
    // (one connection or file per agent, many payloads per stream).
    let mut streams: Vec<Vec<u8>> = Vec::new();
    let mut shipped = 0usize;
    for agent in 0..agents {
        let mut writer = FrameWriter::new(Vec::new())?;
        let mut latencies = Dataset::Pareto.stream(agent as u64);
        for _ in 0..flushes {
            let mut sketch = config.build()?;
            let batch: Vec<f64> = latencies.by_ref().take(512).collect();
            sketch.add_slice(&batch)?;
            writer.write_sketch(&sketch)?;
            shipped += 1;
        }
        streams.push(writer.finish()?);
    }
    let wire_bytes: usize = streams.iter().map(Vec::len).sum();
    println!(
        "{agents} agents × {flushes} flushes → {shipped} payloads, {:.1} kB on the wire",
        wire_bytes as f64 / 1000.0
    );

    // A transit hop can inspect any frame without decoding it: parse a
    // zero-copy view straight over the bytes.
    {
        let mut reader = FrameReader::new(streams[0].as_slice())?;
        let mut frame = Vec::new();
        reader.read_frame(&mut frame)?;
        let view = SketchView::parse(&frame)?;
        println!(
            "peeked one frame: {} values, p99 ≈ {:.3} ({} bins, {} bytes, no sketch built)",
            view.count(),
            view.quantile(0.99)?,
            view.num_bins(),
            frame.len()
        );
    }

    // ── Aggregator ─────────────────────────────────────────────────────
    // Feed every stream. Each frame is decoded once into a recycled
    // staging buffer; every 32 frames fold into the resident sketch with
    // one bulk `add_bins` pass per store. No per-payload sketch, ever.
    let mut agg = Aggregator::with_config(config, 32)?;
    for stream in &streams {
        agg.feed_stream(&mut FrameReader::new(stream.as_slice())?)?;
    }
    let p = agg.quantiles(&[0.5, 0.95, 0.99])?;
    println!(
        "fleet over {} payloads ({} values): p50 {:.3}  p95 {:.3}  p99 {:.3}",
        agg.frames_received(),
        agg.count(),
        p[0],
        p[1],
        p[2]
    );

    // Full mergeability (Proposition 3): the decode-free aggregate equals
    // one sketch over every agent's raw values.
    let mut union = config.build()?;
    for agent in 0..agents {
        let values: Vec<f64> = Dataset::Pareto
            .stream(agent as u64)
            .take(512 * flushes)
            .collect();
        union.add_slice(&values)?;
    }
    assert_eq!(p, union.quantiles(&[0.5, 0.95, 0.99])?);
    println!("✓ decode-free aggregate ≡ one sketch over all raw values");

    // ── Durability ─────────────────────────────────────────────────────
    // The same payloads routed into a time-series store (per-metric,
    // per-window), checkpointed through the frame stream, and restored —
    // a restart costs one replay, not a re-ingestion.
    let mut store = TimeSeriesStore::with_config(config, 1)?;
    for (agent, stream) in streams.iter().enumerate() {
        let mut reader = FrameReader::new(stream.as_slice())?;
        let mut frame = Vec::new();
        let mut second = 0u64;
        while reader.read_frame(&mut frame)?.is_some() {
            let sketch = ddsketch::AnyDDSketch::decode(&frame)?;
            let metric = if agent % 2 == 0 {
                "api.latency"
            } else {
                "db.latency"
            };
            store.absorb(metric, second, &sketch)?;
            second += 1;
        }
    }
    let checkpoint = store.checkpoint(Vec::new())?;
    let restored = TimeSeriesStore::restore(checkpoint.as_slice())?;
    assert_eq!(restored.num_cells(), store.num_cells());
    assert_eq!(
        restored.quantile_series("api.latency", 0.99),
        store.quantile_series("api.latency", 0.99)
    );
    println!(
        "✓ checkpoint: {} cells, {:.1} kB; restore round-trips the store exactly",
        store.num_cells(),
        checkpoint.len() as f64 / 1000.0
    );
    Ok(())
}
