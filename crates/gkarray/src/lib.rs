//! # GKArray
//!
//! An array-backed variant of the Greenwald–Khanna quantile summary — the
//! rank-error baseline the DDSketch paper evaluates against ("GKArray",
//! Table 1, Figures 6–11). This mirrors Datadog's optimized implementation
//! strategy: incoming values are buffered and periodically folded into the
//! summary with a single sort + linear merge + compress pass, which is much
//! faster than classical per-item GK insertion.
//!
//! ## Guarantee
//!
//! After inserting `n` values, a q-quantile query returns a value whose
//! rank is within `εn` of `⌊1 + q(n−1)⌋`. The summary keeps tuples
//! `(vᵢ, gᵢ, Δᵢ)` satisfying the GK invariant `gᵢ + Δᵢ ≤ 2εn`, where
//! `rmin(i) = Σ_{j≤i} gⱼ` and `rmax(i) = rmin(i) + Δᵢ` bound the rank of
//! `vᵢ`.
//!
//! ## Mergeability
//!
//! GK summaries are only **one-way mergeable** (paper Section 1.2): merging
//! is implemented and correct, but each merge inflates the rank uncertainty
//! (ε grows toward `ε₁ + ε₂`), so unlike DDSketch the merge tree depth
//! matters. [`MergeableSketch::merge_from`] documents the exact behaviour.
//!
//! ```
//! use gkarray::GKArray;
//! use sketch_core::QuantileSketch;
//!
//! let mut sketch = GKArray::new(0.01).unwrap(); // ε = 1% rank accuracy
//! for i in 1..=10_000u32 {
//!     sketch.add(f64::from(i)).unwrap();
//! }
//! let p90 = sketch.quantile(0.9).unwrap();
//! // Rank guarantee: p90's rank is within εn = 100 of rank 9000.
//! assert!((8900.0..=9100.0).contains(&p90));
//! ```

use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// A GK summary tuple: `v` is an actually-observed value, `g` the gap in
/// minimal rank from the previous tuple, `delta` the rank uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    v: f64,
    g: u64,
    delta: u64,
}

/// Array-backed Greenwald–Khanna sketch with ε rank accuracy.
#[derive(Debug, Clone)]
pub struct GKArray {
    epsilon: f64,
    /// Summary tuples, ascending by `v`.
    entries: Vec<Entry>,
    /// Buffered raw values not yet folded into `entries`.
    incoming: Vec<f64>,
    /// Buffer capacity: ~1/(2ε), so the buffer itself never holds more
    /// rank-mass than one summary tuple is allowed to.
    buffer_capacity: usize,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl GKArray {
    /// Create a sketch with rank accuracy `epsilon ∈ (0, 1)`.
    pub fn new(epsilon: f64) -> Result<Self, SketchError> {
        if !(epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0) {
            return Err(SketchError::InvalidConfig(format!(
                "epsilon must be in (0, 1), got {epsilon}"
            )));
        }
        let buffer_capacity = ((1.0 / (2.0 * epsilon)).ceil() as usize).max(1);
        Ok(Self {
            epsilon,
            entries: Vec::new(),
            incoming: Vec::with_capacity(buffer_capacity),
            buffer_capacity,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        })
    }

    /// The configured rank accuracy ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of summary tuples currently held (excluding the buffer).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The GK invariant bound `⌊2ε(n−1)⌋` used for compression.
    fn removal_threshold(&self) -> u64 {
        (2.0 * self.epsilon * (self.count.saturating_sub(1)) as f64).floor() as u64
    }

    /// Compress `entries` right-to-left: absorb tuple `i` into `i+1`
    /// whenever `g_i + g_{i+1} + Δ_{i+1} ≤ threshold` (the GK invariant),
    /// preserving the survivor's rmax.
    fn compress(&mut self, threshold: u64) {
        if self.entries.len() <= 1 {
            return;
        }
        let mut compressed: Vec<Entry> = Vec::with_capacity(self.entries.len());
        let mut iter = std::mem::take(&mut self.entries).into_iter().rev();
        let mut current = iter.next().expect("non-empty");
        for prev in iter {
            if prev.g + current.g + current.delta <= threshold {
                current.g += prev.g;
            } else {
                compressed.push(current);
                current = prev;
            }
        }
        compressed.push(current);
        compressed.reverse();
        self.entries = compressed;
    }

    /// Fold the incoming buffer into the summary: sort, linear merge
    /// (assigning each new value the uncertainty of its successor tuple),
    /// then compress adjacent tuples under the GK invariant.
    pub fn flush(&mut self) {
        if self.incoming.is_empty() {
            return;
        }
        self.incoming.sort_by(f64::total_cmp);

        let mut merged: Vec<Entry> = Vec::with_capacity(self.entries.len() + self.incoming.len());
        {
            let mut ei = self.entries.iter().copied().peekable();
            let mut vi = self.incoming.iter().copied().peekable();
            while let Some(&v) = vi.peek() {
                match ei.peek() {
                    Some(&e) if e.v < v => {
                        merged.push(e);
                        ei.next();
                    }
                    Some(&e) => {
                        // Insert before successor tuple e: Δ = g_e + Δ_e − 1
                        // (classical GK insertion), which nests the new
                        // tuple's rank range inside its successor's.
                        let delta = (e.g + e.delta).saturating_sub(1);
                        merged.push(Entry { v, g: 1, delta });
                        vi.next();
                    }
                    None => {
                        // New maximum: exact rank (Δ = 0).
                        merged.push(Entry { v, g: 1, delta: 0 });
                        vi.next();
                    }
                }
            }
            merged.extend(ei);
        }
        self.incoming.clear();
        self.entries = merged;
        let threshold = self.removal_threshold();
        self.compress(threshold);
    }

    /// Internal quantile query over flushed entries.
    fn query_flushed(&self, q: f64) -> f64 {
        debug_assert!(self.incoming.is_empty());
        if q <= 0.0 || self.count == 1 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // One-based target rank ⌊1 + q(n−1)⌋ and allowed spread ε(n−1).
        let rank = (1.0 + q * (self.count - 1) as f64).floor();
        let spread = self.epsilon * (self.count - 1) as f64;
        let mut g_sum = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            g_sum += e.g;
            // First tuple whose maximal rank overshoots rank + spread: the
            // previous tuple is guaranteed within the spread of the target.
            if (g_sum + e.delta) as f64 > rank + spread {
                return if i == 0 {
                    self.min
                } else {
                    self.entries[i - 1].v
                };
            }
        }
        self.max
    }
}

impl QuantileSketch for GKArray {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        self.incoming.push(value);
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        if self.incoming.len() >= self.buffer_capacity {
            self.flush();
        }
        Ok(())
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        if self.count == 0 {
            return Err(SketchError::Empty);
        }
        if self.incoming.is_empty() {
            Ok(self.query_flushed(q))
        } else {
            // Queries are immutable; fold the buffer into a scratch copy.
            // (Callers doing repeated queries should `flush()` first.)
            let mut scratch = self.clone();
            scratch.flush();
            Ok(scratch.query_flushed(q))
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "GKArray"
    }
}

impl MergeableSketch for GKArray {
    /// One-way merge: `other`'s tuples are interleaved into `self`'s
    /// summary (both flushed first) and re-compressed under the combined
    /// count. Rank uncertainties add up, so the merged summary answers
    /// queries with rank error up to `ε·n_self + ε·n_other` — correct, but
    /// looser than a single sketch of the union (GK is not fully
    /// mergeable; paper Table 1).
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if other.count == 0 {
            return Ok(());
        }
        self.flush();
        let mut other = other.clone();
        other.flush();

        let mut merged: Vec<Entry> = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut a = self.entries.iter().copied().peekable();
        let mut b = other.entries.iter().copied().peekable();
        while let (Some(&ea), Some(&eb)) = (a.peek(), b.peek()) {
            if ea.v <= eb.v {
                merged.push(ea);
                a.next();
            } else {
                merged.push(eb);
                b.next();
            }
        }
        merged.extend(a);
        merged.extend(b);
        self.entries = merged;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;

        let threshold = self.removal_threshold();
        self.compress(threshold);
        Ok(())
    }
}

impl MemoryFootprint for GKArray {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
            + self.incoming.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::SmallRng;
    use sketch_core::rank_of_query;

    /// Check the rank-error guarantee of a populated sketch against the
    /// exact data. `est` is always an observed value; its rank interval is
    /// `[#(< est) + 1, #(≤ est)]`, and the guarantee is satisfied if that
    /// interval comes within `slack_mult·ε·n + 1` of the target rank.
    fn assert_rank_accuracy(sketch: &GKArray, sorted: &[f64], slack_mult: f64) {
        let n = sorted.len();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let est = sketch.quantile(q).unwrap();
            let target = sketch_core::lower_quantile_index(q, n) as f64 + 1.0;
            let hi = rank_of_query(sorted, est) as f64;
            let lo = sorted.partition_point(|&x| x < est) as f64 + 1.0;
            let spread = slack_mult * sketch.epsilon() * n as f64 + 1.0;
            let ok = (hi - target).abs() <= spread
                || (lo - target).abs() <= spread
                || (lo <= target && target <= hi);
            assert!(
                ok,
                "q={q}: est {est} rank [{lo}, {hi}] target {target} spread {spread}"
            );
        }
    }

    #[test]
    fn construction_validates_epsilon() {
        assert!(GKArray::new(0.0).is_err());
        assert!(GKArray::new(1.0).is_err());
        assert!(GKArray::new(f64::NAN).is_err());
        assert!(GKArray::new(0.01).is_ok());
    }

    #[test]
    fn empty_and_error_paths() {
        let mut s = GKArray::new(0.01).unwrap();
        assert!(s.is_empty());
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
        assert!(s.add(f64::NAN).is_err());
        assert!(s.quantile(2.0).is_err());
    }

    #[test]
    fn small_streams_are_exact() {
        // With n ≤ 1/ε all values are retained, so quantiles are exact
        // (paper Section 4.4 notes exactly this).
        let mut s = GKArray::new(0.01).unwrap();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.add(v).unwrap();
        }
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(0.5).unwrap(), 3.0);
        assert_eq!(s.quantile(1.0).unwrap(), 5.0);
    }

    #[test]
    fn rank_accuracy_uniform_stream() {
        let mut s = GKArray::new(0.01).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut values: Vec<f64> = (0..50_000).map(|_| rng.random::<f64>() * 1000.0).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        assert_rank_accuracy(&s, &values, 1.0);
    }

    #[test]
    fn rank_accuracy_heavy_tailed_stream() {
        // Pareto(1): heavy tail. Rank accuracy must still hold even though
        // relative accuracy (the paper's point!) will not.
        let mut s = GKArray::new(0.01).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut values: Vec<f64> = (0..50_000)
            .map(|_| 1.0 / (1.0 - rng.random::<f64>()).max(1e-12))
            .collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        assert_rank_accuracy(&s, &values, 1.0);
    }

    #[test]
    fn rank_accuracy_sorted_and_reversed_streams() {
        for reversed in [false, true] {
            let mut s = GKArray::new(0.02).unwrap();
            let mut values: Vec<f64> = (1..=20_000).map(|i| i as f64).collect();
            if reversed {
                values.reverse();
            }
            for &v in &values {
                s.add(v).unwrap();
            }
            values.sort_by(f64::total_cmp);
            assert_rank_accuracy(&s, &values, 1.0);
        }
    }

    #[test]
    fn summary_stays_compact() {
        // O((1/ε)·log(εn)) tuples: for ε = 0.01, n = 200k that is well
        // under a few thousand entries.
        let mut s = GKArray::new(0.01).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200_000 {
            s.add(rng.random::<f64>()).unwrap();
        }
        s.flush();
        assert!(
            s.num_entries() < 4000,
            "summary too large: {} entries",
            s.num_entries()
        );
    }

    #[test]
    fn merge_preserves_counts_and_extremes() {
        let mut a = GKArray::new(0.01).unwrap();
        let mut b = GKArray::new(0.01).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..30_000 {
            let v = rng.random::<f64>() * 100.0;
            a.add(v).unwrap();
            all.push(v);
        }
        for _ in 0..30_000 {
            let v = 100.0 + rng.random::<f64>() * 100.0;
            b.add(v).unwrap();
            all.push(v);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 60_000);
        all.sort_by(f64::total_cmp);
        // One-way merge: allow the documented looser bound (~3ε).
        assert_rank_accuracy(&a, &all, 3.0);
        assert_eq!(a.quantile(0.0).unwrap(), all[0]);
        assert_eq!(a.quantile(1.0).unwrap(), all[all.len() - 1]);
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = GKArray::new(0.01).unwrap();
        a.add(1.0).unwrap();
        let b = GKArray::new(0.01).unwrap();
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 1);
        assert_eq!(a.quantile(0.5).unwrap(), 1.0);
    }

    #[test]
    fn duplicate_heavy_stream() {
        let mut s = GKArray::new(0.01).unwrap();
        for _ in 0..10_000 {
            s.add(42.0).unwrap();
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q).unwrap(), 42.0);
        }
        s.flush();
        // GK size bound: O((1/ε)·log(εn)). For ε = 0.01, n = 10⁴ that is
        // ~(1/2ε)·log2(εn) ≈ 50·6.6 ≈ 330 tuples.
        let eps = s.epsilon();
        let n = s.count() as f64;
        let bound = (1.0 / (2.0 * eps)) * ((eps * n).log2() + 3.0);
        assert!(
            (s.num_entries() as f64) <= bound,
            "all-equal stream: {} entries exceeds the GK bound {bound:.0}",
            s.num_entries()
        );
    }

    #[test]
    fn memory_grows_sublinearly() {
        let mut small = GKArray::new(0.01).unwrap();
        let mut large = GKArray::new(0.01).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for i in 0..200_000 {
            let v = rng.random::<f64>();
            if i < 20_000 {
                small.add(v).unwrap();
            }
            large.add(v).unwrap();
        }
        small.flush();
        large.flush();
        let ratio = large.memory_bytes() as f64 / small.memory_bytes() as f64;
        assert!(
            ratio < 5.0,
            "10× data should not cost 10× memory (ratio {ratio})"
        );
    }

    #[test]
    fn returned_values_were_actually_observed() {
        // GK returns stored values, never interpolations.
        let mut s = GKArray::new(0.05).unwrap();
        let values: Vec<f64> = (0..5000).map(|i| f64::from(i * 37 % 977)).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        for k in 0..=10 {
            let est = s.quantile(f64::from(k) / 10.0).unwrap();
            assert!(values.contains(&est), "estimate {est} never inserted");
        }
    }

    #[test]
    fn query_on_unflushed_buffer_matches_flushed() {
        let mut s = GKArray::new(0.01).unwrap();
        for i in 0..17 {
            s.add(f64::from(i)).unwrap(); // stays in the buffer (cap is 50)
        }
        let before = s.quantile(0.5).unwrap();
        s.flush();
        let after = s.quantile(0.5).unwrap();
        assert_eq!(before, after);
    }

    proptest::proptest! {
        #[test]
        fn prop_rank_accuracy(values in proptest::collection::vec(0.0f64..1e6, 100..2000)) {
            let mut s = GKArray::new(0.05).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len() as f64;
            for q in [0.1, 0.5, 0.9] {
                let est = s.quantile(q).unwrap();
                let target = sketch_core::lower_quantile_index(q, sorted.len()) as f64 + 1.0;
                let hi = rank_of_query(&sorted, est) as f64;
                let lo = sorted.partition_point(|&x| x < est) as f64 + 1.0;
                let spread = 0.05 * n + 1.0;
                proptest::prop_assert!(
                    (hi - target).abs() <= spread || (lo - target).abs() <= spread
                        || (lo <= target && target <= hi),
                    "q={} est={} lo={} hi={} target={}", q, est, lo, hi, target
                );
            }
        }

        #[test]
        fn prop_extremes_exact(values in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let mut s = GKArray::new(0.02).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            proptest::prop_assert_eq!(s.quantile(0.0).unwrap(), sorted[0]);
            proptest::prop_assert_eq!(s.quantile(1.0).unwrap(), sorted[sorted.len() - 1]);
        }
    }
}
