//! Figure 3: histograms of web response times, p0–p95 and p0–p100.
//! Optional arg: sample count (default 2e6, the paper's size).

use bench_suite::figures::{emit, fig03};
use bench_suite::parse_n_arg;

fn main() {
    let n = parse_n_arg(2_000_000) as usize;
    let fig = fig03::run(n);
    println!("p0–p95:\n{}", fig.hist_p95);
    println!("p0–p100:\n{}", fig.hist_p100);
    emit("fig03", &[fig.summary]);
}
