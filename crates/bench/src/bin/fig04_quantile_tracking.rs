//! Figure 4: actual vs 0.005-rank-accurate vs 0.01-relative-accurate
//! quantiles over 20 batches of 100,000 values.
//! Optional arg: batch size (default 100000).

use bench_suite::figures::{emit, fig04};
use bench_suite::parse_n_arg;

fn main() {
    let batch_size = parse_n_arg(100_000) as usize;
    emit("fig04", &fig04::run(20, batch_size));
}
