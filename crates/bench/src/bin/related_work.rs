//! Extension: DDSketch vs t-digest vs KLL (the paper's Section 1.2
//! related-work sketches). Optional arg: max n (default 1e6).

use bench_suite::figures::{emit, related_work};
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(1_000_000);
    emit("related_work", &related_work::run(n_max, 5));
}
