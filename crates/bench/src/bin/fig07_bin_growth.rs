//! Figure 7: DDSketch bin count vs n on pareto. Optional arg: max n
//! (default 1e8; the paper reaches 1e10 — streaming, so it is feasible).

use bench_suite::figures::{emit, fig07};
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(100_000_000);
    emit("fig07", &[fig07::run(n_max)]);
}
