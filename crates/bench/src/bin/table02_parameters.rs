//! Reproduce paper Table 2 (experiment parameters).

use bench_suite::figures::{emit, tables};

fn main() {
    emit("table02", &[tables::table02()]);
}
