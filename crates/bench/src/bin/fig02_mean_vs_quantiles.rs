//! Figure 2: average latency vs p50/p75 over time on a heavy-tailed
//! endpoint. Optional arg: requests per worker (default 50000).

use bench_suite::figures::{emit, fig02};
use bench_suite::parse_n_arg;

fn main() {
    let per_worker = parse_n_arg(50_000) as usize;
    let t = fig02::run(per_worker);
    let tracks = fig02::average_tracks_p75(&t);
    emit("fig02", &[t]);
    println!("average tracks p75 rather than p50: {tracks}");
}
