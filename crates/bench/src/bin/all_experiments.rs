//! Run every table and figure reproduction at laptop scale in one go.
//! Optional arg: max n for the sweeps (default 1e6).

use bench_suite::figures::accuracy::{sweep, tabulate, ErrorMetric};
use bench_suite::figures::*;
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(1_000_000);
    println!("=== Tables 1 & 2 ===");
    emit(
        "table01",
        &[tables::table01(), tables::table01_verification()],
    );
    emit("table02", &[tables::table02()]);

    println!("=== Figure 2 ===");
    let t = fig02::run(50_000);
    let tracks = fig02::average_tracks_p75(&t);
    emit("fig02", &[t]);
    println!("average tracks p75 rather than p50: {tracks}\n");

    println!("=== Figure 3 ===");
    let fig = fig03::run((n_max as usize).min(2_000_000));
    println!("p0–p95:\n{}", fig.hist_p95);
    println!("p0–p100:\n{}", fig.hist_p100);
    emit("fig03", &[fig.summary]);

    println!("=== Figure 4 ===");
    emit(
        "fig04",
        &fig04::run(20, (n_max as usize / 10).clamp(10_000, 100_000)),
    );

    println!("=== Figure 5 ===");
    for h in fig05::run((n_max as usize).min(1_000_000)) {
        println!("── Figure 5 — {} ──", h.name);
        println!("{}", h.rendered);
    }

    println!("=== Figure 6 ===");
    emit("fig06", &fig06::run(n_max, 7));

    println!("=== Figure 7 ===");
    emit("fig07", &[fig07::run(n_max * 10)]);

    println!("=== Figure 8 ===");
    emit("fig08", &fig08::run(n_max, 21));

    println!("=== Figure 9 ===");
    emit("fig09", &fig09::run(n_max, 31, 3));

    println!("=== Figures 10 & 11 ===");
    let rows = sweep(n_max, 3);
    emit("fig10", &tabulate(&rows, ErrorMetric::Relative));
    emit("fig11", &tabulate(&rows, ErrorMetric::Rank));

    println!("=== Section 3.3 bounds ===");
    emit("bounds", &[bounds::run(n_max as usize, 3)]);

    println!("done — CSV series written to results/");
}
