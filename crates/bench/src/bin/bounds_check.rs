//! Section 3.3: empirical verification of the exponential / Pareto sketch
//! size bounds. Optional arg: sample count (default 1e6, the paper's n).

use bench_suite::figures::{bounds, emit};
use bench_suite::parse_n_arg;

fn main() {
    let n = parse_n_arg(1_000_000) as usize;
    emit("bounds", &[bounds::run(n, 5)]);
}
