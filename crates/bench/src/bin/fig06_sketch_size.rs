//! Figure 6: sketch size in memory (kB) vs n. Optional arg: max n
//! (default 1e7; the paper sweeps to 1e8 — pass 1e8 for the full sweep).

use bench_suite::figures::{emit, fig06};
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(10_000_000);
    emit("fig06", &fig06::run(n_max, 7));
}
