//! Reproduce paper Table 1 and verify its claims against the code.

use bench_suite::figures::{emit, tables};

fn main() {
    emit(
        "table01",
        &[tables::table01(), tables::table01_verification()],
    );
}
