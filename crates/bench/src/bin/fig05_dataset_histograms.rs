//! Figure 5: histograms of the pareto, span and power data sets.
//! Optional arg: sample count (default 1e6).

use bench_suite::figures::fig05;
use bench_suite::parse_n_arg;

fn main() {
    let n = parse_n_arg(1_000_000) as usize;
    for h in fig05::run(n) {
        println!("── Figure 5 — {} ──", h.name);
        println!("{}", h.rendered);
    }
}
