//! Figure 8: average ns per Add vs n. Optional arg: max n (default 1e7).

use bench_suite::figures::{emit, fig08};
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(10_000_000);
    emit("fig08", &fig08::run(n_max, 21));
}
