//! Figure 10: relative error of p50/p95/p99 estimates vs n, per data set
//! and sketch. Optional arg: max n (default 1e6).

use bench_suite::figures::accuracy::{sweep, tabulate, ErrorMetric};
use bench_suite::figures::emit;
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(1_000_000);
    let rows = sweep(n_max, 3);
    emit("fig10", &tabulate(&rows, ErrorMetric::Relative));
}
