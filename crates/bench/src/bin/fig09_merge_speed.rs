//! Figure 9: merge time (µs) vs merged n. Optional arg: max n
//! (default 1e7).

use bench_suite::figures::{emit, fig09};
use bench_suite::parse_n_arg;

fn main() {
    let n_max = parse_n_arg(10_000_000);
    emit("fig09", &fig09::run(n_max, 31, 5));
}
