//! The four quantile sketches behind a single interface, configured with
//! the paper's Table 2 parameters.

use datasets::Dataset;
use ddsketch::{AnyDDSketch, SketchConfig};
use gkarray::GKArray;
use hdrhist::ScaledHdr;
use momentsketch::MomentSketch;
use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// Table 2: DDSketch relative accuracy.
pub const PAPER_ALPHA: f64 = 0.01;
/// Table 2: DDSketch bucket limit.
pub const PAPER_MAX_BINS: usize = 2048;
/// Table 2: GKArray rank accuracy.
pub const PAPER_EPSILON: f64 = 0.01;
/// Table 2: Moments sketch moment count (compression enabled).
pub const PAPER_K: usize = 20;
/// Table 2: HDR Histogram significant decimal digits.
pub const PAPER_HDR_DIGITS: u8 = 2;

/// Which sketch a [`Contender`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContenderKind {
    /// DDSketch with the exact logarithmic mapping.
    DDSketch,
    /// DDSketch with the cubic-interpolated ("fast") mapping.
    DDSketchFast,
    /// The GKArray rank-error baseline.
    GKArray,
    /// The HDR Histogram baseline (bounded range).
    HdrHistogram,
    /// The Moments sketch baseline.
    Moments,
}

impl ContenderKind {
    /// All contenders in the paper's legend order.
    pub fn all() -> [ContenderKind; 5] {
        [
            ContenderKind::DDSketch,
            ContenderKind::DDSketchFast,
            ContenderKind::GKArray,
            ContenderKind::HdrHistogram,
            ContenderKind::Moments,
        ]
    }

    /// The four contenders of the accuracy figures (10 and 11), which do
    /// not include the fast variant.
    pub fn accuracy_set() -> [ContenderKind; 4] {
        [
            ContenderKind::DDSketch,
            ContenderKind::GKArray,
            ContenderKind::HdrHistogram,
            ContenderKind::Moments,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            ContenderKind::DDSketch => "DDSketch",
            ContenderKind::DDSketchFast => "DDSketch (fast)",
            ContenderKind::GKArray => "GKArray",
            ContenderKind::HdrHistogram => "HDRHistogram",
            ContenderKind::Moments => "MomentSketch",
        }
    }

    /// The runtime sketch configuration this kind registers with, for the
    /// DDSketch-backed contenders (Table 2 parameters); `None` for the
    /// non-DDSketch baselines.
    pub fn sketch_config(self) -> Option<SketchConfig> {
        match self {
            ContenderKind::DDSketch => {
                Some(SketchConfig::dense_collapsing(PAPER_ALPHA, PAPER_MAX_BINS))
            }
            ContenderKind::DDSketchFast => Some(SketchConfig::fast(PAPER_ALPHA, PAPER_MAX_BINS)),
            _ => None,
        }
    }
}

/// HDR Histogram needs a bounded integer range per data set; pick scales
/// giving it headroom comparable to the paper's setup (see EXPERIMENTS.md).
fn hdr_for(dataset: Dataset) -> Result<ScaledHdr, SketchError> {
    match dataset {
        // Pareto(1,1): values ≥ 1, extreme draws ~n; track up to 1e10 at
        // millesimal resolution.
        Dataset::Pareto => ScaledHdr::new(1e10, 1e3, PAPER_HDR_DIGITS),
        // Integer nanoseconds up to 1.9e12, unit scale.
        Dataset::Span => ScaledHdr::new(datasets::SPAN_MAX_NS, 1.0, PAPER_HDR_DIGITS),
        // Kilowatts in [0.076, 11.122] at 0.1 W resolution.
        Dataset::Power => ScaledHdr::new(datasets::POWER_MAX_KW, 1e4, PAPER_HDR_DIGITS),
    }
}

/// A uniform wrapper over the four sketches (five including the fast
/// DDSketch variant).
pub enum Contender {
    /// DDSketch under any logarithmic-mapping [`SketchConfig`] (the paper
    /// registration is collapsing dense stores).
    DDSketch(AnyDDSketch),
    /// DDSketch (fast) — any cubic-mapping [`SketchConfig`].
    DDSketchFast(AnyDDSketch),
    /// GKArray.
    GKArray(GKArray),
    /// HDR Histogram behind the f64 scaling adapter.
    Hdr(ScaledHdr),
    /// Moments sketch (k = 20, compression on).
    Moments(MomentSketch),
}

impl Contender {
    /// Build a contender with the paper's parameters, range-configured for
    /// `dataset` (only HDR needs the data set).
    pub fn new(kind: ContenderKind, dataset: Dataset) -> Result<Self, SketchError> {
        Ok(match kind {
            ContenderKind::DDSketch | ContenderKind::DDSketchFast => {
                Self::from_sketch_config(kind.sketch_config().expect("DD kinds carry a config"))?
            }
            ContenderKind::GKArray => Contender::GKArray(GKArray::new(PAPER_EPSILON)?),
            ContenderKind::HdrHistogram => Contender::Hdr(hdr_for(dataset)?),
            ContenderKind::Moments => Contender::Moments(MomentSketch::new(PAPER_K, true)?),
        })
    }

    /// Register a DDSketch contender from any runtime [`SketchConfig`] —
    /// the harness can sweep the whole configuration matrix, not just the
    /// paper's Table 2 presets. Cubic-mapping configs register as the
    /// "fast" contender, everything else as plain DDSketch.
    pub fn from_sketch_config(config: SketchConfig) -> Result<Self, SketchError> {
        let sketch = config.build()?;
        Ok(match config.mapping {
            ddsketch::MappingKind::CubicInterpolated => Contender::DDSketchFast(sketch),
            _ => Contender::DDSketch(sketch),
        })
    }

    /// The wrapped kind.
    pub fn kind(&self) -> ContenderKind {
        match self {
            Contender::DDSketch(_) => ContenderKind::DDSketch,
            Contender::DDSketchFast(_) => ContenderKind::DDSketchFast,
            Contender::GKArray(_) => ContenderKind::GKArray,
            Contender::Hdr(_) => ContenderKind::HdrHistogram,
            Contender::Moments(_) => ContenderKind::Moments,
        }
    }

    /// Display name: the sketch configuration's name for the
    /// DDSketch-backed contenders (so swept configs stay distinguishable),
    /// the paper legend otherwise.
    pub fn name(&self) -> &'static str {
        match self {
            Contender::DDSketch(s) | Contender::DDSketchFast(s) => s.config().name(),
            _ => self.kind().name(),
        }
    }

    /// Insert one value. Out-of-range values for the bounded HDR sketch
    /// return an error, which the harness counts as a drop (the bounded
    /// range is HDR's documented limitation, paper Section 1.2).
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        match self {
            Contender::DDSketch(s) => s.add(value),
            Contender::DDSketchFast(s) => s.add(value),
            Contender::GKArray(s) => s.add(value),
            Contender::Hdr(s) => s.add(value),
            Contender::Moments(s) => s.add(value),
        }
    }

    /// Insert a batch through each sketch's best bulk path
    /// ([`QuantileSketch::add_slice`]): the DDSketch contenders take their
    /// fused, **atomic** batch kernel; the baselines take the trait's
    /// per-value loop fallback, which stops at (and has already ingested
    /// everything before) the first unsupported value.
    pub fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        match self {
            Contender::DDSketch(s) => s.add_slice(values),
            Contender::DDSketchFast(s) => s.add_slice(values),
            Contender::GKArray(s) => QuantileSketch::add_slice(s, values),
            Contender::Hdr(s) => QuantileSketch::add_slice(s, values),
            Contender::Moments(s) => QuantileSketch::add_slice(s, values),
        }
    }

    /// Feed a whole slice, returning how many values were dropped
    /// (unsupported by the sketch's range).
    ///
    /// Clean batches (the overwhelming case) ride the bulk
    /// [`Self::add_slice`] fast path. A rejected batch falls back to
    /// per-value insertion to count the drops — which is only sound for
    /// the DDSketch contenders because their rejection is atomic, so the
    /// fallback is restricted to them; the baselines always take the
    /// per-value path.
    pub fn add_all(&mut self, values: &[f64]) -> u64 {
        if matches!(self, Contender::DDSketch(_) | Contender::DDSketchFast(_))
            && self.add_slice(values).is_ok()
        {
            return 0;
        }
        let mut dropped = 0;
        for &v in values {
            if self.add(v).is_err() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Prepare for repeated queries: flushes GKArray's buffer and releases
    /// the DDSketch contenders' batch-ingestion scratch; no-op otherwise.
    pub fn seal(&mut self) {
        match self {
            Contender::GKArray(s) => s.flush(),
            // Done ingesting: drop the batch-path scratch capacity so
            // Figure 6's size measurement sees the sketch alone.
            Contender::DDSketch(s) | Contender::DDSketchFast(s) => s.release_scratch(),
            _ => {}
        }
    }

    /// Quantile estimate.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        match self {
            Contender::DDSketch(s) => s.quantile(q),
            Contender::DDSketchFast(s) => s.quantile(q),
            Contender::GKArray(s) => s.quantile(q),
            Contender::Hdr(s) => s.quantile(q),
            Contender::Moments(s) => s.quantile(q),
        }
    }

    /// Batch quantile estimates (lets the Moments sketch solve once).
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        match self {
            Contender::DDSketch(s) => s.quantiles(qs),
            Contender::DDSketchFast(s) => s.quantiles(qs),
            Contender::GKArray(s) => QuantileSketch::quantiles(s, qs),
            Contender::Hdr(s) => QuantileSketch::quantiles(s, qs),
            Contender::Moments(s) => QuantileSketch::quantiles(s, qs),
        }
    }

    /// Total inserted count.
    pub fn count(&self) -> u64 {
        match self {
            Contender::DDSketch(s) => s.count(),
            Contender::DDSketchFast(s) => s.count(),
            Contender::GKArray(s) => s.count(),
            Contender::Hdr(s) => s.count(),
            Contender::Moments(s) => s.count(),
        }
    }

    /// Structural memory footprint (Figure 6's y-axis).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Contender::DDSketch(s) => s.memory_bytes(),
            Contender::DDSketchFast(s) => s.memory_bytes(),
            Contender::GKArray(s) => s.memory_bytes(),
            Contender::Hdr(s) => s.memory_bytes(),
            Contender::Moments(s) => s.memory_bytes(),
        }
    }

    /// Merge a same-kind contender into this one.
    ///
    /// # Panics
    ///
    /// Panics if the kinds differ (harness bug, not a data condition).
    pub fn merge_from(&mut self, other: &Contender) -> Result<(), SketchError> {
        match (self, other) {
            (Contender::DDSketch(a), Contender::DDSketch(b)) => a.merge_from(b),
            (Contender::DDSketchFast(a), Contender::DDSketchFast(b)) => a.merge_from(b),
            (Contender::GKArray(a), Contender::GKArray(b)) => a.merge_from(b),
            (Contender::Hdr(a), Contender::Hdr(b)) => a.merge_from(b),
            (Contender::Moments(a), Contender::Moments(b)) => a.merge_from(b),
            _ => panic!("merge_from requires matching contender kinds"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contenders_build_for_all_datasets() {
        for ds in Dataset::all() {
            for kind in ContenderKind::all() {
                let c = Contender::new(kind, ds).unwrap();
                assert_eq!(c.kind(), kind);
                assert_eq!(c.count(), 0);
            }
        }
    }

    #[test]
    fn contenders_ingest_each_dataset() {
        for ds in Dataset::all() {
            let values = ds.generate(5000, 11);
            for kind in ContenderKind::all() {
                let mut c = Contender::new(kind, ds).unwrap();
                let dropped = c.add_all(&values);
                c.seal();
                assert!(
                    dropped * 100 < values.len() as u64,
                    "{} dropped {dropped} of {} on {}",
                    kind.name(),
                    values.len(),
                    ds.name()
                );
                let p50 = c.quantile(0.5).unwrap();
                assert!(p50.is_finite() && p50 > 0.0, "{} p50 {p50}", kind.name());
            }
        }
    }

    #[test]
    fn contenders_register_from_any_sketch_config() {
        for config in SketchConfig::all(PAPER_ALPHA, PAPER_MAX_BINS) {
            let mut c = Contender::from_sketch_config(config).unwrap();
            assert_eq!(c.name(), config.name());
            let values = Dataset::Pareto.generate(2000, 7);
            assert_eq!(c.add_all(&values), 0);
            assert_eq!(c.count(), 2000);
            assert!(c.quantile(0.99).unwrap() > 0.0);
        }
        // The Table 2 kinds resolve to the same configs they always had.
        assert_eq!(
            ContenderKind::DDSketch.sketch_config().unwrap(),
            SketchConfig::dense_collapsing(PAPER_ALPHA, PAPER_MAX_BINS)
        );
        assert_eq!(
            ContenderKind::DDSketchFast.sketch_config().unwrap(),
            SketchConfig::fast(PAPER_ALPHA, PAPER_MAX_BINS)
        );
        assert_eq!(ContenderKind::GKArray.sketch_config(), None);
    }

    #[test]
    fn add_slice_matches_per_value_adds() {
        let values = Dataset::Pareto.generate(5000, 9);
        for kind in ContenderKind::all() {
            let mut bulk = Contender::new(kind, Dataset::Pareto).unwrap();
            let mut scalar = Contender::new(kind, Dataset::Pareto).unwrap();
            for chunk in values.chunks(512) {
                bulk.add_slice(chunk).unwrap();
            }
            for &v in &values {
                scalar.add(v).unwrap();
            }
            bulk.seal();
            scalar.seal();
            assert_eq!(bulk.count(), scalar.count(), "{}", kind.name());
            for q in [0.1, 0.5, 0.99] {
                assert_eq!(
                    bulk.quantile(q).unwrap(),
                    scalar.quantile(q).unwrap(),
                    "{} q={q}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn merge_requires_matching_kinds() {
        let mut a = Contender::new(ContenderKind::DDSketch, Dataset::Pareto).unwrap();
        let b = Contender::new(ContenderKind::DDSketch, Dataset::Pareto).unwrap();
        assert!(a.merge_from(&b).is_ok());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a = Contender::new(ContenderKind::DDSketch, Dataset::Pareto).unwrap();
            let c = Contender::new(ContenderKind::GKArray, Dataset::Pareto).unwrap();
            let _ = a.merge_from(&c);
        }));
        assert!(result.is_err(), "cross-kind merge must panic");
    }

    #[test]
    fn ddsketch_meets_alpha_on_every_dataset() {
        use evalkit::ExactOracle;
        for ds in Dataset::all() {
            let values = ds.generate(50_000, 13);
            let oracle = ExactOracle::new(values.clone());
            let mut c = Contender::new(ContenderKind::DDSketch, ds).unwrap();
            assert_eq!(c.add_all(&values), 0, "DDSketch must accept everything");
            for q in [0.01, 0.5, 0.95, 0.99] {
                let rel = oracle.relative_error(q, c.quantile(q).unwrap());
                assert!(rel <= PAPER_ALPHA + 1e-9, "{}: q={q} rel {rel}", ds.name());
            }
        }
    }
}
