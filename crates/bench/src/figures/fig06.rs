//! Figure 6: sketch size in memory (kB) as `n` grows, per data set.

use datasets::Dataset;
use evalkit::{fmt_n, Table};

use crate::contenders::{Contender, ContenderKind};
use crate::sweep::geometric_ns;

/// One table per data set: rows are `n` decades, columns are sketch sizes
/// in kB for every contender.
pub fn run(n_max: u64, seed: u64) -> Vec<Table> {
    let ns = geometric_ns(1000, n_max.max(1000));
    Dataset::all()
        .into_iter()
        .map(|ds| {
            let mut t = Table::new(
                format!("Figure 6 — sketch size in memory (kB), {}", ds.name()),
                &[
                    "n",
                    "DDSketch",
                    "DDSketch (fast)",
                    "GKArray",
                    "HDRHistogram",
                    "MomentSketch",
                ],
            );
            // Feed each contender incrementally so the whole sweep is one
            // pass over n_max values.
            let mut contenders: Vec<Contender> = ContenderKind::all()
                .into_iter()
                .map(|k| Contender::new(k, ds).expect("valid params"))
                .collect();
            let mut stream = ds.stream(seed);
            let mut fed = 0u64;
            for &n in &ns {
                let chunk: Vec<f64> = stream.by_ref().take((n - fed) as usize).collect();
                fed = n;
                let mut row = vec![fmt_n(n)];
                for c in contenders.iter_mut() {
                    c.add_all(&chunk);
                    c.seal();
                    row.push(format!("{:.2}", c.memory_bytes() as f64 / 1000.0));
                }
                t.row(row);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04::column;

    #[test]
    fn paper_shape_holds_on_heavy_tailed_data() {
        // Shape claims from Section 4.2, checked on pareto at laptop n:
        //  - DDSketch (fast) is larger than DDSketch;
        //  - HDR Histogram is significantly larger than DDSketch;
        //  - Moments is tiny and completely flat in n.
        let tables = run(100_000, 7);
        let pareto = &tables[0];
        let dd = column(pareto, 1);
        let fast = column(pareto, 2);
        let hdr = column(pareto, 4);
        let moments = column(pareto, 5);
        let last = dd.len() - 1;
        assert!(
            fast[last] >= dd[last],
            "fast ({}) ≥ standard ({})",
            fast[last],
            dd[last]
        );
        assert!(
            hdr[last] > dd[last] * 2.0,
            "HDR ({}) ≫ DDSketch ({})",
            hdr[last],
            dd[last]
        );
        assert!(moments.iter().all(|&m| m < 1.0), "Moments stays under 1 kB");
        assert!(
            (moments[0] - moments[last]).abs() < 1e-9,
            "Moments is independent of the input size"
        );
    }

    #[test]
    fn sizes_are_monotone_nondecreasing_for_ddsketch() {
        let tables = run(100_000, 9);
        for t in &tables {
            let dd = column(t, 1);
            for w in dd.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "DDSketch shrank: {:?}", w);
            }
        }
    }
}
