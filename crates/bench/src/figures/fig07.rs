//! Figure 7: number of DDSketch bins as `n` grows on the pareto data set.
//!
//! The paper runs to n = 10¹⁰ and finds ~900 bins — "less than half the
//! limit of 2048"; bins grow logarithmically because a Pareto(1) sample
//! maximum grows linearly in n and buckets are log-spaced.

use datasets::Dataset;
use evalkit::{fmt_n, Table};

use crate::contenders::{PAPER_ALPHA, PAPER_MAX_BINS};
use crate::sweep::geometric_ns;

/// Sweep n and report the bin count (streaming; no value buffering, so
/// large n is cheap).
pub fn run(n_max: u64) -> Table {
    let mut t = Table::new(
        "Figure 7 — number of bins in DDSketch, pareto data set",
        &["n", "bins", "limit"],
    );
    let mut sketch =
        ddsketch::presets::logarithmic_collapsing(PAPER_ALPHA, PAPER_MAX_BINS).expect("valid");
    let mut stream = Dataset::Pareto.stream(77);
    let mut fed = 0u64;
    for n in geometric_ns(1000, n_max.max(1000)) {
        for v in stream.by_ref().take((n - fed) as usize) {
            sketch.add(v).expect("pareto values are positive finite");
        }
        fed = n;
        t.row(vec![
            fmt_n(n),
            sketch.num_bins().to_string(),
            PAPER_MAX_BINS.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04::column;

    #[test]
    fn bins_grow_logarithmically_and_stay_under_the_limit() {
        let t = run(1_000_000);
        let bins = column(&t, 1);
        // Monotone growth…
        for w in bins.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // …but roughly constant *increments* per decade (log growth):
        // the last decade's increment must be within ~3× of the first's.
        let inc_first = bins[1] - bins[0];
        let inc_last = bins[bins.len() - 1] - bins[bins.len() - 2];
        assert!(
            inc_last < inc_first * 3.0 + 50.0,
            "bin growth not logarithmic: first {inc_first}, last {inc_last}"
        );
        // Paper: far below the 2048 limit at any laptop-scale n.
        assert!(bins[bins.len() - 1] < 1000.0, "bins {:?}", bins);
    }
}
