//! Section 3.3's size-bound examples, verified empirically: with
//! `α = 0.01` and `δ₁ = δ₂ = e⁻¹⁰`, the paper derives that maintaining all
//! quantiles in `[0.5, 1]` of a million samples needs at most **273**
//! buckets for the exponential distribution and **3380** for Pareto(1).

use datasets::{Dataset, Distribution, Exponential};
use evalkit::{fmt_n, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::contenders::PAPER_ALPHA;
use ddsketch::IndexMapping;

/// Paper's derived bucket bound for Exp(λ) at n = 10⁶ (Section 3.3).
pub const EXPONENTIAL_BOUND: usize = 273;
/// Paper's derived bucket bound for Pareto(1) at n = 10⁶.
pub const PARETO_BOUND: usize = 3380;

/// Buckets needed to cover quantiles `[0.5, 1]`: the index span between
/// the sample median's bucket and the sample maximum's bucket, plus one
/// (Proposition 4 / Equation 1: `log(x₁/x_q)/log(γ) + 1`).
fn upper_half_span(values: &mut [f64]) -> usize {
    values.sort_by(f64::total_cmp);
    let median = values[values.len() / 2];
    let max = values[values.len() - 1];
    let mapping = ddsketch::LogarithmicMapping::new(PAPER_ALPHA).expect("valid alpha");
    (mapping.index(max) - mapping.index(median)) as usize + 1
}

/// Compare measured upper-half bucket spans against the paper's bounds
/// over several independent trials.
pub fn run(n: usize, trials: usize) -> Table {
    let mut t = Table::new(
        "Section 3.3 — upper-half sketch size: measured vs paper bound",
        &[
            "distribution",
            "n",
            "trial",
            "measured buckets",
            "paper bound",
        ],
    );
    for trial in 0..trials {
        let mut rng = SmallRng::seed_from_u64(900 + trial as u64);
        let exp = Exponential::new(1.0);
        let mut values: Vec<f64> = (0..n).map(|_| exp.sample(&mut rng).max(1e-12)).collect();
        t.row(vec![
            "Exp(1)".into(),
            fmt_n(n as u64),
            trial.to_string(),
            upper_half_span(&mut values).to_string(),
            EXPONENTIAL_BOUND.to_string(),
        ]);

        let mut values = Dataset::Pareto.generate(n, 1700 + trial as u64);
        t.row(vec![
            "Pareto(1)".into(),
            fmt_n(n as u64),
            trial.to_string(),
            upper_half_span(&mut values).to_string(),
            PARETO_BOUND.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_spans_respect_the_paper_bounds() {
        // The bounds hold with probability ≥ 1 − 2e⁻¹⁰; at n = 10⁵ they
        // are only tighter (bounds grow with n).
        let t = run(100_000, 3);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let measured: usize = cells[3].parse().unwrap();
            let bound: usize = cells[4].parse().unwrap();
            assert!(
                measured <= bound,
                "{} needed {measured} buckets, bound is {bound}",
                cells[0]
            );
        }
    }

    #[test]
    fn paper_notes_actual_usage_is_much_smaller_than_the_bound() {
        // Section 4.2: "the actual sketch size required for the Pareto
        // distribution is much smaller than the upper bounds we
        // calculated in Section 3.3".
        let t = run(100_000, 1);
        let line = t.to_csv().lines().nth(2).unwrap().to_string(); // Pareto row
        let measured: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
        assert!(
            measured < PARETO_BOUND as f64 / 2.0,
            "measured {measured} should be well under the bound {PARETO_BOUND}"
        );
    }
}
