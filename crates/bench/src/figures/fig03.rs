//! Figure 3: histograms of 2M web response times, p0–p95 vs p0–p100 —
//! illustrating how a heavy tail stretches the value axis by orders of
//! magnitude (the p93–p100 bars are "shorter than the minimum pixel
//! height").

use evalkit::{fmt_sci, ExactOracle, Table};

use crate::histo::ascii_histogram;

/// Web response times in seconds: span durations converted from ns.
fn response_times(n: usize, seed: u64) -> Vec<f64> {
    datasets::Dataset::Span
        .generate(n, seed)
        .into_iter()
        .map(|ns| ns / 1e9)
        .collect()
}

/// Output of the Figure 3 reproduction.
pub struct Fig03 {
    /// Histogram restricted to [p0, p95].
    pub hist_p95: String,
    /// Histogram over the full range [p0, p100].
    pub hist_p100: String,
    /// Summary quantiles.
    pub summary: Table,
}

/// Build both histograms and the quantile summary for `n` response times.
pub fn run(n: usize) -> Fig03 {
    let values = response_times(n, 3);
    let oracle = ExactOracle::new(values.clone());
    let p0 = oracle.quantile(0.0);
    let p95 = oracle.quantile(0.95);
    let p100 = oracle.quantile(1.0);

    let hist_p95 = ascii_histogram(&values, p0, p95, 40, false);
    // Full-range histogram needs log bars — the tail is invisible
    // otherwise (the paper's "shorter than the minimum pixel height").
    let hist_p100 = ascii_histogram(&values, p0, p100, 40, true);

    let mut summary = Table::new(
        "Figure 3 — response-time quantiles (seconds)",
        &["quantile", "seconds"],
    );
    for q in [0.0, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        summary.row(vec![format!("p{}", q * 100.0), fmt_sci(oracle.quantile(q))]);
    }
    Fig03 {
        hist_p95,
        hist_p100,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_stretches_the_axis() {
        let fig = run(100_000);
        // The paper's point: the p95 cut covers a tiny fraction of the
        // full range (2–20s at p98.5–99.5 on their data).
        let csv = fig.summary.to_csv();
        let get = |tag: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(tag))
                .and_then(|l| l.split(',').nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let p95 = get("p95,");
        let p100 = get("p100,");
        assert!(
            p100 / p95 > 10.0,
            "heavy tail must stretch the range: p95 {p95} vs p100 {p100}"
        );
        assert!(fig.hist_p95.contains('#'));
        assert!(fig.hist_p100.contains('#'));
    }
}
