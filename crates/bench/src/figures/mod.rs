//! One module per paper table/figure; each exposes a `run(...)`
//! returning the tables it prints, so the `all_experiments` binary and the
//! integration tests can drive everything programmatically.

pub mod accuracy;
pub mod bounds;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod related_work;
pub mod tables;

use std::path::PathBuf;

/// Directory where figure binaries drop their CSV series.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Print tables and persist them as CSVs under `results/<stem>_<i>.csv`.
pub fn emit(stem: &str, tables: &[evalkit::Table]) {
    for (i, t) in tables.iter().enumerate() {
        t.print();
        println!();
        let path = results_dir().join(format!("{stem}_{i}.csv"));
        if let Err(e) = t.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}
