//! Figures 10 and 11: relative and rank errors of p50/p95/p99 estimates
//! as n grows, for all four sketches on all three data sets.

use datasets::Dataset;
use evalkit::{fmt_n, ExactOracle, Table};

use crate::contenders::{Contender, ContenderKind};
use crate::sweep::geometric_ns;

/// The quantiles the paper tracks in these figures.
pub const FIG1011_QS: [f64; 3] = [0.5, 0.95, 0.99];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Data set.
    pub dataset: Dataset,
    /// Stream length.
    pub n: u64,
    /// Sketch.
    pub kind: ContenderKind,
    /// Tracked quantile.
    pub q: f64,
    /// `|x̃ − x_q| / x_q` (Figure 10's y-axis).
    pub relative_error: f64,
    /// Normalized rank error (Figure 11's y-axis).
    pub rank_error: f64,
}

/// Run the full accuracy sweep shared by Figures 10 and 11.
pub fn sweep(n_max: u64, seed: u64) -> Vec<AccuracyRow> {
    let ns = geometric_ns(1000, n_max.max(1000));
    let mut rows = Vec::new();
    for ds in Dataset::all() {
        let values = ds.generate(*ns.last().expect("non-empty") as usize, seed);
        // Incremental contenders: one pass over the data for the whole
        // sweep (the oracle still sorts each prefix).
        let mut contenders: Vec<Contender> = ContenderKind::accuracy_set()
            .into_iter()
            .map(|k| Contender::new(k, ds).expect("valid params"))
            .collect();
        let mut fed = 0usize;
        for &n in &ns {
            let chunk = &values[fed..n as usize];
            fed = n as usize;
            let oracle = ExactOracle::new(values[..n as usize].to_vec());
            for c in contenders.iter_mut() {
                c.add_all(chunk);
                c.seal();
                let estimates = c.quantiles(&FIG1011_QS).expect("non-empty sketch");
                for (&q, est) in FIG1011_QS.iter().zip(estimates) {
                    rows.push(AccuracyRow {
                        dataset: ds,
                        n,
                        kind: c.kind(),
                        q,
                        relative_error: oracle.relative_error(q, est),
                        rank_error: oracle.rank_error(q, est),
                    });
                }
            }
        }
    }
    rows
}

/// Format the sweep as the paper's 3×3 grid of series: one table per
/// (quantile, data set), columns per sketch. `metric` selects relative
/// (Figure 10) or rank (Figure 11) error.
pub fn tabulate(rows: &[AccuracyRow], metric: ErrorMetric) -> Vec<Table> {
    let mut tables = Vec::new();
    for &q in &FIG1011_QS {
        for ds in Dataset::all() {
            let mut t = Table::new(
                format!(
                    "Figure {} — {} error in p{} estimates, {}",
                    metric.figure_number(),
                    metric.label(),
                    q * 100.0,
                    ds.name()
                ),
                &["n", "DDSketch", "GKArray", "HDRHistogram", "MomentSketch"],
            );
            let mut ns: Vec<u64> = rows
                .iter()
                .filter(|r| r.dataset == ds && r.q == q)
                .map(|r| r.n)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            for n in ns {
                let mut cells = vec![fmt_n(n)];
                for kind in ContenderKind::accuracy_set() {
                    let cell = rows
                        .iter()
                        .find(|r| r.dataset == ds && r.q == q && r.n == n && r.kind == kind)
                        .map(|r| format!("{:.3e}", metric.of(r)))
                        .unwrap_or_else(|| "-".into());
                    cells.push(cell);
                }
                t.row(cells);
            }
            tables.push(t);
        }
    }
    tables
}

/// Which error axis to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Figure 10.
    Relative,
    /// Figure 11.
    Rank,
}

impl ErrorMetric {
    fn of(self, row: &AccuracyRow) -> f64 {
        match self {
            ErrorMetric::Relative => row.relative_error,
            ErrorMetric::Rank => row.rank_error,
        }
    }

    fn label(self) -> &'static str {
        match self {
            ErrorMetric::Relative => "relative",
            ErrorMetric::Rank => "rank",
        }
    }

    fn figure_number(self) -> u8 {
        match self {
            ErrorMetric::Relative => 10,
            ErrorMetric::Rank => 11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contenders::{PAPER_ALPHA, PAPER_EPSILON};

    fn max_err(
        rows: &[AccuracyRow],
        ds: Dataset,
        kind: ContenderKind,
        q: f64,
        metric: ErrorMetric,
    ) -> f64 {
        rows.iter()
            .filter(|r| r.dataset == ds && r.kind == kind && r.q == q)
            .map(|r| metric.of(r))
            .fold(0.0, f64::max)
    }

    #[test]
    fn figure10_ddsketch_is_always_within_alpha() {
        let rows = sweep(100_000, 3);
        for ds in Dataset::all() {
            for &q in &FIG1011_QS {
                let e = max_err(&rows, ds, ContenderKind::DDSketch, q, ErrorMetric::Relative);
                assert!(
                    e <= PAPER_ALPHA + 1e-9,
                    "{} p{}: DDSketch rel err {e}",
                    ds.name(),
                    q * 100.0
                );
            }
        }
    }

    #[test]
    fn figure10_rank_sketches_blow_up_on_heavy_tails() {
        // The paper's headline: on pareto and span, GKArray's and
        // Moments' p99 relative errors are orders of magnitude above
        // DDSketch's.
        let rows = sweep(100_000, 3);
        for ds in [Dataset::Pareto, Dataset::Span] {
            let dd = max_err(
                &rows,
                ds,
                ContenderKind::DDSketch,
                0.99,
                ErrorMetric::Relative,
            );
            let gk = max_err(
                &rows,
                ds,
                ContenderKind::GKArray,
                0.99,
                ErrorMetric::Relative,
            );
            assert!(
                gk > dd * 5.0,
                "{}: GK p99 rel err ({gk}) should dwarf DDSketch's ({dd})",
                ds.name()
            );
        }
    }

    #[test]
    fn figure11_gkarray_honors_its_rank_guarantee() {
        let rows = sweep(100_000, 3);
        for ds in Dataset::all() {
            for &q in &FIG1011_QS {
                let e = max_err(&rows, ds, ContenderKind::GKArray, q, ErrorMetric::Rank);
                // ε plus slack for the one-based rank convention at small n.
                assert!(
                    e <= PAPER_EPSILON + 2e-3,
                    "{} p{}: GK rank err {e}",
                    ds.name(),
                    q * 100.0
                );
            }
        }
    }

    #[test]
    fn tabulate_produces_the_3x3_grid() {
        let rows = sweep(10_000, 3);
        let tables = tabulate(&rows, ErrorMetric::Relative);
        assert_eq!(tables.len(), 9, "3 quantiles × 3 data sets");
        for t in &tables {
            assert_eq!(t.len(), 2, "decades 1e3 and 1e4");
        }
    }
}
