//! Figure 4: actual quantiles vs a 0.005-rank-accurate sketch vs a
//! 0.01-relative-accurate sketch over 20 batches of 100,000 values.
//!
//! The paper's batch quantiles (p50 ≈ 2, p75 ≈ 4, p90 ≈ 10, p99 ≈ 100+)
//! identify the stream as Pareto(1, 1), so that is what we feed.

use datasets::Dataset;
use evalkit::{fmt_sci, ExactOracle, Table};
use gkarray::GKArray;
use sketch_core::QuantileSketch;

/// Rank accuracy of the comparison sketch in the figure.
pub const FIG4_RANK_EPSILON: f64 = 0.005;
/// Relative accuracy of the DDSketch in the figure.
pub const FIG4_REL_ALPHA: f64 = 0.01;

/// One table per tracked quantile: batch → (actual, relative-error sketch,
/// rank-error sketch).
pub fn run(batches: usize, batch_size: usize) -> Vec<Table> {
    let qs = [0.5, 0.75, 0.9, 0.99];
    let mut tables: Vec<Table> = qs
        .iter()
        .map(|q| {
            Table::new(
                format!(
                    "Figure 4 — p{} per batch: actual vs 0.01-relative vs 0.005-rank",
                    q * 100.0
                ),
                &["batch", "actual", "rel_err_sketch", "rank_err_sketch"],
            )
        })
        .collect();

    let mut stream = Dataset::Pareto.stream(44);
    for batch in 1..=batches {
        let values: Vec<f64> = stream.by_ref().take(batch_size).collect();
        let oracle = ExactOracle::new(values.clone());

        let mut rel =
            ddsketch::presets::logarithmic_collapsing(FIG4_REL_ALPHA, 2048).expect("valid params");
        let mut rank = GKArray::new(FIG4_RANK_EPSILON).expect("valid params");
        for &v in &values {
            rel.add(v).expect("positive finite");
            rank.add(v).expect("positive finite");
        }
        rank.flush();

        for (t, &q) in tables.iter_mut().zip(&qs) {
            t.row(vec![
                batch.to_string(),
                fmt_sci(oracle.quantile(q)),
                fmt_sci(rel.quantile(q).unwrap()),
                fmt_sci(rank.quantile(q).unwrap()),
            ]);
        }
    }
    tables
}

/// Extract a column of floats from a table for assertions.
pub fn column(t: &Table, idx: usize) -> Vec<f64> {
    t.to_csv()
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(idx).unwrap().parse().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_sketch_stays_within_alpha_everywhere() {
        let tables = run(5, 20_000);
        for t in &tables {
            let actual = column(t, 1);
            let rel = column(t, 2);
            for (a, r) in actual.iter().zip(&rel) {
                assert!(
                    (r - a).abs() <= FIG4_REL_ALPHA * a + 1e-9,
                    "relative sketch off: {r} vs {a}"
                );
            }
        }
    }

    #[test]
    fn rank_sketch_degrades_on_the_p99() {
        // The figure's message: on heavy-tailed data the rank sketch's p99
        // wanders far more (in relative terms) than the relative sketch's.
        let tables = run(8, 20_000);
        let p99 = &tables[3];
        let actual = column(p99, 1);
        let rel = column(p99, 2);
        let rank = column(p99, 3);
        let max_rel_err = |est: &[f64]| {
            actual
                .iter()
                .zip(est)
                .map(|(a, e)| (e - a).abs() / a)
                .fold(0.0f64, f64::max)
        };
        let rel_err = max_rel_err(&rel);
        let rank_err = max_rel_err(&rank);
        assert!(
            rank_err > rel_err,
            "rank-error sketch should be worse on p99 of Pareto: rank {rank_err} vs rel {rel_err}"
        );
    }

    #[test]
    fn batch_medians_match_pareto() {
        let tables = run(5, 20_000);
        for m in column(&tables[0], 1) {
            assert!(
                (m - 2.0).abs() < 0.15,
                "Pareto(1,1) median should be ≈2, got {m}"
            );
        }
    }
}
