//! Extension experiment (paper Section 1.2 made quantitative): DDSketch
//! against the *other* rank-error sketches the paper discusses but does
//! not benchmark — t-digest (biased rank error, one-way mergeable) and
//! KLL (randomized uniform rank error, fully mergeable).
//!
//! The claim under test: biased or not, randomized or not, rank-error
//! sketches cannot bound the *relative* error of tail quantiles on
//! heavy-tailed data, while DDSketch holds α everywhere.

use datasets::Dataset;
use evalkit::{fmt_n, ExactOracle, Table};
use kll::KllSketch;
use sketch_core::QuantileSketch;
use tdigest::TDigest;

use crate::contenders::{PAPER_ALPHA, PAPER_MAX_BINS};
use crate::sweep::geometric_ns;

/// Relative-error comparison per data set: DDSketch vs t-digest vs KLL at
/// p50/p99/p99.9.
pub fn run(n_max: u64, seed: u64) -> Vec<Table> {
    let ns = geometric_ns(1000, n_max.max(1000));
    let qs = [0.5, 0.99, 0.999];
    let mut tables = Vec::new();
    for ds in Dataset::all() {
        let values = ds.generate(*ns.last().expect("non-empty") as usize, seed);
        let mut t = Table::new(
            format!(
                "Related work — max relative error over n sweep, {}",
                ds.name()
            ),
            &["q", "DDSketch", "t-digest", "KLL"],
        );
        let mut dd = ddsketch::presets::logarithmic_collapsing(PAPER_ALPHA, PAPER_MAX_BINS)
            .expect("valid params");
        let mut td = TDigest::new(100.0).expect("valid params");
        let mut k = KllSketch::with_seed(200, seed).expect("valid params");
        // Track the max error across the sweep (the worst case is the
        // operative number for a guarantee).
        let mut worst = vec![[0.0f64; 3]; qs.len()];
        let mut fed = 0usize;
        for &n in &ns {
            for &v in &values[fed..n as usize] {
                dd.add(v).expect("finite");
                td.add(v).expect("finite");
                k.add(v).expect("finite");
            }
            fed = n as usize;
            let oracle = ExactOracle::new(values[..n as usize].to_vec());
            for (wi, &q) in qs.iter().enumerate() {
                worst[wi][0] = worst[wi][0].max(oracle.relative_error(q, dd.quantile(q).unwrap()));
                worst[wi][1] = worst[wi][1].max(oracle.relative_error(q, td.quantile(q).unwrap()));
                worst[wi][2] = worst[wi][2].max(oracle.relative_error(q, k.quantile(q).unwrap()));
            }
        }
        for (wi, &q) in qs.iter().enumerate() {
            t.row(vec![
                format!("p{}", q * 100.0),
                format!("{:.3e}", worst[wi][0]),
                format!("{:.3e}", worst[wi][1]),
                format!("{:.3e}", worst[wi][2]),
            ]);
        }
        tables.push(t);
    }
    // Summary of n swept.
    let mut info = Table::new("Related work — sweep sizes", &["max_n"]);
    info.row(vec![fmt_n(*ns.last().expect("non-empty"))]);
    tables.push(info);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04::column;

    #[test]
    fn ddsketch_holds_alpha_while_rank_sketches_do_not_on_pareto() {
        let tables = run(100_000, 5);
        let pareto = &tables[0];
        // Column 1 = DDSketch: every row ≤ α.
        for v in column(pareto, 1) {
            assert!(v <= PAPER_ALPHA + 1e-9, "DDSketch exceeded alpha: {v}");
        }
        // p99.9 row: at least one rank-error sketch is worse than 5α on
        // heavy-tailed data (usually far worse).
        let p999_td = column(pareto, 2)[2];
        let p999_kll = column(pareto, 3)[2];
        assert!(
            p999_td > 5.0 * PAPER_ALPHA || p999_kll > 5.0 * PAPER_ALPHA,
            "rank sketches unexpectedly accurate: t-digest {p999_td}, KLL {p999_kll}"
        );
    }

    #[test]
    fn produces_one_table_per_dataset_plus_summary() {
        let tables = run(10_000, 6);
        assert_eq!(tables.len(), 4);
        for t in &tables[..3] {
            assert_eq!(t.len(), 3, "p50/p99/p99.9 rows");
        }
    }
}
