//! Figure 9: average time to merge two sketches (µs) as a function of the
//! number of values in the merged sketch.

use datasets::Dataset;
use evalkit::{fmt_n, time_min, Table};

use crate::contenders::{Contender, ContenderKind};
use crate::sweep::geometric_ns;

/// One table per data set: rows are merged-n decades, columns are µs per
/// merge. The merge target is cloned outside the timed region; the
/// minimum of `reps` runs is reported.
pub fn run(n_max: u64, seed: u64, reps: usize) -> Vec<Table> {
    let ns = geometric_ns(1000, n_max.max(1000));
    Dataset::all()
        .into_iter()
        .map(|ds| {
            let values = ds.generate(*ns.last().expect("non-empty") as usize, seed);
            let mut t = Table::new(
                format!("Figure 9 — merge time (µs), {}", ds.name()),
                &[
                    "merged_n",
                    "DDSketch",
                    "DDSketch (fast)",
                    "GKArray",
                    "HDRHistogram",
                    "MomentSketch",
                ],
            );
            for &n in &ns {
                let half = (n / 2) as usize;
                let (a_vals, b_vals) = values[..n as usize].split_at(half);
                let mut row = vec![fmt_n(n)];
                for kind in ContenderKind::all() {
                    let mut a = Contender::new(kind, ds).expect("valid params");
                    let mut b = Contender::new(kind, ds).expect("valid params");
                    a.add_all(a_vals);
                    b.add_all(b_vals);
                    a.seal();
                    b.seal();
                    let ns_elapsed = time_min(reps, || {
                        let mut target = clone_contender(&a, ds);
                        target.merge_from(&b).expect("same kind");
                        std::hint::black_box(target.count());
                    });
                    // Subtract an estimate of the clone cost measured the
                    // same way, so the figure reports merge work only.
                    let clone_ns = time_min(reps, || {
                        let target = clone_contender(&a, ds);
                        std::hint::black_box(target.count());
                    });
                    let merge_us = (ns_elapsed - clone_ns).max(0.0) / 1000.0;
                    row.push(format!("{merge_us:.2}"));
                }
                t.row(row);
            }
            t
        })
        .collect()
}

/// Clone a contender (the wrapped sketches are all `Clone`; the enum
/// itself stays non-Clone to keep accidental copies out of hot loops).
fn clone_contender(c: &Contender, _ds: Dataset) -> Contender {
    match c {
        Contender::DDSketch(s) => Contender::DDSketch(s.clone()),
        Contender::DDSketchFast(s) => Contender::DDSketchFast(s.clone()),
        Contender::GKArray(s) => Contender::GKArray(s.clone()),
        Contender::Hdr(s) => Contender::Hdr(s.clone()),
        Contender::Moments(s) => Contender::Moments(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04::column;

    #[test]
    fn merge_times_are_sane_and_moments_wins() {
        // Paper Section 4.3: "The Moment sketch has the fastest merge
        // speeds of all the algorithms" (it only adds k = 20 floats).
        let tables = run(100_000, 31, 3);
        for t in &tables {
            let last = t.len() - 1;
            let dd = column(t, 1)[last];
            let moments = column(t, 5)[last];
            assert!(
                moments <= dd + 0.01,
                "Moments merge ({moments}µs) should beat DDSketch ({dd}µs)"
            );
            for col in 1..=5 {
                for v in column(t, col) {
                    assert!((0.0..1e6).contains(&v), "merge µs out of range: {v}");
                }
            }
        }
    }
}
