//! Figure 5: histograms of the pareto, span and power data sets
//! (log-scale y for the two heavy-tailed ones).

use datasets::Dataset;
use evalkit::ExactOracle;

use crate::histo::ascii_histogram;

/// Rendered histogram plus its caption.
pub struct DatasetHistogram {
    /// Data set name (paper column title).
    pub name: &'static str,
    /// ASCII rendering.
    pub rendered: String,
}

/// Build all three histograms over `n` samples each.
pub fn run(n: usize) -> Vec<DatasetHistogram> {
    Dataset::all()
        .into_iter()
        .map(|ds| {
            let values = ds.generate(n, 55);
            let oracle = ExactOracle::new(values.clone());
            // Plot to the p99.9 so a single max outlier does not flatten
            // everything (the paper clips its axes similarly).
            let lo = oracle.quantile(0.0);
            let hi = oracle.quantile(0.999).max(lo * (1.0 + 1e-9)) * 1.0001 + 1e-12;
            let log_y = matches!(ds, Dataset::Pareto | Dataset::Span);
            DatasetHistogram {
                name: ds.name(),
                rendered: ascii_histogram(&values, lo, hi, 36, log_y),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_histograms_render() {
        let hs = run(30_000);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0].name, "pareto");
        assert_eq!(hs[1].name, "span");
        assert_eq!(hs[2].name, "power");
        for h in &hs {
            assert!(h.rendered.contains('#'), "{} histogram empty", h.name);
            assert!(h.rendered.lines().count() > 30);
        }
    }
}
