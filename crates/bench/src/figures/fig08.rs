//! Figure 8: average time to add a value (ns), per sketch, as n grows.

use datasets::Dataset;
use evalkit::{fmt_n, throughput_of, Table};

use crate::contenders::{Contender, ContenderKind};
use crate::sweep::geometric_ns;

/// One table per data set: rows are n decades, columns are ns/add for
/// each contender. Each cell times a fresh sketch ingesting the n-prefix.
pub fn run(n_max: u64, seed: u64) -> Vec<Table> {
    let ns = geometric_ns(1000, n_max.max(1000));
    Dataset::all()
        .into_iter()
        .map(|ds| {
            let values = ds.generate(*ns.last().expect("non-empty") as usize, seed);
            let mut t = Table::new(
                format!("Figure 8 — time per Add operation (ns), {}", ds.name()),
                &[
                    "n",
                    "DDSketch",
                    "DDSketch (fast)",
                    "GKArray",
                    "HDRHistogram",
                    "MomentSketch",
                ],
            );
            for &n in &ns {
                let prefix = &values[..n as usize];
                let mut row = vec![fmt_n(n)];
                for kind in ContenderKind::all() {
                    let mut c = Contender::new(kind, ds).expect("valid params");
                    let tp = throughput_of(n, || {
                        c.add_all(prefix);
                    });
                    // Keep the sketch alive so the adds are not elided.
                    std::hint::black_box(c.count());
                    row.push(format!("{:.1}", tp.ns_per_item()));
                }
                t.row(row);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04::column;

    #[test]
    fn add_costs_are_positive_and_bounded() {
        let tables = run(100_000, 21);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            for col in 1..=5 {
                for v in column(t, col) {
                    assert!(v > 0.0, "ns/add must be positive");
                    assert!(v < 1e6, "ns/add implausibly large: {v}");
                }
            }
        }
    }

    #[test]
    fn gkarray_is_slowest_at_scale() {
        // Paper Section 4.3: "GKArray is the slowest for insertions by
        // far". Check at the largest laptop n; use the pareto table.
        let tables = run(100_000, 23);
        let t = &tables[0];
        let last = t.len() - 1;
        let dd = column(t, 1)[last];
        let gk = column(t, 3)[last];
        assert!(
            gk > dd,
            "GKArray ({gk} ns) should be slower than DDSketch ({dd} ns) per add"
        );
    }
}
