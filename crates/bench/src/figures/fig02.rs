//! Figure 2: the average latency of a heavy-tailed endpoint tracks the
//! p75, not the median — the paper's motivation for quantile monitoring.

use evalkit::{fmt_sci, Table};
use pipeline::{run_simulation, SimConfig};

/// Run the pipeline simulation and produce the per-window series
/// (window, avg, p50, p75) for the heavy-tailed checkout endpoint.
pub fn run(requests_per_worker: usize) -> Table {
    let config = SimConfig {
        workers: 4,
        requests_per_worker,
        duration_secs: 200,
        window_secs: 10,
        ..SimConfig::default()
    };
    let report = run_simulation(&config).expect("simulation runs");
    let metric = "web.checkout";

    let avg = report.store.average_series(metric);
    let p50 = report.store.quantile_series(metric, 0.5);
    let p75 = report.store.quantile_series(metric, 0.75);

    let mut t = Table::new(
        "Figure 2 — average vs p50/p75 latency over time (web.checkout)",
        &["window_start_s", "avg", "p50", "p75"],
    );
    for ((wa, a), ((_, m), (_, u))) in avg.iter().zip(p50.iter().zip(p75.iter())) {
        t.row(vec![wa.to_string(), fmt_sci(*a), fmt_sci(*m), fmt_sci(*u)]);
    }
    t
}

/// The figure's claim, made checkable: over all windows, the average is
/// closer (in log distance) to the p75 than to the p50.
pub fn average_tracks_p75(t: &Table) -> bool {
    let csv = t.to_csv();
    let mut closer_to_p75 = 0usize;
    let mut windows = 0usize;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let (avg, p50, p75): (f64, f64, f64) = (
            cells[1].parse().unwrap(),
            cells[2].parse().unwrap(),
            cells[3].parse().unwrap(),
        );
        windows += 1;
        if (avg.ln() - p75.ln()).abs() < (avg.ln() - p50.ln()).abs() {
            closer_to_p75 += 1;
        }
    }
    windows > 0 && closer_to_p75 * 3 >= windows * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        let t = run(20_000);
        assert!(
            t.len() >= 10,
            "need a real time series, got {} windows",
            t.len()
        );
        assert!(
            average_tracks_p75(&t),
            "the average must track p75 rather than p50 on heavy-tailed latencies:\n{}",
            t.render()
        );
    }
}
