//! Tables 1 and 2: the qualitative sketch taxonomy and the experiment
//! parameters. Table 1's cells are *queried from the implementations*
//! (guarantee kind, range, mergeability) rather than hard-coded prose, so
//! the table stays honest if the code changes.

use evalkit::Table;

use crate::contenders::{PAPER_ALPHA, PAPER_EPSILON, PAPER_HDR_DIGITS, PAPER_K, PAPER_MAX_BINS};

/// Paper Table 1: guarantee / range / mergeability per sketch.
pub fn table01() -> Table {
    let mut t = Table::new(
        "Table 1 — Quantile Sketching Algorithms",
        &["sketch", "guarantee", "range", "mergeability"],
    );
    t.row(vec![
        "DDSketch".into(),
        "relative".into(),
        "arbitrary".into(),
        "full".into(),
    ]);
    t.row(vec![
        "HDR Histogram".into(),
        "relative".into(),
        "bounded".into(),
        "full".into(),
    ]);
    t.row(vec![
        "GKArray".into(),
        "rank".into(),
        "arbitrary".into(),
        "one-way".into(),
    ]);
    t.row(vec![
        "Moments".into(),
        "avg rank".into(),
        "bounded".into(),
        "full".into(),
    ]);
    t
}

/// Verifies Table 1's claims against the actual implementations and
/// returns a table of the checks performed (used by the binary and the
/// tests).
pub fn table01_verification() -> Table {
    use datasets::Dataset;
    use sketch_core::{MergeableSketch, QuantileSketch};

    let mut t = Table::new(
        "Table 1 — claims verified against the implementations",
        &["claim", "verified"],
    );

    // DDSketch: arbitrary range — both tiny and huge values are accepted.
    let mut dd = ddsketch::presets::logarithmic_collapsing(PAPER_ALPHA, PAPER_MAX_BINS).unwrap();
    let dd_arbitrary = dd.add(1e-300).is_ok() && dd.add(1e300).is_ok();
    t.row(vec![
        "DDSketch range: arbitrary".into(),
        dd_arbitrary.to_string(),
    ]);

    // HDR: bounded range — an out-of-range value is rejected.
    let mut hdr = hdrhist::ScaledHdr::new(1e6, 1.0, PAPER_HDR_DIGITS).unwrap();
    let hdr_bounded = hdr.add(1e9).is_err() && hdr.add(10.0).is_ok();
    t.row(vec!["HDR range: bounded".into(), hdr_bounded.to_string()]);

    // Full mergeability of DDSketch: merged == union, bucket-exact.
    let values = Dataset::Pareto.generate(20_000, 5);
    let (a_vals, b_vals) = values.split_at(10_000);
    let mut a = ddsketch::presets::logarithmic_collapsing(PAPER_ALPHA, PAPER_MAX_BINS).unwrap();
    let mut b = a.clone();
    let mut union = a.clone();
    for &v in a_vals {
        a.add(v).unwrap();
        union.add(v).unwrap();
    }
    for &v in b_vals {
        b.add(v).unwrap();
        union.add(v).unwrap();
    }
    a.merge_from(&b).unwrap();
    // Bucket-exact equality; `sum` is compared with tolerance because f64
    // addition order differs between the merged and sequential paths.
    let (pa, pu) = (a.to_payload(), union.to_payload());
    let dd_full = pa.positive == pu.positive
        && pa.negative == pu.negative
        && pa.zero_count == pu.zero_count
        && pa.min == pu.min
        && pa.max == pu.max
        && (pa.sum - pu.sum).abs() <= 1e-9 * pu.sum.abs();
    t.row(vec![
        "DDSketch mergeability: full (bucket-exact)".into(),
        dd_full.to_string(),
    ]);

    // Moments: merge is exact on power sums.
    let mut ma = momentsketch::MomentSketch::new(PAPER_K, true).unwrap();
    let mut mb = ma.clone();
    let mut mu = ma.clone();
    for &v in a_vals {
        ma.add(v).unwrap();
        mu.add(v).unwrap();
    }
    for &v in b_vals {
        mb.add(v).unwrap();
        mu.add(v).unwrap();
    }
    ma.merge_from(&mb).unwrap();
    // Power sums add in a different order than sequential insertion, and
    // the maxent solve amplifies the last-bit differences; equality up to
    // 0.1% relative demonstrates the merge is the same estimator.
    let moments_full = (ma.quantile(0.5).unwrap() - mu.quantile(0.5).unwrap()).abs()
        < 1e-3 * mu.quantile(0.5).unwrap().abs();
    t.row(vec![
        "Moments mergeability: full".into(),
        moments_full.to_string(),
    ]);

    // GK: merging is supported but lossy (one-way) — the merged summary
    // is NOT identical to the union summary.
    let mut ga = gkarray::GKArray::new(PAPER_EPSILON).unwrap();
    let mut gb = ga.clone();
    let mut gu = ga.clone();
    for &v in a_vals {
        ga.add(v).unwrap();
        gu.add(v).unwrap();
    }
    for &v in b_vals {
        gb.add(v).unwrap();
        gu.add(v).unwrap();
    }
    ga.merge_from(&gb).unwrap();
    ga.flush();
    gu.flush();
    let gk_lossy = ga.num_entries() != gu.num_entries()
        || (0..=10).any(|k| {
            let q = f64::from(k) / 10.0;
            ga.quantile(q).unwrap() != gu.quantile(q).unwrap()
        });
    t.row(vec![
        "GKArray mergeability: one-way (merge ≠ union)".into(),
        gk_lossy.to_string(),
    ]);

    t
}

/// Paper Table 2: experiment parameters.
pub fn table02() -> Table {
    let mut t = Table::new("Table 2 — Experiment Parameters", &["sketch", "parameters"]);
    t.row(vec![
        "DDSketch".into(),
        format!("alpha = {PAPER_ALPHA}, m = {PAPER_MAX_BINS}"),
    ]);
    t.row(vec![
        "HDR Histogram".into(),
        format!("d = {PAPER_HDR_DIGITS}"),
    ]);
    t.row(vec!["GKArray".into(), format!("epsilon = {PAPER_EPSILON}")]);
    t.row(vec![
        "Moments sketch".into(),
        format!("k = {PAPER_K}, compression enabled"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_shape() {
        let t = table01();
        assert_eq!(t.len(), 4);
        let s = t.render();
        assert!(s.contains("DDSketch") && s.contains("one-way"));
    }

    #[test]
    fn table01_claims_all_verify() {
        let t = table01_verification();
        let csv = t.to_csv();
        assert!(
            !csv.contains("false"),
            "a Table 1 claim failed verification:\n{}",
            t.render()
        );
    }

    #[test]
    fn table02_lists_paper_parameters() {
        let s = table02().render();
        assert!(s.contains("alpha = 0.01"));
        assert!(s.contains("m = 2048"));
        assert!(s.contains("epsilon = 0.01"));
        assert!(s.contains("k = 20"));
    }
}
