//! `n` sweeps and CLI-argument parsing shared by the figure binaries.

/// Decades from `lo` to `hi` inclusive: `10^3, 10^4, …` — the x-axes of
/// Figures 6–11.
pub fn geometric_ns(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo);
    let mut out = Vec::new();
    let mut n = lo;
    while n <= hi {
        out.push(n);
        match n.checked_mul(10) {
            Some(next) => n = next,
            None => break,
        }
    }
    out
}

/// Parse the first CLI argument as the maximum `n` (supports `1e6`-style
/// shorthand); falls back to `default`.
pub fn parse_n_arg(default: u64) -> u64 {
    let arg = match std::env::args().nth(1) {
        Some(a) => a,
        None => return default,
    };
    parse_n(&arg).unwrap_or_else(|| {
        eprintln!("warning: could not parse n argument {arg:?}; using {default}");
        default
    })
}

/// Parse `"1000000"`, `"1e6"`, or `"10_000"` into a count.
pub fn parse_n(s: &str) -> Option<u64> {
    let s = s.trim().replace('_', "");
    if let Ok(v) = s.parse::<u64>() {
        return Some(v);
    }
    let f = s.parse::<f64>().ok()?;
    (f.is_finite() && f >= 1.0 && f <= u64::MAX as f64).then_some(f as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decades_are_generated() {
        assert_eq!(
            geometric_ns(1000, 1_000_000),
            vec![1000, 10_000, 100_000, 1_000_000]
        );
        assert_eq!(geometric_ns(5, 5), vec![5]);
    }

    #[test]
    fn decades_do_not_overflow() {
        let ns = geometric_ns(1, u64::MAX);
        assert!(ns.len() == 20, "10^0..10^19 fit in u64");
    }

    #[test]
    #[should_panic]
    fn decades_reject_inverted_range() {
        geometric_ns(100, 10);
    }

    #[test]
    fn n_parsing() {
        assert_eq!(parse_n("1000"), Some(1000));
        assert_eq!(parse_n("1e6"), Some(1_000_000));
        assert_eq!(parse_n("2.5e3"), Some(2500));
        assert_eq!(parse_n("10_000"), Some(10_000));
        assert_eq!(parse_n("-5"), None);
        assert_eq!(parse_n("abc"), None);
    }
}
