//! ASCII histograms for the distribution figures (3 and 5).

use evalkit::fmt_sci;

/// Render a fixed-bucket histogram of `values` between `lo` and `hi` as an
/// ASCII bar chart. `log_y` plots bar lengths on a log scale — the paper
/// does this for the heavy-tailed data sets ("the y-axes ... are plotted
/// on log scales due to their heavy-tailed nature").
pub fn ascii_histogram(values: &[f64], lo: f64, hi: f64, buckets: usize, log_y: bool) -> String {
    assert!(buckets > 0 && hi > lo);
    let mut counts = vec![0u64; buckets];
    let width = (hi - lo) / buckets as f64;
    let mut total_in_range = 0u64;
    for &v in values {
        if v < lo || v > hi {
            continue;
        }
        let b = (((v - lo) / width) as usize).min(buckets - 1);
        counts[b] += 1;
        total_in_range += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(0).max(1);
    const BAR: usize = 60;
    let bar_len = |c: u64| -> usize {
        if c == 0 {
            return 0;
        }
        if log_y {
            // Map log10(1)..log10(max) onto 1..BAR.
            let f = (c as f64).ln_1p() / (max_count as f64).ln_1p();
            ((f * BAR as f64).round() as usize).max(1)
        } else {
            (((c as f64 / max_count as f64) * BAR as f64).round() as usize).max(1)
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "histogram: {} values in [{}, {}], {} buckets{}\n",
        total_in_range,
        fmt_sci(lo),
        fmt_sci(hi),
        buckets,
        if log_y { " (log-scale bars)" } else { "" }
    ));
    for (b, &c) in counts.iter().enumerate() {
        let left = lo + b as f64 * width;
        out.push_str(&format!(
            "{:>12} | {:<width$} {}\n",
            fmt_sci(left),
            "#".repeat(bar_len(c)),
            c,
            width = BAR
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_buckets() {
        let values = [0.5, 1.5, 1.6, 2.5];
        let h = ascii_histogram(&values, 0.0, 3.0, 3, false);
        // Middle bucket has two values and the longest bar.
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn out_of_range_values_are_skipped() {
        let values = [-1.0, 0.5, 99.0];
        let h = ascii_histogram(&values, 0.0, 1.0, 2, false);
        assert!(h.contains("1 values in"));
    }

    #[test]
    fn log_scale_shrinks_dominant_bars() {
        let mut values = vec![0.1; 10_000];
        values.push(0.9);
        let lin = ascii_histogram(&values, 0.0, 1.0, 2, false);
        let log = ascii_histogram(&values, 0.0, 1.0, 2, true);
        // On the log scale, the single-count bucket's bar is visible
        // (longer than 1/10000 of the max bar).
        let bar_of = |s: &str, idx: usize| s.lines().nth(idx + 1).unwrap().matches('#').count();
        assert_eq!(bar_of(&lin, 1), 1);
        assert!(bar_of(&log, 1) >= 1);
        assert!(bar_of(&log, 0) == 60);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_bucket_spec() {
        ascii_histogram(&[1.0], 0.0, 1.0, 0, false);
    }
}
