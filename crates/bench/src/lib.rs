//! # bench-suite
//!
//! Shared harness for the figure-reproduction binaries (`src/bin/fig*.rs`)
//! and Criterion microbenchmarks: a uniform [`Contender`] wrapper over the
//! four sketches with the paper's Table 2 parameters, per-data-set HDR
//! range configuration, and the geometric `n` sweeps the figures use.

pub mod contenders;
pub mod figures;
pub mod histo;
pub mod sweep;

pub use contenders::{
    Contender, ContenderKind, PAPER_ALPHA, PAPER_EPSILON, PAPER_K, PAPER_MAX_BINS,
};
pub use sweep::{geometric_ns, parse_n_arg};
