//! Criterion microbenchmarks for the merge/query plane.
//!
//! * `merge/*` — Figure 9: merging two sketches of n/2 values each,
//!   across all contender sketch families.
//! * `merge_plane/*` — the k-way aggregation plane: answering p50/p99
//!   from S shards (S ∈ {1, 4, 16, 64}) of a 1M-value stream, comparing
//!   the pre-refactor path (clone a shard, pairwise `merge_from` the
//!   rest, query the materialized merge) against `merge_many` and the
//!   zero-copy `merged_quantiles` k-way walk, plus the full
//!   `ConcurrentSketch::quantiles` read path (shard copies under
//!   per-shard locks, walk outside all locks).
//! * `rollup/*` — `TimeSeriesStore::rollup` throughput: 3600 one-second
//!   cells rolled up 60× into minutes, one `merge_many` per coarse cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench_suite::{Contender, ContenderKind};
use datasets::Dataset;
use ddsketch::{AnyDDSketch, SketchConfig};
use pipeline::{ConcurrentSketch, TimeSeriesStore};

fn populated_pair(kind: ContenderKind, ds: Dataset, n: usize) -> (Contender, Contender) {
    let values = ds.generate(n, 31);
    let (va, vb) = values.split_at(n / 2);
    let mut a = Contender::new(kind, ds).expect("valid params");
    let mut b = Contender::new(kind, ds).expect("valid params");
    a.add_all(va);
    b.add_all(vb);
    a.seal();
    b.seal();
    (a, b)
}

fn clone_of(c: &Contender) -> Contender {
    match c {
        Contender::DDSketch(s) => Contender::DDSketch(s.clone()),
        Contender::DDSketchFast(s) => Contender::DDSketchFast(s.clone()),
        Contender::GKArray(s) => Contender::GKArray(s.clone()),
        Contender::Hdr(s) => Contender::Hdr(s.clone()),
        Contender::Moments(s) => Contender::Moments(s.clone()),
    }
}

fn bench_merge(c: &mut Criterion) {
    let n = 1_000_000usize;
    for ds in Dataset::all() {
        let mut group = c.benchmark_group(format!("merge/{}", ds.name()));
        for kind in ContenderKind::all() {
            let (a, b) = populated_pair(kind, ds, n);
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |bench| {
                bench.iter_batched(
                    || clone_of(&a),
                    |mut target| {
                        target.merge_from(black_box(&b)).expect("same kind");
                        black_box(target.count())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

/// The paper's production configuration, used by the aggregation-plane
/// benchmarks.
fn plane_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

/// Build S shard sketches (and a matching `ConcurrentSketch`) over a
/// 1M-value heavy-tailed stream split round-robin across shards.
fn populated_shards(shards: usize) -> (Vec<AnyDDSketch>, ConcurrentSketch) {
    let values = Dataset::Pareto.generate(1_000_000, 47);
    let config = plane_config();
    let mut plain: Vec<AnyDDSketch> = (0..shards)
        .map(|_| config.build().expect("valid config"))
        .collect();
    let concurrent = ConcurrentSketch::with_config(config, shards).expect("valid config");
    for (shard, chunk) in values.chunks(values.len() / shards).enumerate() {
        let shard = shard.min(shards - 1);
        plain[shard].add_slice(chunk).expect("positive latencies");
        concurrent
            .add_slice_hinted(shard, chunk)
            .expect("positive latencies");
    }
    for sketch in &mut plain {
        sketch.release_scratch();
    }
    (plain, concurrent)
}

fn bench_merge_plane(c: &mut Criterion) {
    let qs = [0.5, 0.99];
    let mut group = c.benchmark_group("merge_plane/p50+p99");
    for shards in [1usize, 4, 16, 64] {
        let (plain, concurrent) = populated_shards(shards);
        let refs: Vec<&AnyDDSketch> = plain.iter().collect();

        // Pre-refactor snapshot-then-query: clone the first shard, fold
        // the rest in pairwise (one grow/collapse each), query the
        // materialized merge.
        group.bench_function(BenchmarkId::new("pairwise-materialize", shards), |b| {
            b.iter(|| {
                let mut merged = plain[0].clone();
                for other in &plain[1..] {
                    merged.merge_from(black_box(other)).expect("same config");
                }
                merged.quantiles(black_box(&qs)).expect("non-empty")
            });
        });

        // The merge plane, still materializing: one k-way merge_many.
        group.bench_function(BenchmarkId::new("merge_many-materialize", shards), |b| {
            b.iter(|| {
                let mut merged = plain[0].clone();
                merged
                    .merge_many(black_box(&refs[1..]))
                    .expect("same config");
                merged.quantiles(black_box(&qs)).expect("non-empty")
            });
        });

        // The zero-copy walk: no merged sketch exists at any point.
        group.bench_function(BenchmarkId::new("merged_quantiles", shards), |b| {
            b.iter(|| AnyDDSketch::merged_quantiles(black_box(&refs), black_box(&qs)))
        });

        // The full concurrent read path (per-shard lock + bin copy, then
        // the same walk outside all locks).
        group.bench_function(BenchmarkId::new("concurrent-quantiles", shards), |b| {
            b.iter(|| concurrent.quantiles(black_box(&qs)).expect("non-empty"))
        });
    }
    group.finish();
}

fn bench_rollup(c: &mut Criterion) {
    // One hour of per-second cells for two endpoints, rolled up to
    // minutes: 120 merge_many calls over 60 cells each.
    let mut fine = TimeSeriesStore::with_config(plane_config(), 1).expect("valid config");
    let values = Dataset::Pareto.generate(3600 * 64, 48);
    for (second, chunk) in values.chunks(64).enumerate() {
        let (home, checkout) = chunk.split_at(32);
        fine.record_slice("web.home", second as u64, home)
            .expect("positive latencies");
        fine.record_slice("web.checkout", second as u64, checkout)
            .expect("positive latencies");
    }
    let mut group = c.benchmark_group("rollup/1h-1s-to-1m");
    group.bench_function("merge_many-per-minute", |b| {
        b.iter(|| {
            fine.rollup(black_box(60))
                .expect("valid factor")
                .num_cells()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_merge, bench_merge_plane, bench_rollup
}
criterion_main!(benches);
