//! Criterion microbenchmark behind Figure 9: merging two sketches of
//! n/2 values each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench_suite::{Contender, ContenderKind};
use datasets::Dataset;

fn populated_pair(kind: ContenderKind, ds: Dataset, n: usize) -> (Contender, Contender) {
    let values = ds.generate(n, 31);
    let (va, vb) = values.split_at(n / 2);
    let mut a = Contender::new(kind, ds).expect("valid params");
    let mut b = Contender::new(kind, ds).expect("valid params");
    a.add_all(va);
    b.add_all(vb);
    a.seal();
    b.seal();
    (a, b)
}

fn clone_of(c: &Contender) -> Contender {
    match c {
        Contender::DDSketch(s) => Contender::DDSketch(s.clone()),
        Contender::DDSketchFast(s) => Contender::DDSketchFast(s.clone()),
        Contender::GKArray(s) => Contender::GKArray(s.clone()),
        Contender::Hdr(s) => Contender::Hdr(s.clone()),
        Contender::Moments(s) => Contender::Moments(s.clone()),
    }
}

fn bench_merge(c: &mut Criterion) {
    let n = 1_000_000usize;
    for ds in Dataset::all() {
        let mut group = c.benchmark_group(format!("merge/{}", ds.name()));
        for kind in ContenderKind::all() {
            let (a, b) = populated_pair(kind, ds, n);
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |bench| {
                bench.iter_batched(
                    || clone_of(&a),
                    |mut target| {
                        target.merge_from(black_box(&b)).expect("same kind");
                        black_box(target.count())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_merge
}
criterion_main!(benches);
