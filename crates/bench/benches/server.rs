//! Soak harness for `sketchd`: a fleet of agents drives ≥ 1M sketch
//! payloads over TCP loopback while a concurrent query client samples
//! fleet quantiles, with ~1% corrupt frames and periodic mid-stream
//! disconnects injected throughout.
//!
//! The run records ingest throughput (payloads/s, values/s) and query
//! latency (p50 / p99) and — the acceptance bar — verifies at the end
//! that **zero payloads were lost or duplicated**: the served quantiles
//! must be bit-identical to a from-scratch union sketch over every
//! valid payload sent, and the total count must match exactly.
//!
//! Like the codec bench, this hand-rolls its harness so it can emit
//! machine-readable results to `results/BENCH_server.json`. Modes:
//!
//! * default        — full soak, 1,048,576 payloads
//! * `--frames N`   — override the payload budget (CI short-soak)
//! * `--test`       — smoke: 20k payloads, full verification, no JSON
//! * `--evloop`     — connection-scaling matrix: 8 → 512 agents under
//!   both I/O models (`Threaded` vs `Reactor`), each cell verified for
//!   zero loss and bit-identical quantiles, emitted to
//!   `results/BENCH_server_evloop.json`. With `--test`: a small CI
//!   matrix (8 and 512 agents, short budget) that still writes the
//!   JSON artifact.
//! * `--query`      — query-under-sustained-ingest matrix:
//!   `{LockedFold, EpochCached}` × `{Threaded, Reactor}`. Each cell
//!   drives 4 ingest agents flat-out over TCP while an in-process
//!   sampler measures fleet-p99 query *service time* at ~1 kHz (the
//!   PR 7 soak cadence); after the drain, every query family's answer
//!   is verified against the from-scratch union and against the
//!   locked-fold cell's byte-for-byte — a cached read at the final
//!   epoch must be bit-identical to a fresh under-lock fold of the same
//!   data. Emits `results/BENCH_server_query.json`.
//! * `--query-smoke` — the same matrix at a CI-sized budget; still
//!   writes the JSON artifact, skips the ≥5× p99 assertion (timing on
//!   shared CI runners is too noisy to gate on).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ddsketch::{AnyDDSketch, SketchConfig};
use sketchd::{AgentSender, Bind, IoModel, QueryClient, ReadPlane, ServerConfig, ServerHandle};

const AGENTS: usize = 8;
const POOL: usize = 64;
const VALUES_PER_FRAME: usize = 16;
const TENANT: &str = "soak";

fn plane_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

/// The rotation of distinct payloads every agent ships: pool entry `j`
/// always encodes the same 16 values, so the expected union is the pool
/// union weighted by how often each entry was sent.
fn payload_pool() -> Vec<Vec<u8>> {
    (0..POOL)
        .map(|j| {
            let mut sketch = plane_config().build().unwrap();
            for k in 0..VALUES_PER_FRAME {
                let v = 0.5 + ((j * VALUES_PER_FRAME + k) * 37 % 911) as f64 * 0.5;
                sketch.add(v).unwrap();
            }
            sketch.encode()
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else {
        format!("{:.1} k/s", per_sec / 1e3)
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    frames: u64,
    corrupt: u64,
    elapsed: Duration,
    payloads_per_sec: f64,
    values_per_sec: f64,
    queries: u64,
    p50_query_ns: u64,
    p99_query_ns: u64,
) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_server.json"
    );
    let out = format!(
        "{{\n  \"bench\": \"server\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n    \
         {{\"id\": \"soak/ingest-payload\", \"ns_per_iter\": {:.1}, \
         \"frames\": {frames}, \"corrupt_frames\": {corrupt}, \
         \"payloads_per_sec\": {payloads_per_sec:.0}, \
         \"values_per_sec\": {values_per_sec:.0}}},\n    \
         {{\"id\": \"soak/query-quantile-p50\", \"ns_per_iter\": {p50_query_ns}, \
         \"queries\": {queries}}},\n    \
         {{\"id\": \"soak/query-quantile-p99\", \"ns_per_iter\": {p99_query_ns}, \
         \"queries\": {queries}}}\n  ]\n}}\n",
        elapsed.as_nanos() as f64 / frames.max(1) as f64,
    );
    match std::fs::write(path, out) {
        Ok(()) => println!("\nmachine-readable results -> results/BENCH_server.json"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// One connection-scaling cell: `agents` concurrent senders under
/// `io_model`, verified for zero loss and bit-identical quantiles.
struct CellResult {
    io_model: &'static str,
    agents: usize,
    frames: u64,
    ns_per_payload: f64,
    payloads_per_sec: f64,
}

fn run_cell(
    io_model: IoModel,
    label: &'static str,
    agents: usize,
    frame_budget: u64,
    pool: &Arc<Vec<Vec<u8>>>,
) -> CellResult {
    let per_agent = (frame_budget / agents as u64).max(1);
    let total_frames = per_agent * agents as u64;
    let server = ServerHandle::spawn(
        &Bind::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            sketch: plane_config(),
            shards_per_tenant: 4,
            staging_bound: 256,
            fold_threshold: 32,
            window_secs: 10,
            io_model,
            max_connections: 1024,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let endpoint = server.endpoint().clone();

    let start = Instant::now();
    let handles: Vec<_> = (0..agents)
        .map(|a| {
            let endpoint = endpoint.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut agent = AgentSender::connect(endpoint, TENANT).expect("agent connects");
                let mut sent = vec![0u64; POOL];
                for i in 0..per_agent {
                    let entry = ((a as u64 + i) % POOL as u64) as usize;
                    let metric = format!("m{}", i % 16);
                    agent
                        .send_encoded(&metric, (i % 360) * 10, &pool[entry])
                        .expect("send");
                    sent[entry] += 1;
                }
                agent.close().expect("clean close");
                sent
            })
        })
        .collect();
    let mut multiplicity = vec![0u64; POOL];
    for handle in handles {
        for (slot, n) in multiplicity.iter_mut().zip(handle.join().unwrap()) {
            *slot += n;
        }
    }

    // Stop the clock only once the server accounts for every frame.
    let mut client = QueryClient::connect(&endpoint).unwrap();
    let deadline = Instant::now() + Duration::from_secs(600);
    let mut last_report = Instant::now();
    loop {
        let stats = client.stats().unwrap();
        if stats.frames_ingested + stats.frames_rejected >= total_frames {
            break;
        }
        if last_report.elapsed() > Duration::from_secs(5) {
            last_report = Instant::now();
            eprintln!(
                "  [{label}/{agents}] {}/{total_frames} frames, open={} total={} susp={} \
                 depth={:?} rej={} disc={}",
                stats.frames_ingested + stats.frames_rejected,
                stats.open_connections,
                stats.connections_total,
                stats.ingest_suspensions,
                stats.staging_depth,
                stats.frames_rejected,
                stats.ingest_disconnects,
            );
        }
        assert!(
            Instant::now() < deadline,
            "cell {label}/{agents} stalled at {}/{total_frames} frames",
            stats.frames_ingested + stats.frames_rejected,
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    if std::env::var_os("EVLOOP_DEBUG").is_some() {
        let stats = client.stats().unwrap();
        eprintln!(
            "  [{label}/{agents}] susp={} wakeups={} events={} bp_waits={}",
            stats.ingest_suspensions,
            stats.reactor_wakeups,
            stats.reactor_events,
            stats.backpressure_waits,
        );
    }
    client.sync().unwrap();
    let elapsed = start.elapsed();

    // Zero loss, zero duplication, bit-identical quantiles.
    assert_eq!(
        client.count(TENANT).unwrap(),
        total_frames * VALUES_PER_FRAME as u64,
        "{label}/{agents}: lost or duplicated values"
    );
    let decoded: Vec<AnyDDSketch> = pool
        .iter()
        .map(|b| AnyDDSketch::decode(b).unwrap())
        .collect();
    let mut reference = plane_config().build().unwrap();
    for (entry, &times) in multiplicity.iter().enumerate() {
        for _ in 0..times {
            reference.merge_from(&decoded[entry]).unwrap();
        }
    }
    let qs = [0.01, 0.5, 0.99, 0.999];
    let served = client.quantiles(TENANT, &qs).unwrap();
    let expected = reference.quantiles(&qs).unwrap();
    for (q, (got, want)) in qs.iter().zip(served.iter().zip(expected.iter())) {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{label}/{agents} q={q}: served {got} != union {want}"
        );
    }
    server.shutdown().unwrap();

    let payloads_per_sec = total_frames as f64 / elapsed.as_secs_f64();
    println!(
        "  {label:>8} x {agents:>3} agents: {total_frames} payloads in {:>6.2}s -> {:>10} (verified bit-identical)",
        elapsed.as_secs_f64(),
        human_rate(payloads_per_sec),
    );
    CellResult {
        io_model: label,
        agents,
        frames: total_frames,
        ns_per_payload: elapsed.as_nanos() as f64 / total_frames as f64,
        payloads_per_sec,
    }
}

fn run_evloop(test_mode: bool, frames_override: Option<u64>) {
    let agents_axis: &[usize] = if test_mode {
        &[8, 512]
    } else {
        &[8, 64, 256, 512]
    };
    let frame_budget = frames_override.unwrap_or(if test_mode { 1 << 14 } else { 1 << 17 });
    let pool = Arc::new(payload_pool());
    println!(
        "sketchd connection scaling: {{Threaded, Reactor}} x {agents_axis:?} agents, \
         {frame_budget} payloads per cell\n"
    );
    let mut cells = Vec::new();
    for &agents in agents_axis {
        for (io_model, label) in [
            (IoModel::Threaded, "threaded"),
            (IoModel::Reactor, "reactor"),
        ] {
            cells.push(run_cell(io_model, label, agents, frame_budget, &pool));
        }
    }

    let mut rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { ",\n    " } else { "" };
        rows.push_str(&format!(
            "{{\"id\": \"evloop/{}/agents-{}\", \"ns_per_iter\": {:.1}, \
             \"io_model\": \"{}\", \"agents\": {}, \"frames\": {}, \
             \"payloads_per_sec\": {:.0}}}{sep}",
            cell.io_model,
            cell.agents,
            cell.ns_per_payload,
            cell.io_model,
            cell.agents,
            cell.frames,
            cell.payloads_per_sec,
        ));
    }
    let out = format!(
        "{{\n  \"bench\": \"server_evloop\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n    {rows}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_server_evloop.json"
    );
    match std::fs::write(path, out) {
        Ok(()) => println!("\nmachine-readable results -> results/BENCH_server_evloop.json"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Values per frame in the query-matrix pool: denser payloads than the
/// soak's 16 so each pending payload carries a realistic bucket count —
/// the locked baseline pays that merge cost on the query path, the
/// cached plane in the workers' snapshot refreshes.
const QUERY_VALUES_PER_FRAME: usize = 128;

/// Like `payload_pool`, but `QUERY_VALUES_PER_FRAME` values per entry.
fn query_payload_pool() -> Vec<Vec<u8>> {
    (0..POOL)
        .map(|j| {
            let mut sketch = plane_config().build().unwrap();
            for k in 0..QUERY_VALUES_PER_FRAME {
                let v = 0.5 + ((j * QUERY_VALUES_PER_FRAME + k) * 37 % 911) as f64 * 0.5;
                sketch.add(v).unwrap();
            }
            sketch.encode()
        })
        .collect()
}

/// The raw query lines replayed against each cell after the drain —
/// one per cacheable family, answers compared byte-for-byte across
/// read planes.
const VERIFY_LINES: [&str; 5] = [
    "QUANTILE soak 0.25 0.5 0.9 0.99 0.999",
    "WQUANTILE soak 0.5 0.99",
    "COUNT soak",
    "WCOUNT soak",
    "SERIES soak m0 0.5",
];

/// One query-matrix cell: sustained ingest with a concurrent query
/// sampler under one `(io_model, read_plane)` pair.
struct QueryCell {
    io_model: &'static str,
    read_plane: &'static str,
    frames: u64,
    payloads_per_sec: f64,
    queries: u64,
    p50_ns: u64,
    p99_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
    snapshot_rebuilds: u64,
    /// Post-drain responses to `VERIFY_LINES`, each issued twice (the
    /// repeat exercises the answer cache on the cached plane).
    transcript: Vec<String>,
}

fn run_query_cell(
    io_model: IoModel,
    io_label: &'static str,
    read_plane: ReadPlane,
    rp_label: &'static str,
    frame_budget: u64,
    pool: &Arc<Vec<Vec<u8>>>,
) -> QueryCell {
    const QUERY_AGENTS: usize = 4;
    let per_agent = (frame_budget / QUERY_AGENTS as u64).max(1);
    let total_frames = per_agent * QUERY_AGENTS as u64;
    let server = Arc::new(
        ServerHandle::spawn(
            &Bind::Tcp("127.0.0.1:0".into()),
            ServerConfig {
                sketch: plane_config(),
                shards_per_tenant: 4,
                staging_bound: 256,
                // Throughput-oriented fold batching: workers amortize
                // folds over large pending runs. This is the regime the
                // read plane exists for — under the locked baseline
                // every QUANTILE drains each shard's pending backlog
                // under its lock, while the cached plane leaves folding
                // to the workers' snapshot refreshes.
                fold_threshold: 4096,
                window_secs: 10,
                io_model,
                read_plane,
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    let endpoint = server.endpoint().clone();

    // Query sampler: fleet-p99 service time at ~1 kHz throughout the
    // ingest phase. Sampled in-process (`ServerHandle::execute`) so the
    // clock covers exactly what the read plane controls — parse, lock
    // waits, folds, rank walk — and not loopback round-trips, which on
    // a loaded box are scheduler noise an order of magnitude above the
    // locked fold itself.
    let stop = Arc::new(AtomicBool::new(false));
    let query_thread = {
        let server = server.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut latencies_ns: Vec<u64> = Vec::new();
            let mut out = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                out.clear();
                let start = Instant::now();
                assert!(server.execute("QUANTILE soak 0.99", &mut out));
                latencies_ns.push(start.elapsed().as_nanos() as u64);
                std::thread::sleep(Duration::from_millis(1));
            }
            latencies_ns
        })
    };

    // Deterministic ingest (no corruption, no disconnects): both read
    // planes see the exact same multiset of frames, so their post-drain
    // answers must agree bit-for-bit.
    let start = Instant::now();
    let handles: Vec<_> = (0..QUERY_AGENTS)
        .map(|a| {
            let endpoint = endpoint.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut agent = AgentSender::connect(endpoint, TENANT).expect("agent connects");
                let mut sent = vec![0u64; POOL];
                for i in 0..per_agent {
                    let entry = ((a as u64 + i) % POOL as u64) as usize;
                    let metric = format!("m{}", i % 16);
                    agent
                        .send_encoded(&metric, (i % 360) * 10, &pool[entry])
                        .expect("send");
                    sent[entry] += 1;
                }
                agent.close().expect("clean close");
                sent
            })
        })
        .collect();
    let mut multiplicity = vec![0u64; POOL];
    for handle in handles {
        for (slot, n) in multiplicity.iter_mut().zip(handle.join().unwrap()) {
            *slot += n;
        }
    }

    let mut client = QueryClient::connect(&endpoint).unwrap();
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let stats = client.stats().unwrap();
        if stats.frames_ingested >= total_frames {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query cell {io_label}/{rp_label} stalled at {}/{total_frames} frames",
            stats.frames_ingested,
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    client.sync().unwrap();
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let mut latencies_ns = query_thread.join().unwrap();
    latencies_ns.sort_unstable();

    // In-cell verification: count exact, quantiles bit-identical to the
    // from-scratch union over everything sent.
    assert_eq!(
        client.count(TENANT).unwrap(),
        total_frames * QUERY_VALUES_PER_FRAME as u64,
        "{io_label}/{rp_label}: lost or duplicated values"
    );
    let decoded: Vec<AnyDDSketch> = pool
        .iter()
        .map(|b| AnyDDSketch::decode(b).unwrap())
        .collect();
    let mut reference = plane_config().build().unwrap();
    for (entry, &times) in multiplicity.iter().enumerate() {
        for _ in 0..times {
            reference.merge_from(&decoded[entry]).unwrap();
        }
    }
    let qs = [0.01, 0.5, 0.99, 0.999];
    let served = client.quantiles(TENANT, &qs).unwrap();
    let expected = reference.quantiles(&qs).unwrap();
    for (q, (got, want)) in qs.iter().zip(served.iter().zip(expected.iter())) {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{io_label}/{rp_label} q={q}: served {got} != union {want}"
        );
    }

    // Cross-plane transcript: every query family, twice (the repeat
    // must come from the answer cache on the cached plane and still be
    // byte-identical).
    let mut transcript = Vec::new();
    for _ in 0..2 {
        for line in VERIFY_LINES {
            transcript.push(client.command(line).expect("verify query"));
        }
    }
    let stats = client.stats().unwrap();
    server.shutdown().unwrap();

    let payloads_per_sec = total_frames as f64 / elapsed.as_secs_f64();
    let p50_ns = percentile(&latencies_ns, 0.50);
    let p99_ns = percentile(&latencies_ns, 0.99);
    println!(
        "  {io_label:>8} / {rp_label:<12} ingest {:>10}, {:>5} queries: p50 {:>8.1} µs, p99 {:>9.1} µs",
        human_rate(payloads_per_sec),
        latencies_ns.len(),
        p50_ns as f64 / 1e3,
        p99_ns as f64 / 1e3,
    );
    QueryCell {
        io_model: io_label,
        read_plane: rp_label,
        frames: total_frames,
        payloads_per_sec,
        queries: latencies_ns.len() as u64,
        p50_ns,
        p99_ns,
        cache_hits: stats.query_cache_hits,
        cache_misses: stats.query_cache_misses,
        snapshot_rebuilds: stats.snapshot_rebuilds,
        transcript,
    }
}

fn run_query_matrix(test_mode: bool, frames_override: Option<u64>) {
    let frame_budget = frames_override.unwrap_or(if test_mode { 1 << 14 } else { 1 << 18 });
    let pool = Arc::new(query_payload_pool());
    println!(
        "sketchd query-under-ingest: {{Threaded, Reactor}} x {{LockedFold, EpochCached}}, \
         {frame_budget} payloads per cell, fleet-p99 sampler at ~1 kHz\n"
    );
    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for (io_model, io_label) in [
        (IoModel::Threaded, "threaded"),
        (IoModel::Reactor, "reactor"),
    ] {
        let locked = run_query_cell(
            io_model,
            io_label,
            ReadPlane::LockedFold,
            "locked-fold",
            frame_budget,
            &pool,
        );
        let cached = run_query_cell(
            io_model,
            io_label,
            ReadPlane::EpochCached,
            "epoch-cached",
            frame_budget,
            &pool,
        );
        // Both cells absorbed the same multiset of frames, so a cached
        // read at the final epoch and a fresh under-lock fold of the
        // same data must render byte-identical answers, family by
        // family — including the answer-cache repeat.
        assert_eq!(
            locked.transcript, cached.transcript,
            "{io_label}: epoch-cached answers diverged from the locked fold"
        );
        let speedup = locked.p99_ns as f64 / cached.p99_ns.max(1) as f64;
        println!(
            "  {io_label:>8} p99 speedup: {:.1} µs -> {:.1} µs = {speedup:.1}x (answers verified byte-identical)\n",
            locked.p99_ns as f64 / 1e3,
            cached.p99_ns as f64 / 1e3,
        );
        if !test_mode {
            assert!(
                speedup >= 5.0,
                "{io_label}: epoch-cached p99 speedup {speedup:.1}x below the 5x bar"
            );
        }
        speedups.push((io_label, speedup));
        cells.push(locked);
        cells.push(cached);
    }

    let mut rows = String::new();
    for cell in &cells {
        rows.push_str(&format!(
            "{{\"id\": \"query/{}/{}\", \"ns_per_iter\": {}, \
             \"io_model\": \"{}\", \"read_plane\": \"{}\", \"frames\": {}, \
             \"payloads_per_sec\": {:.0}, \"queries\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \
             \"query_cache_hits\": {}, \"query_cache_misses\": {}, \
             \"snapshot_rebuilds\": {}}},\n    ",
            cell.io_model,
            cell.read_plane,
            cell.p99_ns,
            cell.io_model,
            cell.read_plane,
            cell.frames,
            cell.payloads_per_sec,
            cell.queries,
            cell.p50_ns,
            cell.p99_ns,
            cell.cache_hits,
            cell.cache_misses,
            cell.snapshot_rebuilds,
        ));
    }
    for (i, (io_label, speedup)) in speedups.iter().enumerate() {
        let sep = if i + 1 < speedups.len() {
            ",\n    "
        } else {
            ""
        };
        rows.push_str(&format!(
            "{{\"id\": \"query/{io_label}/p99-speedup\", \"ns_per_iter\": {speedup:.2}, \
             \"io_model\": \"{io_label}\", \"verified\": \"bit-identical\"}}{sep}"
        ));
    }
    let out = format!(
        "{{\n  \"bench\": \"server_query\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n    {rows}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_server_query.json"
    );
    match std::fs::write(path, out) {
        Ok(()) => println!("machine-readable results -> results/BENCH_server_query.json"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut test_mode = false;
    let mut evloop = false;
    let mut query = false;
    let mut frames_override: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => test_mode = true,
            "--evloop" => evloop = true,
            "--query" => query = true,
            "--query-smoke" => {
                query = true;
                test_mode = true;
            }
            "--frames" => {
                frames_override = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--frames takes a payload count"),
                );
            }
            _ => {}
        }
    }
    if query {
        run_query_matrix(test_mode, frames_override);
        return;
    }
    if evloop {
        run_evloop(test_mode, frames_override);
        return;
    }
    let total_frames: u64 = frames_override.unwrap_or(if test_mode { 20_000 } else { 1 << 20 });
    let per_agent = total_frames / AGENTS as u64;
    let total_frames = per_agent * AGENTS as u64;

    let server = ServerHandle::spawn(
        &Bind::Tcp("127.0.0.1:0".into()),
        ServerConfig {
            sketch: plane_config(),
            shards_per_tenant: 4,
            staging_bound: 256,
            fold_threshold: 32,
            window_secs: 10,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    println!(
        "sketchd soak: {total_frames} payloads x {VALUES_PER_FRAME} values, \
         {AGENTS} agents -> {endpoint}, ~1% corrupt frames, periodic disconnects\n"
    );

    // Concurrent query client: samples the fleet p99 throughout the
    // soak and records per-query latency.
    let stop = Arc::new(AtomicBool::new(false));
    let query_thread = {
        let endpoint = endpoint.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = QueryClient::connect(&endpoint).unwrap();
            let mut latencies_ns: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                match client.quantile(TENANT, 0.99) {
                    Ok(_) | Err(sketchd::ServerError::Protocol(_)) => {
                        latencies_ns.push(start.elapsed().as_nanos() as u64);
                    }
                    Err(e) => panic!("query plane failed mid-soak: {e}"),
                }
                // ~1k queries/s so the soak measures steady-state mixed
                // load, not a query-side DoS.
                std::thread::sleep(Duration::from_millis(1));
            }
            latencies_ns
        })
    };

    let pool = Arc::new(payload_pool());
    // Scale the disconnect cadence to the budget so even a short smoke
    // run exercises a few reconnects per agent.
    let disconnect_every = (per_agent / 4).clamp(1, 10_000);
    let soak_start = Instant::now();
    let agents: Vec<_> = (0..AGENTS)
        .map(|a| {
            let endpoint = endpoint.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut agent = AgentSender::connect(endpoint, TENANT).expect("agent connects");
                let mut sent = vec![0u64; POOL];
                let mut corrupt = 0u64;
                for i in 0..per_agent {
                    // ~1% corrupt payloads ride valid framing.
                    if (a as u64 + i).is_multiple_of(101) {
                        agent
                            .send_encoded("m0", 0, b"DDS2 corrupt payload bytes")
                            .expect("corrupt frame ships");
                        corrupt += 1;
                        continue;
                    }
                    // Mid-stream disconnects: reconnect + whole-frame
                    // resend must never tear or duplicate a frame.
                    if i > 0 && i % disconnect_every == 0 {
                        agent.drop_connection();
                    }
                    let entry = ((a as u64 + i) % POOL as u64) as usize;
                    let metric = format!("m{}", i % 16);
                    let ts = (i % 360) * 10;
                    agent.send_encoded(&metric, ts, &pool[entry]).expect("send");
                    sent[entry] += 1;
                }
                let reconnects = agent.reconnects();
                agent.close().expect("clean close");
                (sent, corrupt, reconnects)
            })
        })
        .collect();

    let mut multiplicity = vec![0u64; POOL];
    let mut total_corrupt = 0u64;
    let mut total_reconnects = 0u64;
    for handle in agents {
        let (sent, corrupt, reconnects) = handle.join().unwrap();
        for (slot, n) in multiplicity.iter_mut().zip(sent) {
            *slot += n;
        }
        total_corrupt += corrupt;
        total_reconnects += reconnects;
    }

    // The agents have flushed everything to the kernel; wait until the
    // server accounts for every frame, then stop the clock.
    let mut client = QueryClient::connect(&endpoint).unwrap();
    let deadline = Instant::now() + Duration::from_secs(600);
    let stats = loop {
        let stats = client.stats().unwrap();
        if stats.frames_ingested + stats.frames_rejected >= total_frames {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "soak stalled at {}/{} frames",
            stats.frames_ingested + stats.frames_rejected,
            total_frames
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    client.sync().unwrap();
    let elapsed = soak_start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let mut latencies_ns = query_thread.join().unwrap();
    latencies_ns.sort_unstable();

    // ---- Verification: zero loss, zero duplication, bit-identical ----
    let valid_frames: u64 = multiplicity.iter().sum();
    assert_eq!(valid_frames + total_corrupt, total_frames);
    assert_eq!(stats.frames_rejected, total_corrupt, "rejects != injected");
    assert_eq!(stats.frames_ingested, valid_frames, "absorbed != sent");
    assert!(total_reconnects >= AGENTS as u64, "disconnects never fired");
    assert_eq!(
        client.count(TENANT).unwrap(),
        valid_frames * VALUES_PER_FRAME as u64,
        "lost or duplicated values"
    );

    // From-scratch union: each pool entry merged as often as it was
    // sent. Merging is bucket-count addition, so this is the exact
    // expected fleet state.
    let mut reference = plane_config().build().unwrap();
    let decoded: Vec<AnyDDSketch> = pool
        .iter()
        .map(|b| AnyDDSketch::decode(b).unwrap())
        .collect();
    for (entry, &times) in multiplicity.iter().enumerate() {
        for _ in 0..times {
            reference.merge_from(&decoded[entry]).unwrap();
        }
    }
    let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    let served = client.quantiles(TENANT, &qs).unwrap();
    let expected = reference.quantiles(&qs).unwrap();
    for (q, (got, want)) in qs.iter().zip(served.iter().zip(expected.iter())) {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "q={q}: served {got} != union {want} — state diverged"
        );
    }
    server.shutdown().unwrap();

    // ---- Report ----
    let payloads_per_sec = total_frames as f64 / elapsed.as_secs_f64();
    let values_per_sec = (valid_frames * VALUES_PER_FRAME as u64) as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies_ns, 0.50);
    let p99 = percentile(&latencies_ns, 0.99);
    println!(
        "ingest: {total_frames} payloads ({total_corrupt} corrupt, {total_reconnects} reconnects) \
         in {:.2}s -> {} payloads, {} values",
        elapsed.as_secs_f64(),
        human_rate(payloads_per_sec),
        human_rate(values_per_sec),
    );
    println!(
        "query : {} samples, p50 {:.1} µs, p99 {:.1} µs",
        latencies_ns.len(),
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
    );
    println!("verify: quantiles bit-identical to the union, count exact — zero loss");

    if test_mode {
        println!("\nsmoke mode: skipping results/BENCH_server.json");
    } else {
        write_json(
            total_frames,
            total_corrupt,
            elapsed,
            payloads_per_sec,
            values_per_sec,
            latencies_ns.len() as u64,
            p50,
            p99,
        );
    }
}
