//! Ablation: insertion cost of the store variants (dense vs collapsing vs
//! sparse — paper Section 2.2's speed/space trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datasets::Dataset;
use ddsketch::{
    CollapsingLowestDenseStore, CollapsingSparseStore, DenseStore, IndexMapping,
    LogarithmicMapping, SparseStore, Store,
};

fn bench_stores(c: &mut Criterion) {
    let mapping = LogarithmicMapping::new(0.01).unwrap();
    let indices: Vec<i32> = Dataset::Pareto
        .generate(100_000, 61)
        .into_iter()
        .map(|v| mapping.index(v))
        .collect();

    let mut group = c.benchmark_group("store/add");
    group.throughput(Throughput::Elements(indices.len() as u64));

    fn run<S: Store<Count = u64>>(mut store: S, indices: &[i32]) -> u64 {
        for &i in indices {
            store.add(i);
        }
        store.total_count()
    }

    group.bench_function(BenchmarkId::from_parameter("dense"), |b| {
        b.iter(|| black_box(run(DenseStore::new(), black_box(&indices))));
    });
    group.bench_function(BenchmarkId::from_parameter("collapsing_dense_2048"), |b| {
        b.iter(|| {
            black_box(run(
                CollapsingLowestDenseStore::new(2048),
                black_box(&indices),
            ))
        });
    });
    group.bench_function(BenchmarkId::from_parameter("sparse"), |b| {
        b.iter(|| black_box(run(SparseStore::new(), black_box(&indices))));
    });
    group.bench_function(BenchmarkId::from_parameter("collapsing_sparse_2048"), |b| {
        b.iter(|| black_box(run(CollapsingSparseStore::new(2048), black_box(&indices))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_stores
}
criterion_main!(benches);
