//! Wire-plane benchmarks: encode / decode / view-walk / aggregate.
//!
//! The headline comparison is the aggregator economics of paper Figure 1:
//! 1000 agent payloads arrive, the fleet p50+p99 is wanted.
//!
//! * `aggregate-1000-payloads/decode-merge-query` — the materializing
//!   baseline: decode every payload into an `AnyDDSketch`, fold it with
//!   `merge_from`, query the accumulator.
//! * `aggregate-1000-payloads/aggregator` — the decode-free plane:
//!   `Aggregator::feed` validates each frame as a borrowed `SketchView`,
//!   folds every 32 frames with one bulk `add_bins` pass per store, and
//!   queries resident ∪ pending views in one mixed-source rank walk.
//!   Zero intermediate sketches; the acceptance bar is ≥ 2× over the
//!   baseline.
//!
//! Unlike the criterion-based benches, this target hand-rolls its timing
//! loop so it can emit machine-readable results: a run writes
//! `results/BENCH_codec.json` (id → ns/iter, plus derived throughput and
//! the aggregate speedup) for trend tracking across PRs. `--test` (what
//! `cargo bench --bench codec -- --test` passes) runs every body once as
//! a smoke test and skips measurement and the JSON.

use std::time::{Duration, Instant};

use datasets::Dataset;
use ddsketch::{AnyDDSketch, SketchConfig, SketchView, SourceQuantileScratch};
use pipeline::Aggregator;
use std::hint::black_box;

/// The paper's production configuration.
fn plane_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

/// Warm-up-estimated, median-of-3 ns/iteration — the same methodology as
/// the vendored criterion stand-in.
fn bench_ns(test_mode: bool, mut f: impl FnMut()) -> Option<f64> {
    if test_mode {
        f();
        return None;
    }
    let warmup = Duration::from_millis(300);
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < warmup {
        f();
        warm_iters += 1;
    }
    let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
    let batch_iters = ((400e6 / est_ns) as u64).max(1);
    let mut samples = [0.0f64; 3];
    for sample in &mut samples {
        let start = Instant::now();
        for _ in 0..batch_iters {
            f();
        }
        *sample = start.elapsed().as_nanos() as f64 / batch_iters as f64;
    }
    samples.sort_by(f64::total_cmp);
    Some(samples[1])
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

struct Record {
    id: &'static str,
    ns_per_iter: f64,
    extras: Vec<(&'static str, f64)>,
}

fn run(
    results: &mut Vec<Record>,
    test_mode: bool,
    filter: &Option<String>,
    id: &'static str,
    mut f: impl FnMut(),
) -> Option<f64> {
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return None;
        }
    }
    let ns = bench_ns(test_mode, &mut f);
    match ns {
        None => println!("{id:<50} ok (smoke)"),
        Some(ns) => {
            println!("{id:<50} time: {:>12}", human_time(ns));
            results.push(Record {
                id,
                ns_per_iter: ns,
                extras: Vec::new(),
            });
        }
    }
    ns
}

fn write_json(results: &[Record]) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_codec.json"
    );
    let mut out = String::from(
        "{\n  \"bench\": \"codec\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n",
    );
    for (k, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}",
            r.id, r.ns_per_iter
        ));
        for (key, value) in &r.extras {
            out.push_str(&format!(", \"{key}\": {value:.3}"));
        }
        out.push_str(if k + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("\nmachine-readable results -> results/BENCH_codec.json"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut test_mode = false;
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => test_mode = true,
            s if s.starts_with('-') => {}
            s => filter = Some(s.to_string()),
        }
    }
    let mut results: Vec<Record> = Vec::new();
    let qs = [0.5, 0.99];

    // One warm producer sketch: 100k Pareto latencies in the paper config.
    let mut producer = plane_config().build().unwrap();
    for chunk in Dataset::Pareto.generate(100_000, 61).chunks(1024) {
        producer.add_slice(chunk).unwrap();
    }
    let bytes = producer.encode();
    println!(
        "payload: {} bins, {} bytes ({:.2} bytes/bin)\n",
        producer.num_bins(),
        bytes.len(),
        bytes.len() as f64 / producer.num_bins() as f64
    );

    run(&mut results, test_mode, &filter, "codec/encode", || {
        black_box(black_box(&producer).encode());
    });
    run(&mut results, test_mode, &filter, "codec/decode", || {
        black_box(AnyDDSketch::decode(black_box(&bytes)).unwrap());
    });
    run(&mut results, test_mode, &filter, "codec/view-parse", || {
        black_box(SketchView::parse(black_box(&bytes)).unwrap());
    });
    // The decode-free read: parse + p50/p99 straight off the bytes,
    // against decoding and querying the materialized sketch.
    let mut scratch = SourceQuantileScratch::default();
    let mut out = Vec::new();
    run(
        &mut results,
        test_mode,
        &filter,
        "codec/view-walk-p50p99",
        || {
            let view = SketchView::parse(black_box(&bytes)).unwrap();
            view.quantiles_into(&qs, &mut scratch, &mut out).unwrap();
            black_box(out[0]);
        },
    );
    run(
        &mut results,
        test_mode,
        &filter,
        "codec/decode-then-query-p50p99",
        || {
            let decoded = AnyDDSketch::decode(black_box(&bytes)).unwrap();
            black_box(decoded.quantiles(&qs).unwrap());
        },
    );

    // The aggregator scenario: 1000 agent payloads of 256 values each.
    let frames: Vec<Vec<u8>> = {
        let values = Dataset::Pareto.generate(256_000, 62);
        values
            .chunks(256)
            .map(|chunk| {
                let mut sketch = plane_config().build().unwrap();
                sketch.add_slice(chunk).unwrap();
                sketch.encode()
            })
            .collect()
    };
    assert_eq!(frames.len(), 1000);

    // Both contenders are long-lived, as a real aggregator is: one
    // iteration = absorb all 1000 payloads + answer p50/p99. The baseline
    // pays a decode (payload vectors + two stores + a per-bin rebuild)
    // per payload; the aggregator stages each frame into recycled
    // buffers and folds with bulk `add_bins` passes.
    let mut resident = plane_config().build().unwrap();
    let baseline = run(
        &mut results,
        test_mode,
        &filter,
        "aggregate-1000-payloads/decode-merge-query",
        || {
            for frame in &frames {
                let decoded = AnyDDSketch::decode(frame).unwrap();
                resident.merge_from(&decoded).unwrap();
            }
            black_box(resident.quantiles(&qs).unwrap());
        },
    );
    let mut agg = Aggregator::with_config(plane_config(), 32).unwrap();
    let decode_free = run(
        &mut results,
        test_mode,
        &filter,
        "aggregate-1000-payloads/aggregator",
        || {
            for frame in &frames {
                agg.feed(frame).unwrap();
            }
            black_box(agg.quantiles(&qs).unwrap());
        },
    );
    if let (Some(baseline), Some(decode_free)) = (baseline, decode_free) {
        let speedup = baseline / decode_free;
        println!("\naggregate-1000-payloads speedup: {speedup:.2}x (acceptance bar: >= 2x)");
        if let Some(r) = results
            .iter_mut()
            .find(|r| r.id == "aggregate-1000-payloads/aggregator")
        {
            r.extras.push(("speedup_vs_decode_merge_query", speedup));
        }
    }

    // Sanity in both modes: the two aggregate paths answer identically.
    {
        let mut resident = plane_config().build().unwrap();
        let mut agg = Aggregator::with_config(plane_config(), 32).unwrap();
        for frame in &frames {
            resident
                .merge_from(&AnyDDSketch::decode(frame).unwrap())
                .unwrap();
            agg.feed(frame).unwrap();
        }
        assert_eq!(
            agg.quantiles(&qs).unwrap(),
            resident.quantiles(&qs).unwrap(),
            "decode-free aggregation drifted from the materializing baseline"
        );
    }

    if !test_mode && filter.is_none() {
        write_json(&results);
    }
}
