//! Criterion microbenchmarks for the sliding-window quantile plane.
//!
//! * `sliding_query/*` — p50+p99 over a fully-populated window vs slot
//!   count (60 / 300 / 3600 one-second slots): the `ring-walk` layout's
//!   query cost grows with the slot count, while the `suffix-agg`
//!   (two-stack) layout folds at most three sketches and must stay
//!   measurably flat (≤1.5× from 60 to 3600 slots — the PR's acceptance
//!   bar), plus the exponentially-decayed per-slot walk for comparison.
//! * `sliding_ingest/*` — batched ingest overhead of the sliding window
//!   (slot routing + rotation + two-stack upkeep) against a bare
//!   `ConcurrentSketch`, the no-window baseline, plus the weighted
//!   plane's `DecayedIngestWindow` (per-value decay-at-ingest).
//!
//! A full run writes `results/BENCH_sliding.json` (same schema as the
//! hand-rolled codec/ingest bench emitters); `--test` and filtered runs
//! skip the write.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

use datasets::Dataset;
use ddsketch::SketchConfig;
use pipeline::{ConcurrentSketch, DecayedIngestWindow, SlidingWindowSketch};

/// The paper's production configuration.
fn plane_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

/// A window with every slot populated: `per_slot` Pareto latencies per
/// one-second slot, driven through several full turns so rotations (and
/// two-stack flips) are all in steady state.
fn populated(slots: usize, per_slot: usize, folded: bool) -> SlidingWindowSketch {
    let mut window = if folded {
        SlidingWindowSketch::with_suffix_aggregates(plane_config(), 1, slots).unwrap()
    } else {
        SlidingWindowSketch::with_config(plane_config(), 1, slots).unwrap()
    };
    let turns = slots + slots / 2;
    let values = Dataset::Pareto.generate(per_slot * turns, 53);
    for (ts, chunk) in values.chunks(per_slot).enumerate() {
        window
            .record_slice(ts as u64, chunk)
            .expect("positive latencies");
    }
    window
}

fn bench_query(c: &mut Criterion) {
    let qs = [0.5, 0.99];
    let mut group = c.benchmark_group("sliding_query/p50+p99");
    for slots in [60usize, 300, 3600] {
        let per_slot = 64;
        let ring = populated(slots, per_slot, false);
        let folded = populated(slots, per_slot, true);
        let mut out = Vec::new();
        group.bench_function(BenchmarkId::new("ring-walk", slots), |b| {
            b.iter(|| {
                ring.quantiles_into(black_box(&qs), &mut out).unwrap();
                out[0]
            })
        });
        group.bench_function(BenchmarkId::new("suffix-agg", slots), |b| {
            b.iter(|| {
                folded.quantiles_into(black_box(&qs), &mut out).unwrap();
                out[0]
            })
        });
        group.bench_function(BenchmarkId::new("decayed-0.99", slots), |b| {
            b.iter(|| {
                ring.quantiles_decayed_into(black_box(&qs), 0.99, &mut out)
                    .unwrap();
                out[0]
            })
        });
    }
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("sliding_ingest/batch-64");
    let batch = Dataset::Pareto.generate(64, 54);
    // Baseline: the same batches into a bare (1-shard) concurrent sketch
    // — no slot routing, no rotation, no window upkeep.
    let baseline = ConcurrentSketch::with_config(plane_config(), 1).unwrap();
    group.bench_function("concurrent-sketch", |b| {
        b.iter(|| baseline.add_slice(black_box(&batch)))
    });
    for (name, folded) in [("ring-walk", false), ("suffix-agg", true)] {
        let mut window = populated(300, 64, folded);
        // Advance one slot per 8 batches: a realistic 512-values/second
        // feed with steady rotations (and amortized two-stack flips).
        let mut tick = 0u64;
        let mut ts = window.head().unwrap_or(0);
        group.bench_function(BenchmarkId::new(name, 300), |b| {
            b.iter(|| {
                tick += 1;
                if tick.is_multiple_of(8) {
                    ts += 1;
                }
                window.record_slice(ts, black_box(&batch))
            })
        });
    }
    // Ingest-time decay: one resident weighted sketch, a decay tick per
    // slot crossing — no ring at all, the memory/fidelity trade from the
    // other side.
    let mut decayed = DecayedIngestWindow::with_config(plane_config(), 1, 0.99).unwrap();
    let mut dtick = 0u64;
    let mut dts = 0u64;
    group.bench_function(BenchmarkId::new("decayed-ingest", "0.99"), |b| {
        b.iter(|| {
            dtick += 1;
            if dtick.is_multiple_of(8) {
                dts += 1;
            }
            for &v in black_box(&batch) {
                decayed.record(dts, v).unwrap();
            }
            decayed.weighted_count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_query, bench_ingest
}

fn main() {
    benches();
    criterion::write_bench_json(
        "sliding",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_sliding.json"
        ),
    );
}
