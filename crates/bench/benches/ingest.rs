//! Multi-threaded ingest benchmarks: the lock-free atomic plane vs locked
//! shards vs thread-local publishing.
//!
//! Scenario: `T` writer threads split a fixed pool of values and race to
//! ingest them into one shared [`pipeline::ConcurrentSketch`]. Three
//! contenders at each thread count:
//!
//! * `locked` — the pre-existing baseline: one sketch per shard behind a
//!   lock ([`ConcurrentSketch::with_config_locked`]).
//! * `atomic` — the lock-free plane: relaxed `fetch_add` into atomic dense
//!   stores, no lock or CAS loop on the hot path.
//! * `local-publish` — [`pipeline::LocalIngest`]: values accumulate in a
//!   private sequential sketch and publish bin-wise at flush boundaries.
//!
//! Every mode ingests the same values and is checked to produce the same
//! final count, so the timing comparison is apples-to-apples.
//!
//! Like the codec bench, this hand-rolls its timing (threaded iterations
//! are too coarse for the criterion stand-in) and emits machine-readable
//! results to `results/BENCH_ingest.json`. `--test` runs each body once
//! as a smoke test and skips measurement and the JSON.
//!
//! **Hardware caveat**: results depend heavily on core count. On a
//! single-core host the thread counts > 1 measure scheduling overhead
//! plus contention behaviour, not parallel speedup — the interesting
//! signal there is atomic-vs-locked at equal thread counts.

use std::time::Instant;

use datasets::Dataset;
use ddsketch::SketchConfig;
use pipeline::ConcurrentSketch;
use std::hint::black_box;

/// The paper's production configuration.
fn plane_config() -> SketchConfig {
    SketchConfig::dense_collapsing(0.01, 2048)
}

fn human_rate(mops: f64) -> String {
    format!("{mops:>8.2} Mops/s")
}

struct Record {
    id: String,
    ns_per_iter: f64,
    extras: Vec<(&'static str, f64)>,
}

fn write_json(results: &[Record], cores: usize) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_ingest.json"
    );
    let mut out = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"unit\": \"ns_per_op\",\n  \"host_cores\": {cores},\n  \"results\": [\n",
    );
    for (k, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_op\": {:.2}",
            r.id, r.ns_per_iter
        ));
        for (key, value) in &r.extras {
            out.push_str(&format!(", \"{key}\": {value:.3}"));
        }
        out.push_str(if k + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("\nmachine-readable results -> results/BENCH_ingest.json"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Locked,
    Atomic,
    LocalPublish,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Locked => "locked",
            Mode::Atomic => "atomic",
            Mode::LocalPublish => "local-publish",
        }
    }

    fn build(self, threads: usize) -> ConcurrentSketch {
        // Equal shard counts keep the comparison apples-to-apples.
        let shards = threads.min(16);
        match self {
            Mode::Locked => ConcurrentSketch::with_config_locked(plane_config(), shards).unwrap(),
            Mode::Atomic | Mode::LocalPublish => {
                ConcurrentSketch::with_config(plane_config(), shards).unwrap()
            }
        }
    }
}

/// One timed pass: `threads` writers split `values` and race into a fresh
/// sketch. Returns (elapsed ns per value, final count) — the count check
/// keeps every contender honest about ingesting everything.
fn ingest_pass(mode: Mode, threads: usize, values: &[f64]) -> (f64, u64) {
    let sketch = mode.build(threads);
    let chunk = values.len() / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let sketch = &sketch;
            let mine = &values[t * chunk..(t + 1) * chunk];
            scope.spawn(move || match mode {
                Mode::Locked | Mode::Atomic => {
                    for &v in mine {
                        sketch.add_hinted(t, v).unwrap();
                    }
                }
                Mode::LocalPublish => {
                    let mut local = sketch.local_ingest().unwrap();
                    for &v in mine {
                        local.add(v).unwrap();
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_nanos() as f64;
    let ingested = (chunk * threads) as u64;
    assert_eq!(sketch.count(), ingested, "{} lost values", mode.name());
    black_box(sketch.quantile(0.5).unwrap());
    (elapsed / ingested as f64, ingested)
}

fn main() {
    let mut test_mode = false;
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => test_mode = true,
            s if s.starts_with('-') => {}
            s => filter = Some(s.to_string()),
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total_ops = if test_mode { 64 * 64 } else { 1_000_000 };
    let values = Dataset::Pareto.generate(total_ops, 71);
    println!(
        "ingest: {total_ops} Pareto values per pass, host cores: {cores}\n\
         (thread counts above the core count measure contention, not parallel speedup)\n"
    );

    let mut results: Vec<Record> = Vec::new();
    let thread_counts = [1usize, 4, 16, 64];
    let modes = [Mode::Locked, Mode::Atomic, Mode::LocalPublish];
    // ns/op per (mode, threads), for the derived speedups.
    let mut grid = vec![vec![f64::NAN; thread_counts.len()]; modes.len()];

    for (mi, &mode) in modes.iter().enumerate() {
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let id = format!("ingest/{}/threads-{threads}", mode.name());
            if let Some(filter) = &filter {
                if !id.contains(filter.as_str()) {
                    continue;
                }
            }
            if test_mode {
                ingest_pass(mode, threads, &values);
                println!("{id:<40} ok (smoke)");
                continue;
            }
            // Median of 3 full passes; each pass re-spawns its threads,
            // which is part of what a real ingest fan-out pays.
            let mut samples = [0.0f64; 3];
            for sample in &mut samples {
                *sample = ingest_pass(mode, threads, &values).0;
            }
            samples.sort_by(f64::total_cmp);
            let ns_per_op = samples[1];
            let mops = 1e3 / ns_per_op;
            println!("{id:<40} {:>8.2} ns/op {}", ns_per_op, human_rate(mops));
            grid[mi][ti] = ns_per_op;
            results.push(Record {
                id,
                ns_per_iter: ns_per_op,
                extras: vec![("mops_per_sec", mops)],
            });
        }
    }

    if !test_mode && filter.is_none() {
        println!();
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let locked = grid[0][ti];
            for (mi, &mode) in modes.iter().enumerate().skip(1) {
                let mine = grid[mi][ti];
                if locked.is_finite() && mine.is_finite() {
                    let speedup = locked / mine;
                    println!(
                        "threads-{threads:<3} {:<14} vs locked: {speedup:.2}x",
                        mode.name()
                    );
                    if let Some(r) = results
                        .iter_mut()
                        .find(|r| r.id == format!("ingest/{}/threads-{threads}", mode.name()))
                    {
                        r.extras.push(("speedup_vs_locked", speedup));
                    }
                }
            }
        }
        // Self-scaling of the atomic plane (1 thread -> N threads). Only
        // meaningful with >= N cores; recorded regardless, honestly.
        let base = grid[1][0];
        for (ti, &threads) in thread_counts.iter().enumerate().skip(1) {
            let mine = grid[1][ti];
            if base.is_finite() && mine.is_finite() {
                let scaling = base / mine;
                println!("atomic threads-{threads:<3} vs threads-1: {scaling:.2}x");
                if let Some(r) = results
                    .iter_mut()
                    .find(|r| r.id == format!("ingest/atomic/threads-{threads}"))
                {
                    r.extras.push(("scaling_vs_1_thread", scaling));
                }
            }
        }
        write_json(&results, cores);
    }
}
