//! Ablation: index-computation cost of the four DDSketch mappings
//! (the design choice behind "DDSketch (fast)", paper Section 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datasets::Dataset;
use ddsketch::{
    CubicInterpolatedMapping, IndexMapping, LinearInterpolatedMapping, LogarithmicMapping,
    QuadraticInterpolatedMapping,
};

fn bench_mappings(c: &mut Criterion) {
    let values = Dataset::Pareto.generate(100_000, 51);
    let mut group = c.benchmark_group("mapping/index");
    group.throughput(Throughput::Elements(values.len() as u64));

    let log = LogarithmicMapping::new(0.01).unwrap();
    let lin = LinearInterpolatedMapping::new(0.01).unwrap();
    let quad = QuadraticInterpolatedMapping::new(0.01).unwrap();
    let cub = CubicInterpolatedMapping::new(0.01).unwrap();

    fn run<M: IndexMapping>(m: &M, values: &[f64]) -> i64 {
        let mut acc = 0i64;
        for &v in values {
            acc = acc.wrapping_add(i64::from(m.index(v)));
        }
        acc
    }

    group.bench_function(BenchmarkId::from_parameter("logarithmic"), |b| {
        b.iter(|| black_box(run(&log, black_box(&values))));
    });
    group.bench_function(BenchmarkId::from_parameter("linear"), |b| {
        b.iter(|| black_box(run(&lin, black_box(&values))));
    });
    group.bench_function(BenchmarkId::from_parameter("quadratic"), |b| {
        b.iter(|| black_box(run(&quad, black_box(&values))));
    });
    group.bench_function(BenchmarkId::from_parameter("cubic"), |b| {
        b.iter(|| black_box(run(&cub, black_box(&values))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_mappings
}
criterion_main!(benches);
