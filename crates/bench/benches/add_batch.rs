//! Batched vs scalar ingestion: the microbenchmark behind the batched
//! fast path (`DDSketch::add_slice` → `IndexMapping::index_batch` →
//! `Store::add_indices`). For each preset, ingest the same value stream
//! via per-value `add` and via `add_slice` in batches of 1024, and report
//! per-element throughput plus an explicit speedup summary.
//!
//! `cargo bench --bench add_batch` for numbers;
//! `cargo bench --bench add_batch -- --test` for a smoke run. A full
//! run also writes `results/BENCH_add_batch.json` (the workspace's
//! machine-readable bench schema); `--test` and filtered runs skip it.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datasets::{Distribution, LogNormal, Pareto};
use ddsketch::presets;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BATCH: usize = 1024;
const N: usize = 1 << 17; // 128 Ki values per iteration

/// Heavy-tail latency stream (seconds) — the paper's target workload:
/// strictly positive, so batches take `add_slice`'s no-copy fast path.
fn latencies() -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(0xBA7C);
    let body = LogNormal::with_median(0.004, 0.6);
    let tail = Pareto::new(1.3, 0.02);
    (0..N)
        .map(|i| {
            if i % 97 < 90 {
                body.sample(&mut rng).max(1e-9)
            } else {
                tail.sample(&mut rng).max(1e-9)
            }
        })
        .collect()
}

/// The same stream with negatives and zeros sprinkled in, forcing every
/// batch through the classify-and-copy slow path.
fn mixed() -> Vec<f64> {
    let mut values = latencies();
    for (i, v) in values.iter_mut().enumerate() {
        match i % 97 {
            0 => *v = 0.0,
            k if k < 5 => *v = -*v,
            _ => {}
        }
    }
    values
}

/// Run one scalar-vs-batch pair under criterion for a preset constructor.
fn bench_preset<S>(
    c: &mut Criterion,
    name: &str,
    values: &[f64],
    mut fresh: impl FnMut() -> S,
    mut add: impl FnMut(&mut S, f64),
    mut add_slice: impl FnMut(&mut S, &[f64]),
    count: impl Fn(&S) -> u64,
) {
    let mut group = c.benchmark_group(format!("add_batch/{name}"));
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("scalar"), |b| {
        b.iter(|| {
            let mut sketch = fresh();
            for &v in black_box(values) {
                add(&mut sketch, v);
            }
            black_box(count(&sketch))
        });
    });
    group.bench_function(BenchmarkId::from_parameter(format!("batch{BATCH}")), |b| {
        b.iter(|| {
            let mut sketch = fresh();
            for chunk in black_box(values).chunks(BATCH) {
                add_slice(&mut sketch, chunk);
            }
            black_box(count(&sketch))
        });
    });
    group.finish();
}

fn bench_add_batch(c: &mut Criterion) {
    let latencies = latencies();
    bench_preset(
        c,
        "bounded",
        &latencies,
        || presets::logarithmic_collapsing(0.01, 2048).expect("valid params"),
        |s, v| s.add(v).expect("in range"),
        |s, chunk| s.add_slice(chunk).expect("in range"),
        |s| s.count(),
    );
    bench_preset(
        c,
        "fast",
        &latencies,
        || presets::fast(0.01, 2048).expect("valid params"),
        |s, v| s.add(v).expect("in range"),
        |s, chunk| s.add_slice(chunk).expect("in range"),
        |s| s.count(),
    );
    bench_preset(
        c,
        "unbounded",
        &latencies,
        || presets::unbounded(0.01).expect("valid params"),
        |s, v| s.add(v).expect("in range"),
        |s, chunk| s.add_slice(chunk).expect("in range"),
        |s| s.count(),
    );
    bench_preset(
        c,
        "sparse",
        &latencies,
        || presets::sparse(0.01).expect("valid params"),
        |s, v| s.add(v).expect("in range"),
        |s, chunk| s.add_slice(chunk).expect("in range"),
        |s| s.count(),
    );
    // Mixed-sign stream: exercises the classify-and-copy slow path.
    let mixed = mixed();
    bench_preset(
        c,
        "bounded-mixed",
        &mixed,
        || presets::logarithmic_collapsing(0.01, 2048).expect("valid params"),
        |s, v| s.add(v).expect("in range"),
        |s, chunk| s.add_slice(chunk).expect("in range"),
        |s| s.count(),
    );
}

/// Criterion-independent speedup summary: times both paths directly and
/// prints scalar/batch ratios, so the ≥2× target for the dense presets is
/// visible in one place. Skipped under `-- --test`.
fn speedup_summary(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    use std::time::Instant;

    fn time_ns(mut f: impl FnMut()) -> f64 {
        // One warm-up, then best of 5 to damp scheduler noise.
        f();
        (0..5)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min)
    }

    let values = latencies();
    println!("\nspeedup summary (batch size {BATCH}, {N} positive latency values):");
    macro_rules! summarize {
        ($name:literal, $fresh:expr) => {{
            let scalar = time_ns(|| {
                let mut s = $fresh;
                for &v in &values {
                    s.add(v).expect("in range");
                }
                black_box(s.count());
            });
            let batch = time_ns(|| {
                let mut s = $fresh;
                for chunk in values.chunks(BATCH) {
                    s.add_slice(chunk).expect("in range");
                }
                black_box(s.count());
            });
            println!(
                "  {:<10} scalar {:>7.2} ns/val   batch {:>7.2} ns/val   speedup {:.2}x",
                $name,
                scalar / N as f64,
                batch / N as f64,
                scalar / batch
            );
        }};
    }
    summarize!(
        "bounded",
        presets::logarithmic_collapsing(0.01, 2048).expect("valid")
    );
    summarize!("fast", presets::fast(0.01, 2048).expect("valid"));
    summarize!("unbounded", presets::unbounded(0.01).expect("valid"));
    summarize!("sparse", presets::sparse(0.01).expect("valid"));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_add_batch, speedup_summary
}

fn main() {
    benches();
    criterion::write_bench_json(
        "add_batch",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_add_batch.json"
        ),
    );
}
