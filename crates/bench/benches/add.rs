//! Criterion microbenchmark behind Figure 8: per-value insertion cost for
//! every sketch on every data set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench_suite::{Contender, ContenderKind};
use datasets::Dataset;

fn bench_add(c: &mut Criterion) {
    let n = 100_000usize;
    for ds in Dataset::all() {
        let values = ds.generate(n, 21);
        let mut group = c.benchmark_group(format!("add/{}", ds.name()));
        group.throughput(Throughput::Elements(n as u64));
        for kind in ContenderKind::all() {
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
                b.iter(|| {
                    let mut sketch = Contender::new(kind, ds).expect("valid params");
                    sketch.add_all(black_box(&values));
                    black_box(sketch.count())
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_add
}
criterion_main!(benches);
