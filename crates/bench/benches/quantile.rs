//! Quantile-query cost per sketch (not a paper figure, but the obvious
//! third axis next to add and merge costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench_suite::{Contender, ContenderKind};
use datasets::Dataset;

fn bench_quantile(c: &mut Criterion) {
    let n = 1_000_000usize;
    let ds = Dataset::Pareto;
    let values = ds.generate(n, 41);
    let qs = [0.5, 0.95, 0.99];
    let mut group = c.benchmark_group("quantile/pareto");
    for kind in ContenderKind::all() {
        let mut sketch = Contender::new(kind, ds).expect("valid params");
        sketch.add_all(&values);
        sketch.seal();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| black_box(sketch.quantiles(black_box(&qs)).expect("non-empty")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short, low-variance runs: the full suite covers 5 sketches × 3 data
    // sets × several operations; default 8s/benchmark would take ~20 min.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_quantile
}
criterion_main!(benches);
