//! Continuously sliding quantile windows over the k-way merge plane.
//!
//! The paper's opening workload is "the p99 over the last five minutes":
//! [`crate::TimeSeriesStore`] answers fixed cells and all-time rollups,
//! but the monitoring question slides. [`SlidingWindowSketch`] keeps a
//! ring of per-slot [`AnyDDSketch`]es (e.g. 300 × 1 s for a five-minute
//! window), advances and evicts slots on **ingest timestamps** (no wall
//! clock — deterministic and replayable), and answers quantiles over the
//! live window with one borrowed-shard
//! [`AnyDDSketch::merged_quantiles_into`] walk: no materialized merge, no
//! per-query heap allocation on the dense store families (held to zero by
//! the workspace's counting-allocator test).
//!
//! Three read strategies share the ring:
//!
//! * **Ring walk** (default): one k-way walk over all live slots —
//!   query cost grows with the slot count, ingest is one slot `add`.
//! * **Suffix aggregates** ([`SlidingWindowSketch::with_suffix_aggregates`]):
//!   the classic two-stack sliding-window-aggregation layout. Sealed
//!   slots fold into a running *back* aggregate; when the precomputed
//!   *front* suffix stack drains (every ≈`num_slots` rotations) it is
//!   rebuilt from the ring via [`AnyDDSketch::merge_many`] — amortized
//!   O(1) merges per rotation. A steady-state query folds at most
//!   **three** sketches (front top ∪ back ∪ live head slot) regardless of
//!   slot count, which is what makes 3600-slot windows as cheap to read
//!   as 60-slot ones.
//! * **Exponential decay** ([`SlidingWindowSketch::quantiles_decayed`]):
//!   per-slot weights `decay^age` applied *at query time* through the
//!   weighted rank walk — a "recent-biased" p99 with nothing copied,
//!   rescaled, or re-bucketed.
//!
//! For multi-threaded producers, [`ConcurrentSlidingWindow`] shards whole
//! sliding windows behind per-shard locks (each writer advances its own
//! ring on its own timestamps — no cross-shard roll coordination, no
//! attribution skew) and reads merge every shard's live slots in one
//! walk, exactly like [`crate::ConcurrentSketch`] reads its shards.

use std::cell::RefCell;

use ddsketch::{
    AnyDDSketch, AnyWeightedDDSketch, MergedQuantileScratch, SketchConfig, SketchError,
};
use parking_lot::Mutex;

use crate::concurrent::thread_shard;

/// Marker for a ring cell that holds no slot yet.
const NO_SLOT: u64 = u64::MAX;

/// Ring position of the slot starting at `start`.
#[inline]
fn ring_index(start: u64, slot_secs: u64, num_slots: usize) -> usize {
    ((start / slot_secs) % num_slots as u64) as usize
}

/// The two-stack (suffix-aggregate) state: `aggs[i]` holds the union of
/// the front-region slots `[front_lo + i·w, front_hi]`, `back` holds the
/// union of every sealed slot from `back_lo` to the newest sealed slot.
#[derive(Debug)]
struct FoldedState {
    aggs: Vec<AnyDDSketch>,
    front_lo: u64,
    front_len: usize,
    back: AnyDDSketch,
    back_lo: u64,
}

/// A sliding-window quantile sketch: the last `num_slots × slot_secs`
/// seconds of a timestamped stream, one [`AnyDDSketch`] per slot.
///
/// Time is driven purely by ingest timestamps: recording into a newer
/// slot advances the window and evicts (clears, retaining allocations)
/// the slots that fall out of it; recording into an already-evicted slot
/// fails with [`SketchError::StaleTimestamp`]. Out-of-order arrivals
/// *within* the live window are accepted. Note the timestamp advances the
/// window even when the value itself is rejected — the clock is data.
#[derive(Debug)]
pub struct SlidingWindowSketch {
    config: SketchConfig,
    slot_secs: u64,
    ring: Vec<AnyDDSketch>,
    /// `starts[i]`: slot start held by `ring[i]`, or [`NO_SLOT`]. Every
    /// held start lies inside the live window (rotation reclaims exactly
    /// the expiring slot's cell).
    starts: Vec<u64>,
    /// Start of the newest slot ingested so far.
    head: Option<u64>,
    folded: Option<FoldedState>,
    /// Reusable read-path buffers (interior mutability so queries stay
    /// `&self`; a borrow is held only for the duration of one walk).
    scratch: RefCell<MergedQuantileScratch>,
}

impl SlidingWindowSketch {
    /// A ring-walk window: `num_slots` slots of `slot_secs` seconds each,
    /// every slot an empty sketch of `config`.
    pub fn with_config(
        config: SketchConfig,
        slot_secs: u64,
        num_slots: usize,
    ) -> Result<Self, SketchError> {
        Self::build(config, slot_secs, num_slots, false)
    }

    /// A window with the two-stack suffix-aggregate read path: steady-state
    /// queries fold at most three sketches regardless of `num_slots`, in
    /// exchange for roughly doubled sketch memory (the suffix stack) and
    /// one amortized extra merge per slot rotation.
    pub fn with_suffix_aggregates(
        config: SketchConfig,
        slot_secs: u64,
        num_slots: usize,
    ) -> Result<Self, SketchError> {
        Self::build(config, slot_secs, num_slots, true)
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(
        alpha: f64,
        max_bins: usize,
        slot_secs: u64,
        num_slots: usize,
    ) -> Result<Self, SketchError> {
        Self::with_config(
            SketchConfig::dense_collapsing(alpha, max_bins),
            slot_secs,
            num_slots,
        )
    }

    fn build(
        config: SketchConfig,
        slot_secs: u64,
        num_slots: usize,
        folded: bool,
    ) -> Result<Self, SketchError> {
        if slot_secs == 0 {
            return Err(SketchError::InvalidConfig(
                "slot_secs must be positive".into(),
            ));
        }
        if num_slots == 0 {
            return Err(SketchError::InvalidConfig(
                "num_slots must be positive".into(),
            ));
        }
        config.validate()?;
        let ring = (0..num_slots)
            .map(|_| config.build())
            .collect::<Result<Vec<_>, _>>()?;
        let folded = if folded {
            Some(FoldedState {
                aggs: (0..num_slots.saturating_sub(1))
                    .map(|_| config.build())
                    .collect::<Result<Vec<_>, _>>()?,
                front_lo: 0,
                front_len: 0,
                back: config.build()?,
                back_lo: 0,
            })
        } else {
            None
        };
        Ok(Self {
            config,
            slot_secs,
            ring,
            starts: vec![NO_SLOT; num_slots],
            head: None,
            folded,
            scratch: RefCell::new(MergedQuantileScratch::default()),
        })
    }

    /// The sketch configuration every slot uses.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Slot width in seconds.
    pub fn slot_secs(&self) -> u64 {
        self.slot_secs
    }

    /// Number of slots in the ring.
    pub fn num_slots(&self) -> usize {
        self.ring.len()
    }

    /// Total window span in seconds.
    pub fn window_secs(&self) -> u64 {
        self.slot_secs * self.ring.len() as u64
    }

    /// Whether this window uses the suffix-aggregate read path.
    pub fn has_suffix_aggregates(&self) -> bool {
        self.folded.is_some()
    }

    /// Start of the newest slot ingested so far, if any.
    pub fn head(&self) -> Option<u64> {
        self.head
    }

    /// Start of the oldest slot the window still covers, if any.
    pub fn window_start(&self) -> Option<u64> {
        self.head.map(|h| self.window_lo(h))
    }

    /// Align a timestamp down to its slot start.
    pub fn slot_of(&self, ts_secs: u64) -> u64 {
        ts_secs - ts_secs % self.slot_secs
    }

    fn window_lo(&self, head: u64) -> u64 {
        head.saturating_sub((self.ring.len() as u64 - 1) * self.slot_secs)
    }

    /// Total observation count across the live window.
    pub fn count(&self) -> u64 {
        self.live_slots().map(|s| s.count()).sum()
    }

    /// Whether the live window holds no data.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Every live slot's sketch (including empty ones), unordered.
    fn live_slots(&self) -> impl Iterator<Item = &AnyDDSketch> + Clone {
        self.ring
            .iter()
            .zip(&self.starts)
            .filter_map(|(sketch, &start)| (start != NO_SLOT).then_some(sketch))
    }

    /// Live `(slot_start, sketch)` pairs whose slot starts at or after
    /// `cutoff` — the multi-shard read path's filter: a stale shard must
    /// contribute only slots inside the *global* window.
    pub fn live_slots_from(&self, cutoff: u64) -> impl Iterator<Item = &AnyDDSketch> + Clone + '_ {
        self.ring
            .iter()
            .zip(&self.starts)
            .filter_map(move |(sketch, &start)| {
                (start != NO_SLOT && start >= cutoff).then_some(sketch)
            })
    }

    /// Advance the window so it ends at the slot containing `ts_secs`,
    /// sealing and evicting slots as needed. A no-op for timestamps at or
    /// behind the current head; useful on its own to tick an idle stream
    /// forward so old slots age out without new data.
    pub fn advance_to(&mut self, ts_secs: u64) {
        let new_head = self.slot_of(ts_secs);
        let w = self.slot_secs;
        let n = self.ring.len();
        let Some(head) = self.head else {
            let idx = ring_index(new_head, w, n);
            self.starts[idx] = new_head;
            self.head = Some(new_head);
            if let Some(folded) = &mut self.folded {
                folded.back_lo = new_head;
                folded.front_len = 0;
            }
            return;
        };
        if new_head <= head {
            return;
        }
        if (new_head - head) / w >= n as u64 {
            // The jump clears the whole window: reset rather than rotate
            // slot by slot.
            for (sketch, start) in self.ring.iter_mut().zip(&mut self.starts) {
                sketch.clear();
                *start = NO_SLOT;
            }
            let idx = ring_index(new_head, w, n);
            self.starts[idx] = new_head;
            self.head = Some(new_head);
            if let Some(folded) = &mut self.folded {
                for agg in &mut folded.aggs {
                    agg.clear();
                }
                folded.front_len = 0;
                folded.back.clear();
                folded.back_lo = new_head;
            }
            return;
        }
        let mut h = head;
        while h < new_head {
            // Seal the outgoing head slot into the back aggregate.
            if let Some(folded) = &mut self.folded {
                let idx = ring_index(h, w, n);
                if !self.ring[idx].is_empty() {
                    folded
                        .back
                        .merge_from(&self.ring[idx])
                        .expect("slots share the window's config");
                }
            }
            h += w;
            // Reclaim the expiring oldest slot's cell for the new head.
            let idx = ring_index(h, w, n);
            self.ring[idx].clear();
            self.starts[idx] = h;
            // Flip the two stacks once the precomputed front is spent.
            let window_lo = self.window_lo(h);
            let needs_flip = self
                .folded
                .as_ref()
                .is_some_and(|folded| window_lo >= folded.back_lo);
            if needs_flip {
                self.rebuild_front(h, window_lo);
            }
        }
        self.head = Some(h);
    }

    /// Rebuild the suffix-aggregate stack over the sealed slots
    /// `[window_lo, head − w]` and restart the back aggregate — the
    /// two-stack "flip", one k-way [`AnyDDSketch::merge_many`] per suffix.
    fn rebuild_front(&mut self, head: u64, window_lo: u64) {
        let w = self.slot_secs;
        let n = self.ring.len();
        let folded = self.folded.as_mut().expect("flip only in folded mode");
        let front_len = if head >= w && window_lo <= head - w {
            ((head - w - window_lo) / w + 1) as usize
        } else {
            0
        };
        debug_assert!(front_len <= folded.aggs.len());
        for i in (0..front_len).rev() {
            let (left, right) = folded.aggs.split_at_mut(i + 1);
            let agg = &mut left[i];
            agg.clear();
            let slot = &self.ring[ring_index(window_lo + i as u64 * w, w, n)];
            let mut parts: [&AnyDDSketch; 2] = [slot; 2];
            let mut k = 0;
            if i + 1 < front_len {
                parts[k] = &right[0];
                k += 1;
            }
            if !slot.is_empty() {
                parts[k] = slot;
                k += 1;
            }
            agg.merge_many(&parts[..k])
                .expect("slots share the window's config");
        }
        folded.front_lo = window_lo;
        folded.front_len = front_len;
        folded.back.clear();
        folded.back_lo = head;
    }

    /// Advance to `ts_secs` and hand back the target slot index, or
    /// reject a timestamp whose slot already fell out of the window.
    fn slot_index_for(&mut self, ts_secs: u64) -> Result<usize, SketchError> {
        let start = self.slot_of(ts_secs);
        if let Some(head) = self.head {
            // (A start beyond the head advances the window instead.)
            if start < self.window_lo(head) {
                return Err(SketchError::StaleTimestamp {
                    ts_secs,
                    window_start: self.window_lo(head),
                });
            }
        }
        self.advance_to(ts_secs);
        let idx = ring_index(start, self.slot_secs, self.ring.len());
        if self.starts[idx] != start {
            // An in-window slot *behind* the first (or post-reset) head
            // that no rotation has assigned yet: claim it. Its cell is
            // necessarily empty — nothing lands in a cell without
            // assigning it, in-window starts map to distinct cells, and
            // rotation/reset clear every cell they retire.
            debug_assert!(self.starts[idx] == NO_SLOT && self.ring[idx].is_empty());
            self.starts[idx] = start;
        }
        Ok(idx)
    }

    /// Mirror a successful slot mutation into the aggregates that already
    /// cover that (sealed) slot, so two-stack reads stay exact under
    /// out-of-order arrivals within the window.
    fn apply_to_aggregates(
        &mut self,
        start: u64,
        mut op: impl FnMut(&mut AnyDDSketch) -> Result<(), SketchError>,
    ) {
        let head = self.head.expect("aggregates imply an ingested head");
        let Some(folded) = &mut self.folded else {
            return;
        };
        if start == head {
            // The live head slot is not aggregated yet.
        } else if start >= folded.back_lo {
            op(&mut folded.back).expect("aggregate shares the slot's config");
        } else if folded.front_len > 0 {
            // A front-region late arrival: it belongs to every suffix
            // aggregate from the stack base up to its own slot. (With a
            // live front, a sealed slot below back_lo is always at or
            // above front_lo — the stack was rebuilt at the window edge.)
            debug_assert!(start >= folded.front_lo);
            let last = ((start - folded.front_lo) / self.slot_secs) as usize;
            let last = last.min(folded.front_len - 1);
            for agg in &mut folded.aggs[..=last] {
                op(agg).expect("aggregate shares the slot's config");
            }
        } else {
            // A pre-head slot claimed before any flip has built a front:
            // fold it into the back aggregate and widen back's coverage
            // down to it (the cells in between are empty, so the
            // contiguous-coverage invariant holds).
            folded.back_lo = start;
            op(&mut folded.back).expect("aggregate shares the slot's config");
        }
    }

    /// Record one observation at `ts_secs`.
    pub fn record(&mut self, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        let idx = self.slot_index_for(ts_secs)?;
        self.ring[idx].add(value)?;
        self.apply_to_aggregates(self.starts[idx], |s| s.add(value));
        Ok(())
    }

    /// Record a batch sharing one timestamp — one slot resolution and one
    /// bulk ingestion. All-or-nothing like
    /// [`ddsketch::DDSketch::add_slice`]: an unsupported value fails the
    /// whole batch with no slot or aggregate touched.
    pub fn record_slice(&mut self, ts_secs: u64, values: &[f64]) -> Result<(), SketchError> {
        let idx = self.slot_index_for(ts_secs)?;
        self.ring[idx].add_slice(values)?;
        self.apply_to_aggregates(self.starts[idx], |s| s.add_slice(values));
        Ok(())
    }

    /// Absorb an externally-built sketch into the slot covering
    /// `ts_secs` — the agent-ships-sketches path of the paper's Figure 1,
    /// windowed. Same compatibility rules as [`AnyDDSketch::merge_from`].
    pub fn absorb(&mut self, ts_secs: u64, sketch: &AnyDDSketch) -> Result<(), SketchError> {
        let idx = self.slot_index_for(ts_secs)?;
        self.ring[idx].merge_from(sketch)?;
        self.apply_to_aggregates(self.starts[idx], |s| s.merge_from(sketch));
        Ok(())
    }

    /// Estimate several quantiles over the live window, writing into a
    /// caller-owned buffer. One borrowed-shard k-way walk — no merged
    /// sketch is ever materialized, and with `out` reused across calls
    /// the dense store families perform **zero** heap allocations at
    /// steady state (counting-allocator-tested). Output order matches
    /// `qs`; an empty window fails with [`SketchError::Empty`] (unless
    /// `qs` is empty).
    pub fn quantiles_into(&self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        let scratch = &mut *self.scratch.borrow_mut();
        if let (Some(folded), Some(head)) = (&self.folded, self.head) {
            // Two-stack read: front suffix ∪ back ∪ live head slot.
            let mut parts: [&AnyDDSketch; 3] = [&folded.back; 3];
            let mut k = 0;
            let window_lo = self.window_lo(head);
            if folded.front_len > 0 && window_lo >= folded.front_lo {
                let top = ((window_lo - folded.front_lo) / self.slot_secs) as usize;
                if top < folded.front_len {
                    parts[k] = &folded.aggs[top];
                    k += 1;
                }
            }
            if !folded.back.is_empty() {
                parts[k] = &folded.back;
                k += 1;
            }
            let head_slot = &self.ring[ring_index(head, self.slot_secs, self.ring.len())];
            if !head_slot.is_empty() {
                parts[k] = head_slot;
                k += 1;
            }
            AnyDDSketch::merged_quantiles_into(parts[..k].iter().copied(), qs, scratch, out)
        } else {
            AnyDDSketch::merged_quantiles_into(self.live_slots(), qs, scratch, out)
        }
    }

    /// Estimate several quantiles over the live window; see
    /// [`Self::quantiles_into`] for the allocation contract.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        self.quantiles_into(qs, &mut out)?;
        Ok(out)
    }

    /// Convenience: a single quantile via [`Self::quantiles_into`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }

    /// Recent-biased quantiles: slot `a` slots behind the head weighs
    /// `decay^a` in the rank walk (`decay ∈ (0, 1]`; `1.0` reproduces
    /// [`Self::quantiles`]' semantics). Weights are applied at query time
    /// through [`AnyDDSketch::weighted_merged_quantiles_into`] — nothing
    /// is copied or rescaled. Always a per-slot walk (the suffix
    /// aggregates cannot serve it: every slot carries its own weight).
    pub fn quantiles_decayed_into(
        &self,
        qs: &[f64],
        decay: f64,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
            return Err(SketchError::InvalidConfig(format!(
                "decay must be in (0, 1], got {decay}"
            )));
        }
        let head = self.head.unwrap_or(0);
        let w = self.slot_secs;
        AnyDDSketch::weighted_merged_quantiles_into(
            self.ring
                .iter()
                .zip(&self.starts)
                .filter(|&(_, &start)| start != NO_SLOT)
                .map(move |(sketch, &start)| (sketch, decay.powi(((head - start) / w) as i32))),
            qs,
            out,
        )
    }

    /// Recent-biased quantiles; see [`Self::quantiles_decayed_into`].
    pub fn quantiles_decayed(&self, qs: &[f64], decay: f64) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        self.quantiles_decayed_into(qs, decay, &mut out)?;
        Ok(out)
    }

    /// Reset to an empty window, retaining allocations and configuration.
    pub fn clear(&mut self) {
        for (sketch, start) in self.ring.iter_mut().zip(&mut self.starts) {
            sketch.clear();
            *start = NO_SLOT;
        }
        self.head = None;
        if let Some(folded) = &mut self.folded {
            for agg in &mut folded.aggs {
                agg.clear();
            }
            folded.front_len = 0;
            folded.back.clear();
        }
    }
}

/// An **ingest-time** exponentially-decayed window on the weighted
/// count plane: one resident [`AnyWeightedDDSketch`] whose stored
/// weights are scaled by `decay` every slot tick
/// ([`AnyWeightedDDSketch::scale_counts`]), so an observation aged `a`
/// slots weighs `decay^a` — the same recency bias as
/// [`SlidingWindowSketch::quantiles_decayed`], paid once at ingest
/// instead of on every query.
///
/// The two strategies trade differently:
///
/// * **Query-time** ([`SlidingWindowSketch`]): per-slot sketches, exact
///   hard eviction at the window edge, O(num_slots) sketch memory, every
///   decayed query re-runs the weighted walk.
/// * **Ingest-time** (this type): a single resident sketch — O(1) sketch
///   memory and plain (cheapest) quantile reads — but no hard window
///   edge: old data never leaves, its weight just decays geometrically
///   (after `a` slots a value retains `decay^a` of its vote, so the
///   effective window is `≈ 1/(1 − decay)` slots).
///
/// Like [`SlidingWindowSketch`], time is driven purely by ingest
/// timestamps. Late arrivals (a timestamp behind the newest slot) are
/// accepted and enter **pre-decayed** — weight `w · decay^age` — so a
/// replayed stream produces the same sketch regardless of arrival
/// interleaving (up to f64 rounding of the scale products).
#[derive(Debug, Clone)]
pub struct DecayedIngestWindow {
    config: SketchConfig,
    slot_secs: u64,
    decay: f64,
    resident: AnyWeightedDDSketch,
    /// Start of the newest slot ticked so far.
    head: Option<u64>,
}

impl DecayedIngestWindow {
    /// A decayed window over `config`: weights scale by `decay` (in
    /// `(0, 1]`; `1.0` disables decay) each time the head advances one
    /// `slot_secs` slot.
    pub fn with_config(
        config: SketchConfig,
        slot_secs: u64,
        decay: f64,
    ) -> Result<Self, SketchError> {
        if slot_secs == 0 {
            return Err(SketchError::InvalidConfig(
                "slot_secs must be positive".into(),
            ));
        }
        if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
            return Err(SketchError::InvalidConfig(format!(
                "decay must be in (0, 1], got {decay}"
            )));
        }
        Ok(Self {
            resident: AnyWeightedDDSketch::new(config)?,
            config,
            slot_secs,
            decay,
            head: None,
        })
    }

    /// Convenience constructor for the paper's default configuration.
    pub fn new(
        alpha: f64,
        max_bins: usize,
        slot_secs: u64,
        decay: f64,
    ) -> Result<Self, SketchError> {
        Self::with_config(
            SketchConfig::dense_collapsing(alpha, max_bins),
            slot_secs,
            decay,
        )
    }

    /// The configuration the resident sketch runs.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Slot width in seconds (one decay tick per slot).
    pub fn slot_secs(&self) -> u64 {
        self.slot_secs
    }

    /// The per-slot decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Start of the newest slot ticked so far, or `None` before any data.
    pub fn head(&self) -> Option<u64> {
        self.head
    }

    /// Total surviving (decayed) weight.
    pub fn weighted_count(&self) -> f64 {
        self.resident.weighted_count()
    }

    /// Whether any weight survives.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The resident weighted sketch (e.g. for `DDS3` checkpointing via
    /// [`AnyWeightedDDSketch::encode`]).
    pub fn resident(&self) -> &AnyWeightedDDSketch {
        &self.resident
    }

    /// Advance the head to the slot covering `ts_secs`, applying one
    /// `decay` scale per slot crossed. A no-op for timestamps at or
    /// behind the head; never fails (the clock is data, exactly as in
    /// [`SlidingWindowSketch`]).
    pub fn advance_to(&mut self, ts_secs: u64) {
        let slot = ts_secs - ts_secs % self.slot_secs;
        let Some(head) = self.head else {
            self.head = Some(slot);
            return;
        };
        if slot <= head {
            return;
        }
        let ticks = (slot - head) / self.slot_secs;
        if self.decay < 1.0 {
            self.resident
                .scale_counts(self.decay.powi(ticks.min(i32::MAX as u64) as i32))
                .expect("decay factor validated in constructor");
        }
        self.head = Some(slot);
    }

    /// Record one observation at `ts_secs` with weight `weight`.
    ///
    /// Advances the head first (even if the value is rejected — the
    /// clock is data); a late timestamp enters pre-decayed at
    /// `weight · decay^age_slots`.
    pub fn record_weighted(
        &mut self,
        ts_secs: u64,
        value: f64,
        weight: f64,
    ) -> Result<(), SketchError> {
        self.advance_to(ts_secs);
        let head = self.head.expect("advance_to seeds the head");
        let slot = ts_secs - ts_secs % self.slot_secs;
        let w = if slot < head && self.decay < 1.0 {
            let age = ((head - slot) / self.slot_secs).min(i32::MAX as u64) as i32;
            weight * self.decay.powi(age)
        } else {
            weight
        };
        self.resident.add_with_count(value, w)
    }

    /// Record one observation at weight 1; see
    /// [`DecayedIngestWindow::record_weighted`].
    pub fn record(&mut self, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        self.record_weighted(ts_secs, value, 1.0)
    }

    /// Recent-biased quantiles over everything that still holds weight,
    /// into a caller-owned buffer — a plain weighted-quantile read of the
    /// resident sketch (allocation-free on the dense families).
    pub fn quantiles_into(&self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        self.resident.quantiles_into(qs, out)
    }

    /// Recent-biased quantiles; see [`Self::quantiles_into`].
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        self.resident.quantiles(qs)
    }

    /// Convenience: a single recent-biased quantile.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        self.resident.quantile(q)
    }

    /// Reset to empty, retaining allocations and configuration.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.head = None;
    }
}

/// A sharded, thread-safe sliding window: each shard is a complete
/// [`SlidingWindowSketch`] behind its own lock, writers pick a shard by
/// thread identity (or an explicit hint) and advance it on their own
/// timestamps — no cross-shard roll coordination and no attribution skew,
/// because every observation lands in the slot its timestamp names.
///
/// Reads lock every shard, take the newest head across shards as "now",
/// and answer with one k-way walk over every shard's slots inside that
/// global window (slots a lagging shard still holds from before the
/// global window are filtered out). By full mergeability the result is
/// exactly the single-window answer over all inserted observations.
#[derive(Debug)]
pub struct ConcurrentSlidingWindow {
    shards: Vec<Mutex<SlidingWindowSketch>>,
    slot_secs: u64,
    num_slots: usize,
    /// Reusable read-path buffers, shared by all readers.
    scratch: Mutex<WindowReadScratch>,
}

/// Recycled read-path buffers: the k-way merge scratch plus the
/// short-hold slot copies the quantile walk runs over outside all shard
/// locks.
#[derive(Debug, Default)]
struct WindowReadScratch {
    merge: MergedQuantileScratch,
    slot_copies: Vec<AnyDDSketch>,
}

impl ConcurrentSlidingWindow {
    /// `shards` independent sliding windows (≥ 1) of the given shape;
    /// shard count should roughly match writer-thread count.
    pub fn with_config(
        config: SketchConfig,
        slot_secs: u64,
        num_slots: usize,
        shards: usize,
    ) -> Result<Self, SketchError> {
        if shards == 0 {
            return Err(SketchError::InvalidConfig("shards must be positive".into()));
        }
        let shards = (0..shards)
            .map(|_| SlidingWindowSketch::with_config(config, slot_secs, num_slots).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            slot_secs,
            num_slots,
            scratch: Mutex::new(WindowReadScratch::default()),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total window span in seconds.
    pub fn window_secs(&self) -> u64 {
        self.slot_secs * self.num_slots as u64
    }

    /// Record one observation with an explicit shard hint (reduced modulo
    /// the shard count).
    pub fn record_hinted(&self, hint: usize, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()]
            .lock()
            .record(ts_secs, value)
    }

    /// Record one observation on the calling thread's default shard.
    pub fn record(&self, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        self.record_hinted(thread_shard(), ts_secs, value)
    }

    /// Record a batch sharing one timestamp under a single shard lock.
    pub fn record_slice_hinted(
        &self,
        hint: usize,
        ts_secs: u64,
        values: &[f64],
    ) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()]
            .lock()
            .record_slice(ts_secs, values)
    }

    /// Record a batch on the calling thread's default shard.
    pub fn record_slice(&self, ts_secs: u64, values: &[f64]) -> Result<(), SketchError> {
        self.record_slice_hinted(thread_shard(), ts_secs, values)
    }

    /// The newest head across shards and the matching global-window
    /// cutoff, from one brief per-shard lock hold each (never all shards
    /// at once).
    fn global_cutoff(&self) -> Option<u64> {
        let head = self
            .shards
            .iter()
            .filter_map(|shard| shard.lock().head())
            .max()?;
        Some(head.saturating_sub((self.num_slots as u64 - 1) * self.slot_secs))
    }

    /// Total observation count across every shard's live window, judged
    /// against the newest head across shards.
    ///
    /// Each shard lock is held only for that shard's own O(slots) scan —
    /// never all shards at once, so writers on other shards proceed
    /// unblocked throughout the read. A write racing the read is counted
    /// or not, like any snapshot.
    pub fn count(&self) -> u64 {
        let Some(cutoff) = self.global_cutoff() else {
            return 0;
        };
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .live_slots_from(cutoff)
                    .map(|s| s.count())
                    .sum::<u64>()
            })
            .sum()
    }

    /// Estimate several quantiles over the global live window into a
    /// caller-owned buffer.
    ///
    /// Each shard lock is held only long enough to copy that shard's live
    /// slots' bins into recycled read buffers — never all shards at once —
    /// and the one k-way walk runs over the copies outside every shard
    /// lock, so writers are never blocked on read work. A shard that
    /// advances between the head scan and its copy contributes its new
    /// slots like any write racing a snapshot would.
    pub fn quantiles_into(&self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        let scratch = &mut *self.scratch.lock();
        let Some(cutoff) = self.global_cutoff() else {
            return AnyDDSketch::merged_quantiles_into(
                std::iter::empty(),
                qs,
                &mut scratch.merge,
                out,
            );
        };
        scratch.slot_copies.clear();
        for shard in &self.shards {
            let guard = shard.lock();
            scratch
                .slot_copies
                .extend(guard.live_slots_from(cutoff).cloned());
        }
        AnyDDSketch::merged_quantiles_into(scratch.slot_copies.iter(), qs, &mut scratch.merge, out)
    }

    /// Estimate several quantiles over the global live window.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        self.quantiles_into(qs, &mut out)?;
        Ok(out)
    }

    /// Convenience: a single quantile via [`Self::quantiles`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn config() -> SketchConfig {
        SketchConfig::dense_collapsing(0.01, 512)
    }

    /// A from-scratch sketch over exactly the in-window values of a
    /// timestamped stream, judged at `head`.
    fn reference(
        cfg: SketchConfig,
        stream: &[(u64, f64)],
        slot_secs: u64,
        num_slots: usize,
        head_ts: u64,
    ) -> AnyDDSketch {
        let head = head_ts - head_ts % slot_secs;
        let lo = head.saturating_sub((num_slots as u64 - 1) * slot_secs);
        let mut union = cfg.build().unwrap();
        for &(ts, v) in stream {
            if ts - ts % slot_secs >= lo {
                union.add(v).unwrap();
            }
        }
        union
    }

    #[test]
    fn constructor_validates() {
        assert!(SlidingWindowSketch::with_config(config(), 0, 10).is_err());
        assert!(SlidingWindowSketch::with_config(config(), 1, 0).is_err());
        assert!(
            SlidingWindowSketch::with_config(SketchConfig::dense_collapsing(0.0, 10), 1, 10)
                .is_err()
        );
        assert!(SlidingWindowSketch::with_config(config(), 1, 10).is_ok());
        assert!(SlidingWindowSketch::with_suffix_aggregates(config(), 1, 1).is_ok());
        assert!(ConcurrentSlidingWindow::with_config(config(), 1, 10, 0).is_err());
        assert!(ConcurrentSlidingWindow::with_config(config(), 1, 10, 4).is_ok());
        let sw = SlidingWindowSketch::new(0.01, 2048, 1, 300).unwrap();
        assert_eq!(sw.window_secs(), 300);
        assert_eq!(sw.num_slots(), 300);
        assert!(!sw.has_suffix_aggregates());
    }

    #[test]
    fn empty_window_behaviour() {
        for folded in [false, true] {
            let sw = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config(), 1, 5).unwrap()
            } else {
                SlidingWindowSketch::with_config(config(), 1, 5).unwrap()
            };
            assert!(sw.is_empty());
            assert_eq!(sw.count(), 0);
            assert_eq!(sw.head(), None);
            assert!(matches!(sw.quantile(0.5), Err(SketchError::Empty)));
            assert!(matches!(
                sw.quantiles_decayed(&[0.5], 0.9),
                Err(SketchError::Empty)
            ));
            assert_eq!(sw.quantiles(&[]).unwrap(), Vec::<f64>::new());
            assert!(matches!(
                sw.quantiles(&[1.5]),
                Err(SketchError::InvalidQuantile(_))
            ));
        }
    }

    #[test]
    fn window_tracks_only_recent_slots() {
        for folded in [false, true] {
            let mut sw = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config(), 10, 3).unwrap()
            } else {
                SlidingWindowSketch::with_config(config(), 10, 3).unwrap()
            };
            sw.record(5, 1.0).unwrap(); // slot 0
            sw.record(15, 2.0).unwrap(); // slot 10
            sw.record(25, 3.0).unwrap(); // slot 20
            assert_eq!(sw.count(), 3);
            assert_eq!(sw.window_start(), Some(0));
            // Slot 30 evicts slot 0.
            sw.record(30, 4.0).unwrap();
            assert_eq!(sw.count(), 3);
            assert_eq!(sw.window_start(), Some(10));
            let p100 = sw.quantile(1.0).unwrap();
            let p0 = sw.quantile(0.0).unwrap();
            assert!(p100 >= 4.0 * 0.99 && p0 >= 2.0 * 0.99, "folded={folded}");
            // A stale write is rejected without touching anything.
            assert!(matches!(
                sw.record(5, 9.0),
                Err(SketchError::StaleTimestamp { .. })
            ));
            assert_eq!(sw.count(), 3);
            // A big jump clears everything but the new slot's data.
            sw.record(500, 7.0).unwrap();
            assert_eq!(sw.count(), 1);
            let v = sw.quantile(0.5).unwrap();
            assert!((v - 7.0).abs() <= 0.08, "folded={folded}: {v}");
        }
    }

    #[test]
    fn matches_from_scratch_sketch_across_rotations() {
        // Deterministic stream with out-of-order arrivals inside the
        // window, across many rotations and all three read paths.
        for folded in [false, true] {
            for cfg in SketchConfig::all(0.01, 128) {
                let mut sw = if folded {
                    SlidingWindowSketch::with_suffix_aggregates(cfg, 2, 7).unwrap()
                } else {
                    SlidingWindowSketch::with_config(cfg, 2, 7).unwrap()
                };
                let mut stream: Vec<(u64, f64)> = Vec::new();
                let mut ts = 0u64;
                for i in 0..400u64 {
                    ts += i % 3; // dwell, then advance
                    let v = match i % 7 {
                        0 => 0.0,
                        1..=3 => ((i + 1) as f64).sqrt() * 3.0,
                        4 => -((i + 1) as f64) * 0.1,
                        _ => 0.5 + (i % 50) as f64,
                    };
                    // Occasional late arrival into an older live slot.
                    let late = i % 11 == 0 && ts >= 4;
                    let t = if late { ts - 4 } else { ts };
                    stream.push((t, v));
                    sw.record(t, v).unwrap();
                }
                let union = reference(cfg, &stream, 2, 7, ts);
                assert_eq!(sw.count(), union.count(), "{} folded={folded}", cfg.name());
                let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0];
                assert_eq!(
                    sw.quantiles(&qs).unwrap(),
                    union.quantiles(&qs).unwrap(),
                    "{} folded={folded}: window must equal the from-scratch union",
                    cfg.name()
                );
                // Decay 1.0 degrades to the plain window semantics.
                assert_eq!(
                    sw.quantiles_decayed(&qs, 1.0).unwrap(),
                    AnyDDSketch::weighted_merged_quantiles(&[(&union, 1.0)], &qs).unwrap(),
                    "{} folded={folded}",
                    cfg.name()
                );
            }
        }
    }

    #[test]
    fn single_slot_window_is_the_newest_slot_only() {
        for folded in [false, true] {
            let mut sw = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config(), 10, 1).unwrap()
            } else {
                SlidingWindowSketch::with_config(config(), 10, 1).unwrap()
            };
            sw.record(3, 100.0).unwrap();
            sw.record(7, 200.0).unwrap();
            assert_eq!(sw.count(), 2);
            sw.record(12, 5.0).unwrap();
            assert_eq!(sw.count(), 1, "folded={folded}");
            let v = sw.quantile(0.5).unwrap();
            assert!((v - 5.0).abs() <= 0.06, "folded={folded}: {v}");
            assert!(matches!(
                sw.record(3, 1.0),
                Err(SketchError::StaleTimestamp { .. })
            ));
        }
    }

    #[test]
    fn arrivals_behind_the_first_head_are_not_lost() {
        // Regression: a slot inside the live window but *behind* the
        // first (or post-jump) head was accepted yet never claimed its
        // ring cell, so the value vanished from count()/quantiles (and
        // the two-stack layout misrouted it through a NO_SLOT start).
        for folded in [false, true] {
            let mut sw = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config(), 1, 5).unwrap()
            } else {
                SlidingWindowSketch::with_config(config(), 1, 5).unwrap()
            };
            sw.record(10, 1.0).unwrap();
            sw.record(8, 2.0).unwrap(); // in [6, 10], behind the first head
            assert_eq!(sw.count(), 2, "folded={folded}");
            let p100 = sw.quantile(1.0).unwrap();
            assert!((p100 - 2.0).abs() <= 0.03, "folded={folded}: {p100}");
            // The claimed slot participates in rotation and aging like
            // any other: slot 8 expires once the head reaches 13.
            sw.record(13, 3.0).unwrap();
            assert_eq!(sw.count(), 2, "folded={folded}: slot 8 aged out");
            // Same after a full-window jump reset.
            sw.record(100, 5.0).unwrap();
            sw.record(97, 6.0).unwrap();
            assert_eq!(sw.count(), 2, "folded={folded}");
            let p100 = sw.quantile(1.0).unwrap();
            assert!((p100 - 6.0).abs() <= 0.07, "folded={folded}: {p100}");
            // And the claimed-then-sealed slots keep matching a
            // from-scratch union as the window moves on.
            sw.record(101, 4.0).unwrap();
            let mut union = config().build().unwrap();
            for v in [5.0, 6.0, 4.0] {
                union.add(v).unwrap();
            }
            let qs = [0.0, 0.5, 1.0];
            assert_eq!(
                sw.quantiles(&qs).unwrap(),
                union.quantiles(&qs).unwrap(),
                "folded={folded}"
            );
        }
    }

    #[test]
    fn record_slice_and_absorb_match_scalar_records() {
        let mut scalar = SlidingWindowSketch::with_suffix_aggregates(config(), 5, 4).unwrap();
        let mut batched = SlidingWindowSketch::with_suffix_aggregates(config(), 5, 4).unwrap();
        let mut absorbed = SlidingWindowSketch::with_suffix_aggregates(config(), 5, 4).unwrap();
        for t in 0..8u64 {
            let ts = t * 5;
            let values: Vec<f64> = (1..=40).map(|i| 0.3 + (t * 40 + i) as f64 * 0.01).collect();
            for &v in &values {
                scalar.record(ts, v).unwrap();
            }
            batched.record_slice(ts, &values).unwrap();
            let mut agent = config().build().unwrap();
            agent.add_slice(&values).unwrap();
            absorbed.absorb(ts, &agent).unwrap();
        }
        let qs = [0.0, 0.5, 0.99, 1.0];
        let want = scalar.quantiles(&qs).unwrap();
        assert_eq!(batched.quantiles(&qs).unwrap(), want);
        assert_eq!(absorbed.quantiles(&qs).unwrap(), want);
        // A bad batch at a live timestamp fails atomically (a *future*
        // timestamp would still advance the window — the clock is data).
        assert!(batched.record_slice(35, &[1.0, f64::NAN]).is_err());
        assert_eq!(batched.count(), scalar.count());
        // An incompatible absorb is rejected.
        let foreign = SketchConfig::sparse(0.01).build().unwrap();
        assert!(matches!(
            absorbed.absorb(35, &foreign),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn decayed_quantiles_bias_toward_recent_slots() {
        let mut sw = SlidingWindowSketch::with_config(config(), 1, 10).unwrap();
        // Nine old slots of ~1 ms, one fresh slot of ~100 ms.
        for t in 0..9u64 {
            for i in 0..50 {
                sw.record(t, 1.0 + i as f64 * 0.001).unwrap();
            }
        }
        for i in 0..50 {
            sw.record(9, 100.0 + i as f64).unwrap();
        }
        let plain = sw.quantile(0.5).unwrap();
        let decayed = sw.quantiles_decayed(&[0.5], 0.3).unwrap()[0];
        assert!(plain < 2.0, "even weighting keeps the median old: {plain}");
        assert!(
            decayed > 90.0,
            "decay 0.3 pulls the median recent: {decayed}"
        );
        assert!(sw.quantiles_decayed(&[0.5], 0.0).is_err());
        assert!(sw.quantiles_decayed(&[0.5], 1.1).is_err());
        assert!(sw.quantiles_decayed(&[0.5], f64::NAN).is_err());
    }

    #[test]
    fn advance_without_data_ages_slots_out() {
        for folded in [false, true] {
            let mut sw = if folded {
                SlidingWindowSketch::with_suffix_aggregates(config(), 1, 4).unwrap()
            } else {
                SlidingWindowSketch::with_config(config(), 1, 4).unwrap()
            };
            sw.record(0, 1.0).unwrap();
            sw.advance_to(2);
            assert_eq!(sw.count(), 1, "still inside the window");
            sw.advance_to(5);
            assert_eq!(sw.count(), 0, "folded={folded}: aged out");
            assert!(sw.quantile(0.5).is_err());
            // The window stays usable afterwards.
            sw.record(6, 2.0).unwrap();
            assert_eq!(sw.count(), 1);
            sw.clear();
            assert!(sw.is_empty());
            assert_eq!(sw.head(), None);
            sw.record(0, 3.0).unwrap();
            assert_eq!(sw.count(), 1);
        }
    }

    #[test]
    fn concurrent_window_matches_single_writer() {
        let cw = Arc::new(ConcurrentSlidingWindow::with_config(config(), 2, 6, 4).unwrap());
        let mut single = SlidingWindowSketch::with_config(config(), 2, 6).unwrap();
        // All threads write the same deterministic (ts, value) stream
        // regions; every observation's slot is named by its timestamp, so
        // the sharded union must equal the single-writer window exactly.
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cw = Arc::clone(&cw);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let ts = i / 100; // shared clock: all within the window
                        let v = 0.5 + (t * per_thread + i) as f64 * 1e-3;
                        cw.record_hinted(t as usize, ts, v).unwrap();
                    }
                });
            }
        });
        // Replay in global timestamp order (a single writer's clock only
        // moves forward; the sharded windows each kept their own clock).
        for i in 0..per_thread {
            let ts = i / 100;
            for t in 0..4u64 {
                let v = 0.5 + (t * per_thread + i) as f64 * 1e-3;
                single.record(ts, v).unwrap();
            }
        }
        assert_eq!(cw.count(), single.count());
        let qs = [0.0, 0.25, 0.5, 0.9, 0.999, 1.0];
        assert_eq!(cw.quantiles(&qs).unwrap(), single.quantiles(&qs).unwrap());
        assert_eq!(cw.quantile(0.5).unwrap(), single.quantile(0.5).unwrap());
    }

    #[test]
    fn concurrent_window_filters_lagging_shards() {
        let cw = ConcurrentSlidingWindow::with_config(config(), 10, 3, 2).unwrap();
        // Shard 0 stops at t=0; shard 1 advances to t=60, pushing the
        // global window to [40, 70). Shard 0's slot-0 data must drop out
        // of reads even though its own ring still holds it.
        cw.record_hinted(0, 0, 1.0).unwrap();
        cw.record_hinted(1, 5, 2.0).unwrap();
        assert_eq!(cw.count(), 2);
        cw.record_hinted(1, 65, 3.0).unwrap();
        assert_eq!(cw.count(), 1, "stale shard slots are filtered");
        let v = cw.quantile(1.0).unwrap();
        assert!((v - 3.0).abs() <= 0.04, "{v}");
        // Empty window behaviour.
        let fresh = ConcurrentSlidingWindow::with_config(config(), 1, 4, 2).unwrap();
        assert_eq!(fresh.count(), 0);
        assert!(matches!(fresh.quantiles(&[0.5]), Err(SketchError::Empty)));
        assert_eq!(fresh.quantiles(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn suffix_aggregates_survive_many_flips() {
        // Long steady march: the two-stack layout flips every ≈n
        // rotations; every configuration must keep answering exactly like
        // the plain ring walk throughout.
        for cfg in [config(), SketchConfig::sparse(0.01)] {
            let mut plain = SlidingWindowSketch::with_config(cfg, 1, 5).unwrap();
            let mut folded = SlidingWindowSketch::with_suffix_aggregates(cfg, 1, 5).unwrap();
            for ts in 0..100u64 {
                for i in 0..8 {
                    let v = 0.2 + ((ts * 13 + i * 7) % 97) as f64;
                    plain.record(ts, v).unwrap();
                    folded.record(ts, v).unwrap();
                }
                if ts % 3 == 0 {
                    let qs = [0.0, 0.5, 0.99, 1.0];
                    assert_eq!(
                        folded.quantiles(&qs).unwrap(),
                        plain.quantiles(&qs).unwrap(),
                        "{} diverged at ts={ts}",
                        cfg.name()
                    );
                }
            }
            assert_eq!(folded.count(), plain.count());
        }
    }

    #[test]
    fn decayed_ingest_constructor_validates() {
        assert!(DecayedIngestWindow::with_config(config(), 0, 0.9).is_err());
        assert!(DecayedIngestWindow::with_config(config(), 1, 0.0).is_err());
        assert!(DecayedIngestWindow::with_config(config(), 1, 1.5).is_err());
        assert!(DecayedIngestWindow::with_config(config(), 1, f64::NAN).is_err());
        assert!(DecayedIngestWindow::with_config(config(), 1, 1.0).is_ok());
        let w = DecayedIngestWindow::new(0.01, 2048, 10, 0.5).unwrap();
        assert_eq!(w.slot_secs(), 10);
        assert_eq!(w.decay(), 0.5);
        assert!(w.is_empty());
        assert_eq!(w.head(), None);
        assert!(matches!(w.quantile(0.5), Err(SketchError::Empty)));
    }

    #[test]
    fn decay_one_matches_plain_sketch() {
        // λ = 1.0 disables decay: the window must answer exactly like an
        // unweighted sketch over every value ever recorded.
        let mut w = DecayedIngestWindow::with_config(config(), 5, 1.0).unwrap();
        let mut plain = config().build().unwrap();
        for i in 0..400u64 {
            let ts = i * 3; // crosses many slot boundaries
            let v = 0.3 + ((i * 31) % 89) as f64;
            w.record(ts, v).unwrap();
            plain.add(v).unwrap();
        }
        assert_eq!(w.weighted_count(), plain.count() as f64);
        let qs = [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0];
        let got = w.quantiles(&qs).unwrap();
        let want = plain.quantiles(&qs).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn decay_scales_total_weight_per_slot_tick() {
        let mut w = DecayedIngestWindow::with_config(config(), 10, 0.5).unwrap();
        w.record(5, 1.0).unwrap(); // head slot 0
        assert_eq!(w.weighted_count(), 1.0);
        w.advance_to(25); // slots 0 → 20: two ticks
        assert_eq!(w.head(), Some(20));
        assert_eq!(w.weighted_count(), 0.25);
        w.record(25, 2.0).unwrap();
        assert_eq!(w.weighted_count(), 1.25);
    }

    #[test]
    fn decayed_quantiles_bias_toward_recent_values() {
        // Old slots full of 1.0, newest slot full of 100.0: with strong
        // decay the median must sit at the recent value, without decay at
        // the (majority) old value.
        for (decay, expect_high) in [(0.2, true), (1.0, false)] {
            let mut w = DecayedIngestWindow::with_config(config(), 1, decay).unwrap();
            for ts in 0..9u64 {
                for _ in 0..50 {
                    w.record(ts, 1.0).unwrap();
                }
            }
            for _ in 0..50 {
                w.record(9, 100.0).unwrap();
            }
            let p50 = w.quantile(0.5).unwrap();
            if expect_high {
                assert!(p50 > 50.0, "decay={decay}: median {p50} not recent-biased");
            } else {
                assert!(
                    p50 < 2.0,
                    "decay={decay}: median {p50} should favour the bulk"
                );
            }
        }
    }

    #[test]
    fn late_arrivals_enter_pre_decayed() {
        // Replaying the same stream in timestamp order and in shuffled
        // order must land on the same surviving weights: a late arrival
        // enters at weight λ^age.
        let slot = 10;
        let stream = [(5u64, 2.0f64), (25, 3.0), (47, 4.0), (15, 5.0), (33, 6.0)];
        let mut ordered = DecayedIngestWindow::with_config(config(), slot, 0.5).unwrap();
        let mut sorted = stream;
        sorted.sort_by_key(|&(ts, _)| ts);
        for &(ts, v) in &sorted {
            ordered.record(ts, v).unwrap();
        }
        let mut replayed = DecayedIngestWindow::with_config(config(), slot, 0.5).unwrap();
        // Seed the head at the stream's end first so every arrival is late.
        replayed.advance_to(47);
        for &(ts, v) in &stream {
            replayed.record(ts, v).unwrap();
        }
        assert_eq!(replayed.head(), ordered.head());
        assert!(
            (replayed.weighted_count() - ordered.weighted_count()).abs() < 1e-12,
            "{} vs {}",
            replayed.weighted_count(),
            ordered.weighted_count()
        );
        let qs = [0.0, 0.5, 1.0];
        let a = replayed.quantiles(&qs).unwrap();
        let b = ordered.quantiles(&qs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-9 * y.abs(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn record_weighted_and_clear() {
        let mut w = DecayedIngestWindow::with_config(config(), 10, 0.9).unwrap();
        w.record_weighted(3, 5.0, 2.5).unwrap();
        assert_eq!(w.weighted_count(), 2.5);
        assert!(w.record_weighted(3, 5.0, -1.0).is_err());
        assert!(w.record_weighted(3, 5.0, f64::NAN).is_err());
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.head(), None);
        // Checkpoint round-trip through the weighted codec.
        w.record_weighted(3, 5.0, 2.5).unwrap();
        let bytes = w.resident().encode();
        let back = AnyWeightedDDSketch::decode(&bytes).unwrap();
        assert_eq!(back.weighted_count(), 2.5);
    }
}
