//! The fleet-facing aggregator: raw frames in, quantiles out, no
//! intermediate sketches.
//!
//! This is the receiving half of the paper's Figure 1 deployment: agents
//! encode their per-window sketches and ship them every few seconds; the
//! aggregator answers "what is the fleet's p99 right now?" continuously.
//! The naive implementation decodes every payload into a sketch and
//! merges it — paying two store allocations, a per-bin scalar rebuild,
//! and a grow/collapse *per payload*. [`Aggregator`] never does that:
//!
//! * [`Aggregator::feed`] decodes each frame exactly once, into a
//!   **recycled** staging payload (bins + summary, no stores — see
//!   [`ddsketch::SketchPayload::decode_into`]): one fused
//!   validate-and-decode pass, no allocation at steady state.
//! * Every `fold_threshold` frames, the pending payloads fold into one
//!   resident [`AnyDDSketch`] through the mixed-source merge path — one
//!   bulk `add_bins` pass per store per payload, bins flowing straight
//!   from the staged slices into the resident stores.
//! * [`Aggregator::quantiles_into`] answers from the resident sketch ∪
//!   the not-yet-folded payloads in one k-way rank walk
//!   ([`ddsketch::SketchSource`]): zero intermediate sketches ever
//!   exist, and with the internal scratch warm the query performs zero
//!   heap allocations on the dense store families (counting-allocator
//!   tested).
//!
//! Callers that want to *inspect* a frame without staging it — routing,
//!   compatibility probes, ad-hoc quantiles — use the zero-copy
//! [`SketchView`] directly; the aggregator's rejection path is exactly
//! that validation.

use std::sync::atomic::{AtomicU64, Ordering};

use ddsketch::codec::FrameReader;
use ddsketch::{
    AnyDDSketch, AnyWeightedDDSketch, MappingKind, SketchConfig, SketchError, SketchPayload,
    SketchSource, SourceQuantileScratch, StoreKind, WeightedSketchPayload,
};

/// Decode-free sketch aggregator: feeds on encoded `DDS2` frames,
/// periodically folds them into a resident sketch, and serves quantiles
/// over resident ∪ unfolded payloads without materializing any sketch
/// per payload.
#[derive(Debug)]
pub struct Aggregator {
    config: SketchConfig,
    resident: AnyDDSketch,
    /// Decoded frames awaiting the next fold (recycled buffers).
    pending: Vec<SketchPayload>,
    /// Spent staging payloads (bin-vector capacity only).
    spare: Vec<SketchPayload>,
    fold_threshold: usize,
    scratch: SourceQuantileScratch,
    frames_received: u64,
    frames_folded: u64,
    /// Monotonic data epoch: bumped on every accepted feed and every
    /// non-empty fold, so `epoch() unchanged` ⟺ `answers unchanged`.
    epoch: AtomicU64,
}

impl Aggregator {
    /// Create an aggregator whose resident sketch uses `config`, folding
    /// pending payloads whenever `fold_threshold` of them accumulate.
    ///
    /// The threshold trades fold frequency against query fan-in: queries
    /// walk at most `fold_threshold` unfolded payloads plus the resident
    /// sketch. A threshold of 1 folds on every frame (queries always walk
    /// one source); thresholds in the tens suit per-second query loads.
    pub fn with_config(config: SketchConfig, fold_threshold: usize) -> Result<Self, SketchError> {
        if fold_threshold == 0 {
            return Err(SketchError::InvalidConfig(
                "fold_threshold must be positive".into(),
            ));
        }
        Ok(Self {
            resident: config.build()?,
            config,
            pending: Vec::new(),
            spare: Vec::new(),
            fold_threshold,
            scratch: SourceQuantileScratch::default(),
            frames_received: 0,
            frames_folded: 0,
            epoch: AtomicU64::new(0),
        })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(alpha: f64, max_bins: usize, fold_threshold: usize) -> Result<Self, SketchError> {
        Self::with_config(
            SketchConfig::dense_collapsing(alpha, max_bins),
            fold_threshold,
        )
    }

    /// The configuration the resident sketch runs.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// The pending-payload count that triggers a fold.
    pub fn fold_threshold(&self) -> usize {
        self.fold_threshold
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Frames already folded into the resident sketch.
    pub fn frames_folded(&self) -> u64 {
        self.frames_folded
    }

    /// Frames awaiting the next fold.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Monotonic data epoch: advanced by every accepted
    /// [`Aggregator::feed`]/[`Aggregator::feed_payload`] and every
    /// non-empty [`Aggregator::fold`] (a relaxed atomic, so a reader
    /// holding only `&self` can probe it cheaply). An unchanged epoch
    /// guarantees unchanged state — the contract read-side caches key
    /// their invalidation on.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The resident sketch (excludes pending payloads; fold first for a
    /// complete one).
    pub fn resident(&self) -> &AnyDDSketch {
        &self.resident
    }

    /// Total observations across resident and pending payloads.
    pub fn count(&self) -> u64 {
        self.resident.count()
            + self
                .pending
                .iter()
                .map(|p| {
                    p.zero_count
                        + p.positive.iter().map(|&(_, c)| c).sum::<u64>()
                        + p.negative.iter().map(|&(_, c)| c).sum::<u64>()
                })
                .sum::<u64>()
    }

    /// Whether the aggregator has seen no data.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Reject payloads the resident sketch could not merge, *before* they
    /// enter the pending set — a bad frame never corrupts a fold.
    fn check_compatible(&self, payload: &SketchPayload) -> Result<(), SketchError> {
        if !payload.matches_config(&self.config) {
            // A differing max_bins is fine (the resident bound governs,
            // Algorithm 4); family or α mismatches are not.
            return Err(SketchError::IncompatibleMerge(format!(
                "aggregator runs {:?}, payload is (mapping {:?}, store {:?}, α={})",
                self.config,
                MappingKind::from_u8(payload.kind),
                StoreKind::from_u8(payload.store),
                payload.relative_accuracy
            )));
        }
        Ok(())
    }

    /// Accept one encoded payload.
    ///
    /// The frame is decoded **once**, into a recycled staging payload —
    /// validating structure, summary consistency, and configuration
    /// without building a sketch or (at steady state) touching the
    /// allocator. Rejected frames (corrupt bytes, incompatible
    /// configuration) leave the aggregator untouched.
    pub fn feed(&mut self, frame: &[u8]) -> Result<(), SketchError> {
        let mut payload = self.take_spare();
        if let Err(e) = payload.decode_into(frame) {
            self.recycle(payload);
            return Err(e);
        }
        self.feed_payload(payload)
    }

    /// Take a recycled staging payload (or a fresh one) so a caller can
    /// run [`ddsketch::SketchPayload::decode_into`] itself — e.g. a
    /// server thread that must route on the decoded bytes *before*
    /// deciding where to stage them. Hand the buffer back through
    /// [`Aggregator::feed_payload`] or [`Aggregator::recycle`] to keep
    /// the steady state allocation-free.
    pub fn take_spare(&mut self) -> SketchPayload {
        self.spare.pop().unwrap_or_default()
    }

    /// Return a payload buffer to the recycle pool without staging it
    /// (the counterpart of [`Aggregator::take_spare`] for rejected or
    /// unused buffers).
    pub fn recycle(&mut self, payload: SketchPayload) {
        self.spare.push(payload);
    }

    /// Stage one already-decoded payload — the out-of-band half of
    /// [`Aggregator::feed`], for callers that decoded (and perhaps
    /// routed on) the payload themselves. The compatibility gate is the
    /// same as `feed`'s; a rejected payload's buffer is recycled
    /// internally and the aggregator is left untouched.
    pub fn feed_payload(&mut self, payload: SketchPayload) -> Result<(), SketchError> {
        if let Err(e) = self.check_compatible(&payload) {
            self.recycle(payload);
            return Err(e);
        }
        self.pending.push(payload);
        self.frames_received += 1;
        self.epoch.fetch_add(1, Ordering::Relaxed);
        if self.pending.len() >= self.fold_threshold {
            self.fold();
        }
        Ok(())
    }

    /// Drain every frame of a [`FrameReader`] into the aggregator,
    /// returning how many were accepted. Stops at the first corrupt or
    /// incompatible frame (already-accepted frames stay absorbed).
    pub fn feed_stream<R: std::io::Read>(
        &mut self,
        reader: &mut FrameReader<R>,
    ) -> Result<usize, SketchError> {
        let mut accepted = 0;
        let mut buf = Vec::new();
        while reader.read_frame(&mut buf)?.is_some() {
            self.feed(&buf)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Fold every pending payload into the resident sketch, returning how
    /// many were absorbed. Each payload costs one bulk `add_bins` pass
    /// per store — no intermediate sketch is ever constructed.
    pub fn fold(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.resident
            .merge_sources(self.pending.iter().map(SketchSource::Payload))
            .expect("pending payloads are compatibility-checked by feed");
        let folded = self.pending.len();
        self.frames_folded += folded as u64;
        self.spare.append(&mut self.pending);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        folded
    }

    /// Estimate quantiles over everything fed so far — resident sketch ∪
    /// unfolded payloads — in one mixed-source rank walk. No sketch is
    /// materialized, no merge performed; with the internal scratch warm
    /// (one prior call), dense-family queries allocate nothing beyond
    /// `out`'s capacity.
    ///
    /// `&mut self` is for scratch reuse only; no observable state
    /// changes.
    pub fn quantiles_into(&mut self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        let Self {
            resident,
            pending,
            scratch,
            ..
        } = self;
        let sources = std::iter::once(SketchSource::Live(&*resident))
            .chain(pending.iter().map(SketchSource::Payload));
        AnyDDSketch::merged_quantiles_sources(sources, qs, scratch, out)
    }

    /// Convenience allocating form of [`Aggregator::quantiles_into`].
    pub fn quantiles(&mut self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        self.quantiles_into(qs, &mut out)?;
        Ok(out)
    }

    /// Convenience: a single quantile via [`Aggregator::quantiles_into`].
    pub fn quantile(&mut self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }
}

/// The weighted twin of [`Aggregator`]: feeds on **any** wire dialect —
/// `DDS1`, `DDS2`, or `DDS3` — in one mixed stream, staging each frame
/// as a recycled [`WeightedSketchPayload`] (integer counts widen exactly)
/// and folding into a resident [`AnyWeightedDDSketch`].
///
/// This is the receiving end for fleets whose agents submit
/// pre-aggregated weighted observations (`DDS3`) alongside legacy
/// integer-counted payloads: one aggregator, one merge walk, no routing
/// on the magic. The steady-state contract matches the integer
/// aggregator's — each frame is decoded exactly once into recycled
/// buffers, folds are one bulk `add_bins` pass per store per payload,
/// and with warm buffers neither `feed` nor `fold` touches the allocator
/// (counting-allocator tested).
#[derive(Debug)]
pub struct WeightedAggregator {
    config: SketchConfig,
    resident: AnyWeightedDDSketch,
    pending: Vec<WeightedSketchPayload>,
    spare: Vec<WeightedSketchPayload>,
    fold_threshold: usize,
    frames_received: u64,
    frames_folded: u64,
    /// Monotonic data epoch; see [`Aggregator::epoch`].
    epoch: AtomicU64,
}

impl WeightedAggregator {
    /// Create a weighted aggregator whose resident sketch uses `config`,
    /// folding whenever `fold_threshold` pending payloads accumulate.
    pub fn with_config(config: SketchConfig, fold_threshold: usize) -> Result<Self, SketchError> {
        if fold_threshold == 0 {
            return Err(SketchError::InvalidConfig(
                "fold_threshold must be positive".into(),
            ));
        }
        Ok(Self {
            resident: AnyWeightedDDSketch::new(config)?,
            config,
            pending: Vec::new(),
            spare: Vec::new(),
            fold_threshold,
            frames_received: 0,
            frames_folded: 0,
            epoch: AtomicU64::new(0),
        })
    }

    /// Convenience constructor for the paper's default configuration.
    pub fn new(alpha: f64, max_bins: usize, fold_threshold: usize) -> Result<Self, SketchError> {
        Self::with_config(
            SketchConfig::dense_collapsing(alpha, max_bins),
            fold_threshold,
        )
    }

    /// The configuration the resident sketch runs.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Frames already folded into the resident sketch.
    pub fn frames_folded(&self) -> u64 {
        self.frames_folded
    }

    /// Frames awaiting the next fold.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Monotonic data epoch: advanced by every accepted feed and every
    /// non-empty fold; see [`Aggregator::epoch`] for the contract.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The resident sketch (excludes pending payloads; fold first for a
    /// complete one).
    pub fn resident(&self) -> &AnyWeightedDDSketch {
        &self.resident
    }

    /// Total stored weight across resident and pending payloads.
    pub fn weighted_count(&self) -> f64 {
        self.resident.weighted_count()
            + self
                .pending
                .iter()
                .map(|p| {
                    p.zero_count
                        + p.positive.iter().map(|&(_, c)| c).sum::<f64>()
                        + p.negative.iter().map(|&(_, c)| c).sum::<f64>()
                })
                .sum::<f64>()
    }

    /// Whether the aggregator has seen no weight.
    pub fn is_empty(&self) -> bool {
        self.weighted_count() == 0.0
    }

    fn check_compatible(&self, payload: &WeightedSketchPayload) -> Result<(), SketchError> {
        if !payload.matches_config(&self.config) {
            return Err(SketchError::IncompatibleMerge(format!(
                "aggregator runs {:?}, payload is (mapping {:?}, store {:?}, α={})",
                self.config,
                MappingKind::from_u8(payload.kind),
                StoreKind::from_u8(payload.store),
                payload.relative_accuracy
            )));
        }
        Ok(())
    }

    /// Accept one encoded payload of **any** dialect. The frame is
    /// decoded once, into a recycled staging payload; rejected frames
    /// leave the aggregator untouched.
    pub fn feed(&mut self, frame: &[u8]) -> Result<(), SketchError> {
        let mut payload = self.take_spare();
        if let Err(e) = payload.decode_into(frame) {
            self.recycle(payload);
            return Err(e);
        }
        self.feed_payload(payload)
    }

    /// Take a recycled staging payload (or a fresh one); see
    /// [`Aggregator::take_spare`].
    pub fn take_spare(&mut self) -> WeightedSketchPayload {
        self.spare.pop().unwrap_or_default()
    }

    /// Return a payload buffer to the recycle pool without staging it.
    pub fn recycle(&mut self, payload: WeightedSketchPayload) {
        self.spare.push(payload);
    }

    /// Stage one already-decoded weighted payload; the compatibility gate
    /// matches [`WeightedAggregator::feed`]'s.
    pub fn feed_payload(&mut self, payload: WeightedSketchPayload) -> Result<(), SketchError> {
        if let Err(e) = self.check_compatible(&payload) {
            self.recycle(payload);
            return Err(e);
        }
        self.pending.push(payload);
        self.frames_received += 1;
        self.epoch.fetch_add(1, Ordering::Relaxed);
        if self.pending.len() >= self.fold_threshold {
            self.fold();
        }
        Ok(())
    }

    /// Drain every frame of a [`FrameReader`] into the aggregator; see
    /// [`Aggregator::feed_stream`].
    pub fn feed_stream<R: std::io::Read>(
        &mut self,
        reader: &mut FrameReader<R>,
    ) -> Result<usize, SketchError> {
        let mut accepted = 0;
        let mut buf = Vec::new();
        while reader.read_frame(&mut buf)?.is_some() {
            self.feed(&buf)?;
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Fold every pending payload into the resident sketch — one bulk
    /// `add_bins` pass per store per payload.
    pub fn fold(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let folded = self.pending.len();
        for payload in self.pending.drain(..) {
            self.resident
                .merge_weighted_payload(&payload)
                .expect("pending payloads are compatibility-checked by feed");
            self.spare.push(payload);
        }
        self.frames_folded += folded as u64;
        self.epoch.fetch_add(1, Ordering::Relaxed);
        folded
    }

    /// Estimate quantiles over everything fed so far. Unlike the integer
    /// plane there is no mixed-source weighted rank walk, so pending
    /// payloads are folded first (an observable but semantics-preserving
    /// state change); the query itself is allocation-free on the dense
    /// families.
    pub fn quantiles_into(&mut self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        self.fold();
        self.resident.quantiles_into(qs, out)
    }

    /// Convenience allocating form of [`WeightedAggregator::quantiles_into`].
    pub fn quantiles(&mut self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        self.quantiles_into(qs, &mut out)?;
        Ok(out)
    }

    /// Convenience: a single quantile.
    pub fn quantile(&mut self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsketch::codec::FrameWriter;

    fn frame(config: SketchConfig, values: impl IntoIterator<Item = f64>) -> Vec<u8> {
        let mut s = config.build().unwrap();
        for v in values {
            s.add(v).unwrap();
        }
        s.encode()
    }

    #[test]
    fn aggregator_equals_decode_then_merge_under_every_config() {
        for config in SketchConfig::all(0.01, 256) {
            // Thresholds straddling the frame count: folds mid-stream,
            // at-end, and never.
            for threshold in [1, 7, 100] {
                let mut agg = Aggregator::with_config(config, threshold).unwrap();
                let mut reference = config.build().unwrap();
                for k in 0..20u32 {
                    let values: Vec<f64> = (1..=50)
                        .map(|i| {
                            let v = f64::from(i * (k + 1)) * 0.7;
                            if i % 9 == 0 {
                                -v
                            } else if i % 5 == 0 {
                                0.0
                            } else {
                                v
                            }
                        })
                        .collect();
                    let bytes = frame(config, values.iter().copied());
                    agg.feed(&bytes).unwrap();
                    reference
                        .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
                        .unwrap();
                }
                assert_eq!(agg.frames_received(), 20);
                assert_eq!(agg.count(), reference.count(), "{}", config.name());
                let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
                assert_eq!(
                    agg.quantiles(&qs).unwrap(),
                    reference.quantiles(&qs).unwrap(),
                    "{} (threshold {threshold}): aggregator must equal decode-then-merge",
                    config.name()
                );
                // Folding everything must not change the answers.
                agg.fold();
                assert_eq!(agg.pending_frames(), 0);
                assert_eq!(
                    agg.quantiles(&qs).unwrap(),
                    reference.quantiles(&qs).unwrap()
                );
                assert_eq!(
                    agg.resident().to_payload().positive,
                    reference.to_payload().positive
                );
            }
        }
    }

    #[test]
    fn feed_rejects_bad_frames_atomically() {
        let mut agg = Aggregator::new(0.01, 256, 8).unwrap();
        agg.feed(&frame(
            SketchConfig::dense_collapsing(0.01, 256),
            [1.0, 2.0],
        ))
        .unwrap();
        // Corrupt bytes: truncation is Malformed, an unknown mapping
        // discriminant is a (semantic) Decode error; both are rejected.
        assert!(matches!(agg.feed(b"DDS2"), Err(SketchError::Malformed(_))));
        assert!(agg.feed(b"DDS2garbage").is_err());
        // Wrong store family and wrong alpha.
        assert!(matches!(
            agg.feed(&frame(SketchConfig::sparse(0.01), [1.0])),
            Err(SketchError::IncompatibleMerge(_))
        ));
        assert!(matches!(
            agg.feed(&frame(SketchConfig::dense_collapsing(0.02, 256), [1.0])),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // A differing max_bins is accepted: the resident bound governs.
        agg.feed(&frame(SketchConfig::dense_collapsing(0.01, 64), [3.0]))
            .unwrap();
        assert_eq!(agg.frames_received(), 2);
        assert_eq!(agg.count(), 3);
    }

    #[test]
    fn feed_stream_drains_a_frame_stream() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        let mut reference = config.build().unwrap();
        for k in 1..=10u32 {
            let bytes = frame(config, (1..=30).map(|i| f64::from(i * k)));
            reference
                .merge_from(&AnyDDSketch::decode(&bytes).unwrap())
                .unwrap();
            writer.write_frame(&bytes).unwrap();
        }
        let stream = writer.finish().unwrap();
        let mut agg = Aggregator::with_config(config, 4).unwrap();
        let mut reader = FrameReader::new(stream.as_slice()).unwrap();
        assert_eq!(agg.feed_stream(&mut reader).unwrap(), 10);
        let qs = [0.5, 0.99];
        assert_eq!(
            agg.quantiles(&qs).unwrap(),
            reference.quantiles(&qs).unwrap()
        );
    }

    #[test]
    fn empty_aggregator_behaviour() {
        let mut agg = Aggregator::new(0.01, 256, 4).unwrap();
        assert!(agg.is_empty());
        assert!(matches!(agg.quantile(0.5), Err(SketchError::Empty)));
        assert!(agg.quantiles(&[]).unwrap().is_empty());
        assert_eq!(agg.fold(), 0);
        // An empty payload is accepted and contributes nothing.
        agg.feed(&frame(SketchConfig::dense_collapsing(0.01, 256), []))
            .unwrap();
        assert!(agg.is_empty());
        assert!(matches!(agg.quantile(0.5), Err(SketchError::Empty)));
        assert!(Aggregator::new(0.01, 256, 0).is_err());
    }

    fn weighted_frame(
        config: SketchConfig,
        entries: impl IntoIterator<Item = (f64, f64)>,
    ) -> Vec<u8> {
        let mut s = AnyWeightedDDSketch::new(config).unwrap();
        for (v, w) in entries {
            s.add_with_count(v, w).unwrap();
        }
        s.encode()
    }

    #[test]
    fn weighted_aggregator_equals_decode_then_merge_over_mixed_dialects() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        for threshold in [1, 3, 100] {
            let mut agg = WeightedAggregator::with_config(config, threshold).unwrap();
            let mut reference = AnyWeightedDDSketch::new(config).unwrap();
            let mut frames: Vec<Vec<u8>> = Vec::new();
            // Integer frames (DDS2 wire) from the unweighted plane...
            for k in 1..=4u32 {
                frames.push(frame(config, (1..=40).map(|i| f64::from(i * k) * 0.3)));
            }
            // ...interleaved with genuinely fractional DDS3 frames.
            for k in 1..=4u32 {
                frames.push(weighted_frame(
                    config,
                    (1..=40).map(|i| (f64::from(i) * 1.7, f64::from(k) * 0.25)),
                ));
            }
            for bytes in &frames {
                agg.feed(bytes).unwrap();
                reference
                    .merge_from(&AnyWeightedDDSketch::decode(bytes).unwrap())
                    .unwrap();
            }
            assert_eq!(agg.frames_received(), frames.len() as u64);
            assert!((agg.weighted_count() - reference.weighted_count()).abs() < 1e-9);
            let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
            assert_eq!(
                agg.quantiles(&qs).unwrap(),
                reference.quantiles(&qs).unwrap(),
                "threshold {threshold}: weighted aggregator must equal decode-then-merge"
            );
            assert_eq!(agg.pending_frames(), 0, "quantiles folds everything");
        }
    }

    #[test]
    fn weighted_feed_rejects_bad_frames_atomically() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        let mut agg = WeightedAggregator::with_config(config, 8).unwrap();
        agg.feed(&weighted_frame(config, [(1.0, 2.5)])).unwrap();
        assert!(matches!(agg.feed(b"DDS3"), Err(SketchError::Malformed(_))));
        assert!(agg.feed(b"DDS3garbage").is_err());
        assert!(matches!(
            agg.feed(&weighted_frame(SketchConfig::sparse(0.01), [(1.0, 1.0)])),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // A differing max_bins is accepted: the resident bound governs.
        agg.feed(&weighted_frame(
            SketchConfig::dense_collapsing(0.01, 64),
            [(3.0, 0.5)],
        ))
        .unwrap();
        assert_eq!(agg.frames_received(), 2);
        assert_eq!(agg.weighted_count(), 3.0);
        assert!(WeightedAggregator::with_config(config, 0).is_err());
    }

    #[test]
    fn epoch_advances_only_on_data_changes() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        let mut agg = Aggregator::with_config(config, 4).unwrap();
        assert_eq!(agg.epoch(), 0);
        // Rejected frames leave the epoch untouched.
        assert!(agg.feed(b"DDS2").is_err());
        assert_eq!(agg.epoch(), 0);
        agg.feed(&frame(config, [1.0, 2.0])).unwrap();
        let after_feed = agg.epoch();
        assert!(after_feed > 0);
        // Folding nothing is not a data change; folding something is.
        agg.fold();
        let after_fold = agg.epoch();
        assert!(after_fold > after_feed);
        assert_eq!(agg.fold(), 0);
        assert_eq!(agg.epoch(), after_fold);
        // Queries never advance the epoch.
        agg.quantile(0.5).unwrap();
        assert_eq!(agg.epoch(), after_fold);

        let mut wagg = WeightedAggregator::with_config(config, 4).unwrap();
        assert_eq!(wagg.epoch(), 0);
        assert!(wagg.feed(b"DDS3").is_err());
        assert_eq!(wagg.epoch(), 0);
        wagg.feed(&weighted_frame(config, [(1.0, 2.5)])).unwrap();
        let after_feed = wagg.epoch();
        assert!(after_feed > 0);
        wagg.fold();
        let after_fold = wagg.epoch();
        assert!(after_fold > after_feed);
        assert_eq!(wagg.fold(), 0);
        assert_eq!(wagg.epoch(), after_fold);
        // A weighted quantile folds pending payloads first — with none
        // pending it must not move the epoch.
        wagg.quantile(0.5).unwrap();
        assert_eq!(wagg.epoch(), after_fold);
    }

    #[test]
    fn empty_weighted_aggregator_behaviour() {
        let config = SketchConfig::dense_collapsing(0.01, 256);
        let mut agg = WeightedAggregator::with_config(config, 4).unwrap();
        assert!(agg.is_empty());
        assert!(matches!(agg.quantile(0.5), Err(SketchError::Empty)));
        assert!(agg.quantiles(&[]).unwrap().is_empty());
        assert_eq!(agg.fold(), 0);
        agg.feed(&weighted_frame(config, [])).unwrap();
        assert!(agg.is_empty());
        assert!(matches!(agg.quantile(0.5), Err(SketchError::Empty)));
    }
}
