//! Time-windowed sketch aggregation.
//!
//! The paper's motivating deployment (Section 1): workers note the latency
//! of every request into a per-second sketch, ship the sketches to a
//! monitoring system, and the system "rolls up" fine windows into coarser
//! ones *perfectly accurately* — which is exactly what full mergeability
//! buys: a merged sketch is bucket-identical to a sketch built from the
//! union of the raw data.
//!
//! Metric names are interned once into dense [`MetricId`]s; every cell is
//! keyed by `(MetricId, window_start)`, so per-metric queries are
//! allocation-free range scans over just that metric's windows instead of
//! string-compare filters over every cell of every metric. Rollups ride
//! the k-way merge plane ([`AnyDDSketch::merge_many`]: one capacity
//! decision per coarse window), and [`TimeSeriesStore::evict_before`]
//! bounds a long-lived aggregator's memory.
//!
//! The store is generic over the runtime [`SketchConfig`]: an operator can
//! trade accuracy for memory per deployment (dense-collapsing for
//! production defaults, sparse for wide-range metrics) without a rebuild.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use ddsketch::codec::varint::{get_varint, put_varint};
use ddsketch::codec::{FrameReader, FrameWriter};
use ddsketch::{
    AnyDDSketch, MappingKind, SketchConfig, SketchError, SketchPayload, SketchSource, StoreKind,
};

/// Magic bytes opening a checkpoint's header frame.
const CHECKPOINT_MAGIC: &[u8; 4] = b"DDTS";
/// Current checkpoint header version.
const CHECKPOINT_VERSION: u8 = 1;

/// Per-frame ceiling for checkpoint streams: 1 GiB, far above any real
/// header (the metric-name table) or cell payload, far below an
/// allocation that takes the restoring process down.
///
/// Both ends share it: [`TimeSeriesStore::checkpoint`] refuses to write
/// a frame it exceeds (fail fast, instead of producing a checkpoint
/// that can never be restored), and [`TimeSeriesStore::restore`] passes
/// it as the reader's hostile-length clamp — deliberately wider than
/// the frame module's 16 MiB transport default, since a long-lived
/// store's interned name table alone can outgrow that.
const CHECKPOINT_MAX_FRAME_LEN: usize = 1 << 30;

/// Interned identifier of a metric name within one [`TimeSeriesStore`].
///
/// Assigned densely in first-seen order by the store's intern table; cell
/// keys, range scans, and rollup grouping all operate on this `Copy` id so
/// the hot read paths never allocate or compare strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u32);

/// A time-series store of sketches: one [`AnyDDSketch`] of a fixed
/// [`SketchConfig`] per (metric, window) cell.
#[derive(Debug)]
pub struct TimeSeriesStore {
    config: SketchConfig,
    /// Window width in seconds.
    window_secs: u64,
    /// Metric name → id; lookup by `&str` allocates nothing.
    ids: HashMap<String, MetricId>,
    /// Id → metric name (index = id).
    names: Vec<String>,
    /// Cells ordered by (metric, window): one metric's whole series is a
    /// contiguous key range.
    cells: BTreeMap<(MetricId, u64), AnyDDSketch>,
    /// Monotonic data epoch: bumped on every successful record/absorb
    /// and every non-empty eviction, so `epoch() unchanged` ⟺ `series
    /// answers unchanged`.
    epoch: AtomicU64,
}

impl TimeSeriesStore {
    /// Create a store whose cells use the given sketch configuration.
    pub fn with_config(config: SketchConfig, window_secs: u64) -> Result<Self, SketchError> {
        if window_secs == 0 {
            return Err(SketchError::InvalidConfig(
                "window_secs must be positive".into(),
            ));
        }
        config.validate()?;
        Ok(Self {
            config,
            window_secs,
            ids: HashMap::new(),
            names: Vec::new(),
            cells: BTreeMap::new(),
            epoch: AtomicU64::new(0),
        })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(alpha: f64, max_bins: usize, window_secs: u64) -> Result<Self, SketchError> {
        Self::with_config(SketchConfig::dense_collapsing(alpha, max_bins), window_secs)
    }

    /// The sketch configuration every cell uses.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Number of live (metric, window) cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Monotonic data epoch: advanced by every successful
    /// record/absorb and every eviction that dropped at least one cell
    /// (a relaxed atomic, cheap to probe through `&self`). An unchanged
    /// epoch guarantees every series answer is unchanged — the
    /// invalidation contract for read-side caches layered on the store.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Align a timestamp down to its window start.
    pub fn window_of(&self, ts_secs: u64) -> u64 {
        ts_secs - ts_secs % self.window_secs
    }

    /// The interned id of `metric`, if the store has ever seen it.
    /// Allocation-free.
    pub fn metric_id(&self, metric: &str) -> Option<MetricId> {
        self.ids.get(metric).copied()
    }

    /// The name behind an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn metric_name(&self, id: MetricId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Every interned metric in id (= first-seen) order, with or without
    /// live cells.
    pub fn metrics(&self) -> impl Iterator<Item = (MetricId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, name)| (MetricId(i as u32), name.as_str()))
    }

    /// Intern `metric`, allocating its name only on first sight.
    fn intern(&mut self, metric: &str) -> MetricId {
        if let Some(&id) = self.ids.get(metric) {
            return id;
        }
        let id = MetricId(self.names.len() as u32);
        self.names.push(metric.to_string());
        self.ids.insert(metric.to_string(), id);
        id
    }

    /// The key range holding every cell of `id`.
    fn metric_range(id: MetricId) -> std::ops::RangeInclusive<(MetricId, u64)> {
        (id, 0)..=(id, u64::MAX)
    }

    /// Run `op` against the cell for `(metric, window_start)`, interning
    /// the metric and creating the cell only if `op` succeeds — so a
    /// rejected record/absorb on a not-yet-existing cell (or metric)
    /// leaves no phantom empty cell and no phantom intern-table entry
    /// behind (every `op` used here mutates the sketch atomically, so
    /// existing cells are likewise untouched on failure).
    fn with_cell(
        &mut self,
        metric: &str,
        window_start: u64,
        op: impl FnOnce(&mut AnyDDSketch) -> Result<(), SketchError>,
    ) -> Result<(), SketchError> {
        if let Some(id) = self.metric_id(metric) {
            if let Some(cell) = self.cells.get_mut(&(id, window_start)) {
                op(cell)?;
                self.epoch.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        let mut fresh = self.config.build().expect("validated in constructor");
        op(&mut fresh)?;
        let id = self.intern(metric);
        self.cells.insert((id, window_start), fresh);
        self.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Record a single observation for `metric` at time `ts_secs`.
    pub fn record(&mut self, metric: &str, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.with_cell(metric, window, |cell| cell.add(value))
    }

    /// Record `count` occurrences of `value` in one insertion — the
    /// weight-aware rollup path for pre-aggregated client submissions.
    /// Bit-identical to calling [`TimeSeriesStore::record`] `count` times
    /// (one bucket increment instead of `count`); `count == 0` validates
    /// `value` and adds nothing.
    pub fn record_with_count(
        &mut self,
        metric: &str,
        ts_secs: u64,
        value: f64,
        count: u64,
    ) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.with_cell(metric, window, |cell| cell.add_with_count(value, count))
    }

    /// Record a batch of observations sharing one timestamp window — one
    /// cell lookup and one bulk sketch ingestion for the whole slice.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: if any value
    /// is unsupported, the cell is left unchanged.
    pub fn record_slice(
        &mut self,
        metric: &str,
        ts_secs: u64,
        values: &[f64],
    ) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.with_cell(metric, window, |cell| cell.add_slice(values))
    }

    /// Absorb a sketch shipped by an agent for `(metric, window_start)` —
    /// the paper's merge path. Fully mergeable: repeated absorption equals
    /// having seen all the raw points.
    ///
    /// Sketches from a different variant (mapping or store family) or a
    /// different `α` are rejected with `IncompatibleMerge`, leaving the
    /// store untouched. A same-variant sketch with a different `max_bins`
    /// is accepted — bucket boundaries agree, and the cell re-collapses
    /// to its own bound (Algorithm 4) — though an agent whose smaller
    /// bound already collapsed buckets carries that accuracy loss with it.
    pub fn absorb(
        &mut self,
        metric: &str,
        window_start: u64,
        sketch: &AnyDDSketch,
    ) -> Result<(), SketchError> {
        let window = self.window_of(window_start);
        self.with_cell(metric, window, |cell| cell.merge_from(sketch))
    }

    /// Merge one decoded wire payload into the cell for `metric` at
    /// `window_start` — the staging-buffer counterpart of
    /// [`TimeSeriesStore::absorb`], so a receiver that already ran
    /// [`ddsketch::SketchPayload::decode_into`] (the fleet server's
    /// ingest workers) never materializes a sketch per frame: the bins
    /// flow straight from the staged payload into the cell's stores via
    /// one bulk `add_bins` pass.
    ///
    /// Admission follows [`ddsketch::SketchPayload::matches_config`]:
    /// mapping/store-family or α mismatches are rejected with
    /// `IncompatibleMerge` before any mutation; a differing `max_bins`
    /// is accepted (the cell's own bound governs, Algorithm 4).
    pub fn absorb_payload(
        &mut self,
        metric: &str,
        window_start: u64,
        payload: &SketchPayload,
    ) -> Result<(), SketchError> {
        if !payload.matches_config(&self.config) {
            return Err(SketchError::IncompatibleMerge(format!(
                "store runs {:?}, payload is (mapping {:?}, store {:?}, α={})",
                self.config,
                MappingKind::from_u8(payload.kind),
                StoreKind::from_u8(payload.store),
                payload.relative_accuracy
            )));
        }
        let window = self.window_of(window_start);
        self.with_cell(metric, window, |cell| {
            cell.merge_sources(std::iter::once(SketchSource::Payload(payload)))
        })
    }

    /// Quantile estimate for one cell, if present and non-empty.
    /// Allocation-free: an interned-id lookup, one cell probe, and a
    /// cumulative bin walk.
    pub fn quantile(&self, metric: &str, window_start: u64, q: f64) -> Option<f64> {
        let id = self.metric_id(metric)?;
        self.cells
            .get(&(id, window_start))
            .and_then(|s| s.quantile(q).ok())
    }

    /// The quantile time series for a metric: `(window_start, estimate)`
    /// for every window that has data — the data behind the paper's
    /// Figures 2 and 4. A range scan over just this metric's cells;
    /// only the returned series is allocated.
    pub fn quantile_series(&self, metric: &str, q: f64) -> Vec<(u64, f64)> {
        let Some(id) = self.metric_id(metric) else {
            return Vec::new();
        };
        self.cells
            .range(Self::metric_range(id))
            .filter_map(|(&(_, window), s)| s.quantile(q).ok().map(|v| (window, v)))
            .collect()
    }

    /// The average time series for a metric (the paper's Figure 2 dotted
    /// line — exact, since sums and counts merge exactly).
    pub fn average_series(&self, metric: &str) -> Vec<(u64, f64)> {
        let Some(id) = self.metric_id(metric) else {
            return Vec::new();
        };
        self.cells
            .range(Self::metric_range(id))
            .filter_map(|(&(_, window), s)| s.average().map(|v| (window, v)))
            .collect()
    }

    /// Total observation count across all cells of a metric.
    /// Allocation-free range scan.
    pub fn metric_count(&self, metric: &str) -> u64 {
        let Some(id) = self.metric_id(metric) else {
            return 0;
        };
        self.cells
            .range(Self::metric_range(id))
            .map(|(_, s)| s.count())
            .sum()
    }

    /// Roll the store up into `factor`-times-wider windows, merging the
    /// sketches of each group ("rolling up the sums and counts ... over
    /// much larger time periods perfectly accurately" — and with DDSketch,
    /// the same now holds for quantiles).
    ///
    /// Each coarse window is produced by **one** k-way
    /// [`AnyDDSketch::merge_many`] over its fine cells — one capacity
    /// decision per coarse cell instead of one merge per fine cell — and
    /// is bucket-identical to ingesting the union directly.
    pub fn rollup(&self, factor: u64) -> Result<TimeSeriesStore, SketchError> {
        if factor == 0 {
            return Err(SketchError::InvalidConfig(
                "rollup factor must be positive".into(),
            ));
        }
        let coarse_secs = self.window_secs.checked_mul(factor).ok_or_else(|| {
            SketchError::InvalidConfig(format!("rollup factor {factor} overflows the window width"))
        })?;
        let mut out = TimeSeriesStore::with_config(self.config, coarse_secs)?;
        // Cells are ordered by (metric, window), so each (metric, coarse
        // window) group is a contiguous run.
        let mut cells = self.cells.iter().peekable();
        let mut group: Vec<&AnyDDSketch> = Vec::new();
        while let Some((&(id, window), sketch)) = cells.next() {
            let coarse = window - window % coarse_secs;
            group.push(sketch);
            let group_continues = matches!(
                cells.peek(),
                Some(&(&(next_id, next_window), _))
                    if next_id == id && next_window - next_window % coarse_secs == coarse
            );
            if group_continues {
                continue;
            }
            let mut merged = self.config.build().expect("validated in constructor");
            merged.merge_many(&group)?;
            group.clear();
            let out_id = out.intern(self.metric_name(id));
            out.cells.insert((out_id, coarse), merged);
        }
        Ok(out)
    }

    /// Drop every cell whose window starts before `window_start`; returns
    /// how many were evicted. This is the retention knob that keeps a
    /// long-lived aggregator bounded: a rollup of the old windows can be
    /// taken first, then the fine cells evicted.
    ///
    /// Interned metric names are retained (they are bounded by the number
    /// of distinct metrics, not by time).
    pub fn evict_before(&mut self, window_start: u64) -> usize {
        let before = self.cells.len();
        self.cells.retain(|&(_, window), _| window >= window_start);
        let evicted = before - self.cells.len();
        if evicted > 0 {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// The newest window start across every cell, if the store holds
    /// any data.
    pub fn newest_window(&self) -> Option<u64> {
        self.cells.keys().map(|&(_, window)| window).max()
    }

    /// TTL retention, driven by the data itself: keep every cell that
    /// overlaps the trailing `width_secs` seconds ending at the newest
    /// cell's end, evict the rest ([`TimeSeriesStore::evict_before`]).
    /// Returns how many cells were dropped.
    ///
    /// Anchoring the horizon on the newest *recorded* window — not the
    /// wall clock — makes retention deployment-agnostic: stores fed
    /// historical or synthetic timestamps age out relative to their own
    /// stream. A zero width or an empty store is a no-op.
    pub fn retain_recent(&mut self, width_secs: u64) -> usize {
        if width_secs == 0 {
            return 0;
        }
        let Some(newest) = self.newest_window() else {
            return 0;
        };
        let end = newest.saturating_add(self.window_secs);
        let lo = end.saturating_sub(width_secs);
        // Cells are atomic: a cell [s, s + w) survives iff it overlaps
        // [lo, end), i.e. s + w > lo — the same whole-cell convention as
        // [`TimeSeriesStore::sliding_view`].
        self.evict_before(lo.saturating_sub(self.window_secs - 1))
    }

    /// Iterate over all cells as `(metric name, window_start, sketch)`,
    /// ascending by metric id, then window.
    pub fn cells(&self) -> impl Iterator<Item = (&str, u64, &AnyDDSketch)> {
        self.cells
            .iter()
            .map(|(&(id, window), s)| (self.metric_name(id), window, s))
    }

    /// A trailing-width view over a metric's newest cells: the sliding
    /// "p99 over the last `width_secs` seconds" read, answered straight
    /// from the fixed cells already in the store (no re-bucketing, no
    /// copied sketches — the view borrows them).
    ///
    /// "Now" is the end of the metric's newest cell; every cell
    /// overlapping the trailing `width_secs` is included whole (cells are
    /// atomic, so the effective span is `width_secs` rounded up to cell
    /// boundaries). Returns `None` for an unknown metric, a metric with
    /// no cells, or a zero width. For a continuously fed stream prefer
    /// [`crate::SlidingWindowSketch`], which also evicts as it slides;
    /// this adapter is the ad-hoc query over data a store already holds.
    pub fn sliding_view(&self, metric: &str, width_secs: u64) -> Option<SlidingView<'_>> {
        if width_secs == 0 {
            return None;
        }
        let id = self.metric_id(metric)?;
        let (&(_, newest), _) = self.cells.range(Self::metric_range(id)).next_back()?;
        let end = newest.saturating_add(self.window_secs);
        let lo = end.saturating_sub(width_secs);
        // A cell [s, s + w) overlaps [lo, end) iff s + w > lo.
        let first = lo.saturating_sub(self.window_secs - 1);
        let mut start = newest;
        let mut cells = Vec::new();
        for (&(_, window), sketch) in self.cells.range((id, first)..=(id, newest)) {
            start = start.min(window);
            cells.push(sketch);
        }
        Some(SlidingView { cells, start, end })
    }

    /// Snapshot the whole store — configuration, interned metric table,
    /// and every `(metric, window)` cell — into a
    /// [`ddsketch::codec`] frame stream on `sink`, returning the sink.
    ///
    /// The first frame is a header (`"DDTS"` + version, the sketch
    /// configuration, the window width, the metric-name table in interned
    /// id order, and the cell count); each subsequent frame is one cell:
    /// `varint metric_id`, `varint window_start`, then the cell's `DDS2`
    /// payload bytes. [`TimeSeriesStore::restore`] rebuilds a store that
    /// is **exactly** equal — same interned ids (even for metrics whose
    /// cells were all evicted), same cells, bit-identical quantiles —
    /// property-tested in the workspace suite.
    pub fn checkpoint<W: std::io::Write>(&self, sink: W) -> Result<W, SketchError> {
        let mut writer = FrameWriter::new(sink)?;
        let write_frame = |writer: &mut FrameWriter<W>, frame: &[u8]| {
            if frame.len() > CHECKPOINT_MAX_FRAME_LEN {
                return Err(SketchError::Io(format!(
                    "checkpoint frame of {} bytes exceeds the {CHECKPOINT_MAX_FRAME_LEN}-byte \
                     ceiling (roll up or evict before checkpointing)",
                    frame.len()
                )));
            }
            writer.write_frame(frame)
        };
        let mut frame = Vec::new();
        frame.extend_from_slice(CHECKPOINT_MAGIC);
        frame.push(CHECKPOINT_VERSION);
        frame.push(self.config.mapping as u8);
        frame.push(self.config.store as u8);
        frame.extend_from_slice(&self.config.alpha.to_le_bytes());
        put_varint(&mut frame, self.config.max_bins as u64);
        put_varint(&mut frame, self.window_secs);
        put_varint(&mut frame, self.names.len() as u64);
        for name in &self.names {
            put_varint(&mut frame, name.len() as u64);
            frame.extend_from_slice(name.as_bytes());
        }
        put_varint(&mut frame, self.cells.len() as u64);
        write_frame(&mut writer, &frame)?;
        for (&(id, window), sketch) in &self.cells {
            frame.clear();
            put_varint(&mut frame, u64::from(id.0));
            put_varint(&mut frame, window);
            frame.extend_from_slice(&sketch.encode());
            write_frame(&mut writer, &frame)?;
        }
        writer.finish()
    }

    /// Rebuild a store from a [`TimeSeriesStore::checkpoint`] stream.
    ///
    /// Metric ids are re-interned from the header's name table in its
    /// original order, so every restored id equals the checkpointed one.
    /// The stream is held to the same hostile-input standard as the
    /// payload codec: truncation, duplicate names or cells, out-of-range
    /// ids, unaligned windows, cell payloads whose configuration differs
    /// from the header's, and trailing garbage all fail with
    /// [`SketchError::Malformed`]/[`SketchError::Decode`] — never a panic,
    /// never an unbounded allocation.
    pub fn restore<R: std::io::Read>(source: R) -> Result<Self, SketchError> {
        let mut reader = FrameReader::with_max_frame_len(source, CHECKPOINT_MAX_FRAME_LEN)?;
        let mut frame = Vec::new();
        if reader.read_frame(&mut frame)?.is_none() {
            return Err(SketchError::Malformed(
                "checkpoint missing its header frame".into(),
            ));
        }
        let mut buf: &[u8] = &frame;
        if buf.len() < 5 || &buf[..4] != CHECKPOINT_MAGIC {
            return Err(SketchError::Malformed("bad checkpoint magic".into()));
        }
        if buf[4] != CHECKPOINT_VERSION {
            return Err(SketchError::Decode(format!(
                "unsupported checkpoint version {}",
                buf[4]
            )));
        }
        buf = &buf[5..];
        if buf.len() < 10 {
            return Err(SketchError::Malformed("truncated checkpoint header".into()));
        }
        let mapping = MappingKind::from_u8(buf[0])?;
        let store_kind = StoreKind::from_u8(buf[1])?;
        let alpha = f64::from_le_bytes(buf[2..10].try_into().expect("checked length"));
        buf = &buf[10..];
        let max_bins = usize::try_from(get_varint(&mut buf)?)
            .map_err(|_| SketchError::Malformed("checkpoint max_bins exceeds usize".into()))?;
        let window_secs = get_varint(&mut buf)?;
        let config = SketchConfig {
            alpha,
            mapping,
            store: store_kind,
            max_bins,
        };
        let mut store = TimeSeriesStore::with_config(config, window_secs)?;
        let num_names = get_varint(&mut buf)?;
        // Every name costs at least its 1-byte length varint: clamp the
        // declared table size before looping.
        let num_names = usize::try_from(num_names)
            .ok()
            .filter(|&n| n <= buf.len())
            .ok_or_else(|| {
                SketchError::Malformed(format!("metric table of {num_names} exceeds header"))
            })?;
        for k in 0..num_names {
            let len = usize::try_from(get_varint(&mut buf)?)
                .ok()
                .filter(|&len| len <= buf.len())
                .ok_or_else(|| SketchError::Malformed("metric name exceeds header".into()))?;
            let (name, rest) = buf.split_at(len);
            buf = rest;
            let name = std::str::from_utf8(name)
                .map_err(|_| SketchError::Malformed("metric name is not UTF-8".into()))?;
            let id = store.intern(name);
            if id.0 as usize != k {
                return Err(SketchError::Malformed(format!(
                    "duplicate metric name {name:?} in checkpoint table"
                )));
            }
        }
        let declared_cells = get_varint(&mut buf)?;
        if !buf.is_empty() {
            return Err(SketchError::Malformed(
                "trailing bytes after the checkpoint header".into(),
            ));
        }
        let mut restored = 0u64;
        while reader.read_frame(&mut frame)?.is_some() {
            let mut buf: &[u8] = &frame;
            let id = get_varint(&mut buf)?;
            let id = u32::try_from(id)
                .ok()
                .filter(|&id| (id as usize) < store.names.len())
                .ok_or_else(|| {
                    SketchError::Malformed(format!("cell names unknown metric id {id}"))
                })?;
            let window = get_varint(&mut buf)?;
            if window % store.window_secs != 0 {
                return Err(SketchError::Malformed(format!(
                    "cell window {window} is not aligned to {}s",
                    store.window_secs
                )));
            }
            // The payload decoder owns the rest of the frame (and rejects
            // trailing bytes itself).
            let sketch = AnyDDSketch::decode(buf)?;
            if sketch.config() != config {
                return Err(SketchError::Decode(format!(
                    "cell configured as {:?} in a {:?} checkpoint",
                    sketch.config(),
                    config
                )));
            }
            if store.cells.insert((MetricId(id), window), sketch).is_some() {
                return Err(SketchError::Malformed(format!(
                    "duplicate cell (metric {id}, window {window})"
                )));
            }
            restored += 1;
        }
        if restored != declared_cells {
            return Err(SketchError::Malformed(format!(
                "checkpoint declared {declared_cells} cells, stream held {restored}"
            )));
        }
        Ok(store)
    }
}

/// A borrowed trailing-window view from
/// [`TimeSeriesStore::sliding_view`]: quantile queries run one zero-copy
/// k-way [`AnyDDSketch::merged_quantiles`] walk over the covered cells.
#[derive(Debug)]
pub struct SlidingView<'a> {
    cells: Vec<&'a AnyDDSketch>,
    start: u64,
    end: u64,
}

impl SlidingView<'_> {
    /// Number of cells the view covers.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The covered time range `[start, end)` in seconds: `start` is the
    /// oldest covered cell's window start, `end` the newest cell's end.
    pub fn range(&self) -> (u64, u64) {
        (self.start, self.end)
    }

    /// Total observation count inside the view.
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|s| s.count()).sum()
    }

    /// Estimate several quantiles over the view — one k-way walk over the
    /// borrowed cells, no materialized merge.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        AnyDDSketch::merged_quantiles(&self.cells, qs)
    }

    /// Convenience: a single quantile via [`Self::quantiles`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(TimeSeriesStore::new(0.01, 2048, 0).is_err());
        assert!(TimeSeriesStore::new(0.0, 2048, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 0, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 2048, 10).is_ok());
        assert!(TimeSeriesStore::with_config(SketchConfig::sparse(0.01), 10).is_ok());
        assert!(TimeSeriesStore::with_config(SketchConfig::sparse(0.0), 10).is_err());
    }

    #[test]
    fn records_are_windowed() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("api.latency", 3, 1.0).unwrap();
        ts.record("api.latency", 9, 2.0).unwrap();
        ts.record("api.latency", 10, 3.0).unwrap();
        ts.record("api.latency", 25, 4.0).unwrap();
        assert_eq!(ts.num_cells(), 3); // windows 0, 10, 20
        assert_eq!(ts.metric_count("api.latency"), 4);
        assert_eq!(ts.quantile_series("api.latency", 0.5).len(), 3);
    }

    #[test]
    fn record_slice_matches_record() {
        let mut scalar = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut batched = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let values: Vec<f64> = (1..=5000).map(|i| 0.1 + f64::from(i) * 0.01).collect();
        for &v in &values {
            scalar.record("m", 17, v).unwrap();
        }
        for chunk in values.chunks(512) {
            batched.record_slice("m", 17, chunk).unwrap();
        }
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(batched.quantile("m", 10, q), scalar.quantile("m", 10, q));
        }
        // A bad value fails the batch without touching the cell.
        assert!(batched.record_slice("m", 17, &[1.0, f64::NAN]).is_err());
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
    }

    #[test]
    fn metrics_are_isolated() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("a", 0, 1.0).unwrap();
        ts.record("b", 0, 100.0).unwrap();
        let qa = ts.quantile("a", 0, 0.5).unwrap();
        let qb = ts.quantile("b", 0, 0.5).unwrap();
        assert!(qa < 2.0 && qb > 90.0);
        assert!(ts.quantile("c", 0, 0.5).is_none());
    }

    #[test]
    fn per_metric_queries_never_observe_other_metrics() {
        // Prefix-sharing names and interleaved windows: the range scan
        // must cover exactly one metric's cells, nothing more.
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for (metric, base) in [("api", 1.0), ("api.latency", 100.0), ("ap", 10_000.0)] {
            for w in 0..5u64 {
                ts.record(metric, w * 10, base + w as f64).unwrap();
                ts.record(metric, w * 10, base + w as f64).unwrap();
            }
        }
        // Extreme windows on a neighbouring id must not leak into range
        // scans either.
        ts.record("api.latency", u64::MAX - 1, 100.0).unwrap();
        assert_eq!(ts.metric_count("api"), 10);
        assert_eq!(ts.metric_count("api.latency"), 11);
        assert_eq!(ts.metric_count("ap"), 10);
        assert_eq!(ts.metric_count("a"), 0);
        assert_eq!(ts.quantile_series("api", 0.5).len(), 5);
        assert_eq!(ts.quantile_series("api.latency", 0.5).len(), 6);
        for (w, v) in ts.quantile_series("api", 0.99) {
            assert!(
                (1.0..=6.0).contains(&v),
                "metric 'api' window {w} leaked foreign value {v}"
            );
        }
        for (_, v) in ts.average_series("ap") {
            assert!(v >= 10_000.0);
        }
        // Ids round-trip through names.
        let id = ts.metric_id("api.latency").unwrap();
        assert_eq!(ts.metric_name(id), "api.latency");
        assert_eq!(ts.metrics().count(), 3);
        assert!(ts.metric_id("api.lat").is_none());
    }

    #[test]
    fn rollup_is_exactly_the_union_under_every_config() {
        for config in SketchConfig::all(0.01, 2048) {
            let mut fine = TimeSeriesStore::with_config(config, 1).unwrap();
            let mut coarse_direct = TimeSeriesStore::with_config(config, 60).unwrap();
            for t in 0..600u64 {
                let v = 1.0 + (t % 97) as f64;
                fine.record("m", t, v).unwrap();
                coarse_direct.record("m", t, v).unwrap();
            }
            let rolled = fine.rollup(60).unwrap();
            assert_eq!(rolled.config(), config);
            assert_eq!(rolled.num_cells(), coarse_direct.num_cells());
            for (metric, window, direct) in coarse_direct.cells() {
                let merged = rolled.quantile(metric, window, 0.9).unwrap();
                assert_eq!(
                    merged,
                    direct.quantile(0.9).unwrap(),
                    "{}: rollup must equal direct ingestion for window {}",
                    config.name(),
                    window
                );
            }
        }
    }

    #[test]
    fn rollup_groups_multiple_metrics() {
        let mut fine = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for w in 0..12u64 {
            fine.record("a", w * 10, 1.0 + w as f64).unwrap();
            fine.record("b", w * 10, 100.0 + w as f64).unwrap();
        }
        let rolled = fine.rollup(6).unwrap();
        assert_eq!(rolled.num_cells(), 4); // 2 metrics × 2 coarse windows
        assert_eq!(rolled.metric_count("a"), 12);
        assert_eq!(rolled.metric_count("b"), 12);
        for (_, v) in rolled.quantile_series("a", 0.5) {
            assert!(v < 50.0);
        }
        for (_, v) in rolled.quantile_series("b", 0.5) {
            assert!(v > 50.0);
        }
    }

    #[test]
    fn absorb_equals_record() {
        use ddsketch::AnyDDSketch;
        let mut via_absorb = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut via_record = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut agent_sketch = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        for i in 1..=100 {
            let v = f64::from(i) * 0.5;
            agent_sketch.add(v).unwrap();
            via_record.record("m", 42, v).unwrap();
        }
        via_absorb.absorb("m", 42, &agent_sketch).unwrap();
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(
                via_absorb.quantile("m", 40, q).unwrap(),
                via_record.quantile("m", 40, q).unwrap()
            );
        }
        // Statically-typed producers convert losslessly into the store.
        let mut preset = ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap();
        preset.add(1.0).unwrap();
        let any: AnyDDSketch = preset.into();
        via_absorb.absorb("m", 42, &any).unwrap();
    }

    #[test]
    fn absorb_rejects_mismatched_configs() {
        let mut ts = TimeSeriesStore::with_config(SketchConfig::sparse(0.01), 10).unwrap();
        let foreign = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        assert!(matches!(
            ts.absorb("m", 0, &foreign),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // The rejection must not leave a phantom empty cell behind — a
        // long-lived aggregator fed bad payloads must not grow.
        assert_eq!(ts.num_cells(), 0);
        // Same for an existing cell: rejected absorb leaves it untouched.
        ts.record("m", 0, 1.0).unwrap();
        assert!(ts.absorb("m", 0, &foreign).is_err());
        assert_eq!(ts.num_cells(), 1);
        assert_eq!(ts.metric_count("m"), 1);
    }

    #[test]
    fn rejected_writes_leave_no_phantom_cells_or_metrics() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(ts.record("m", 0, f64::NAN).is_err());
        assert!(ts.record_slice("m", 0, &[1.0, f64::INFINITY]).is_err());
        assert_eq!(ts.num_cells(), 0, "failed writes must not create cells");
        assert_eq!(ts.quantile_series("m", 0.5), vec![]);
        // Nor may they leak entries into the intern table: a long-lived
        // aggregator fed bad payloads under ever-fresh names must not
        // grow at all.
        assert!(ts.metric_id("m").is_none());
        assert_eq!(ts.metrics().count(), 0);
        // A later valid write interns normally.
        ts.record("m", 0, 1.0).unwrap();
        assert!(ts.metric_id("m").is_some());
        assert_eq!(ts.metrics().count(), 1);
    }

    #[test]
    fn average_series_is_exact() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for v in [1.0, 2.0, 3.0] {
            ts.record("m", 5, v).unwrap();
        }
        let series = ts.average_series("m");
        assert_eq!(series, vec![(0, 2.0)]);
    }

    #[test]
    fn rollup_factor_validation() {
        let ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(ts.rollup(0).is_err());
        assert!(ts.rollup(6).is_ok());
        assert!(ts.rollup(u64::MAX).is_err(), "overflowing widths error");
    }

    #[test]
    fn sliding_view_covers_the_trailing_width() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for w in 0..12u64 {
            // One value per 10s cell: 100 + cell index.
            ts.record("m", w * 10, 100.0 + w as f64).unwrap();
        }
        // Newest cell is [110, 120); a 30s view covers cells 90, 100, 110.
        let view = ts.sliding_view("m", 30).unwrap();
        assert_eq!(view.num_cells(), 3);
        assert_eq!(view.range(), (90, 120));
        assert_eq!(view.count(), 3);
        let p100 = view.quantile(1.0).unwrap();
        let p0 = view.quantile(0.0).unwrap();
        assert!((111.0 * 0.99..=111.0 * 1.01).contains(&p100));
        assert!((109.0 * 0.99..=109.0 * 1.01).contains(&p0));
        // The view must equal a from-scratch sketch over the same cells.
        let mut union = ts.config().build().unwrap();
        for v in [109.0, 110.0, 111.0] {
            union.add(v).unwrap();
        }
        let qs = [0.0, 0.5, 1.0];
        assert_eq!(view.quantiles(&qs).unwrap(), union.quantiles(&qs).unwrap());
        // A width smaller than one cell still covers the newest cell.
        let view = ts.sliding_view("m", 1).unwrap();
        assert_eq!(view.num_cells(), 1);
        // A width beyond the data covers everything.
        let view = ts.sliding_view("m", 10_000).unwrap();
        assert_eq!(view.num_cells(), 12);
        assert_eq!(view.count(), 12);
        // Unknown metric, empty store, zero width.
        assert!(ts.sliding_view("nope", 30).is_none());
        assert!(ts.sliding_view("m", 0).is_none());
        let empty = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(empty.sliding_view("m", 30).is_none());
    }

    #[test]
    fn checkpoint_restore_roundtrips_exactly() {
        for config in SketchConfig::all(0.01, 256) {
            let mut ts = TimeSeriesStore::with_config(config, 10).unwrap();
            for (metric, scale) in [("api.home", 1.0), ("api.checkout", 50.0), ("db", 0.01)] {
                for w in 0..8u64 {
                    for i in 1..=20u32 {
                        let sign = if i % 6 == 0 { -1.0 } else { 1.0 };
                        ts.record(
                            metric,
                            w * 10 + u64::from(i) % 10,
                            sign * scale * f64::from(i),
                        )
                        .unwrap();
                    }
                }
            }
            // A metric whose cells are later all evicted must still keep
            // its interned id through the round trip.
            ts.record("ephemeral", 0, 1.0).unwrap();
            ts.evict_before(5);

            let bytes = ts.checkpoint(Vec::new()).unwrap();
            let restored = TimeSeriesStore::restore(bytes.as_slice()).unwrap();
            assert_eq!(restored.config(), ts.config(), "{}", config.name());
            assert_eq!(restored.window_secs(), ts.window_secs());
            assert_eq!(restored.num_cells(), ts.num_cells());
            // Ids and names identical, including the cell-less metric.
            for (id, name) in ts.metrics() {
                assert_eq!(restored.metric_id(name), Some(id));
                assert_eq!(restored.metric_name(id), name);
            }
            // Every cell bit-identical.
            for ((metric, window, original), (rm, rw, restored_cell)) in
                ts.cells().zip(restored.cells())
            {
                assert_eq!((metric, window), (rm, rw));
                assert_eq!(
                    original.to_payload(),
                    restored_cell.to_payload(),
                    "{}: cell ({metric}, {window})",
                    config.name()
                );
            }
            // And the restored store keeps working.
            let mut restored = restored;
            restored.record("api.home", 200, 9.0).unwrap();
            assert_eq!(
                restored.metric_count("api.home"),
                ts.metric_count("api.home") + 1
            );
        }

        // An empty store round-trips too.
        let empty = TimeSeriesStore::new(0.01, 256, 10).unwrap();
        let restored =
            TimeSeriesStore::restore(empty.checkpoint(Vec::new()).unwrap().as_slice()).unwrap();
        assert_eq!(restored.num_cells(), 0);
        assert_eq!(restored.metrics().count(), 0);
    }

    /// Regression: the restore reader's hostile-length clamp must sit
    /// above anything `checkpoint` legitimately writes. A store with a
    /// large interned-name table produces a header frame beyond the
    /// frame module's 16 MiB transport default — it must still restore.
    #[test]
    fn checkpoint_restores_headers_beyond_the_transport_frame_default() {
        let mut ts = TimeSeriesStore::new(0.01, 64, 10).unwrap();
        // ~2000 metrics × ~10 kB names ≈ 20 MB of header.
        for k in 0..2000u32 {
            let name = format!("{k}.{}", "m".repeat(10_000));
            ts.record(&name, 0, 1.0).unwrap();
        }
        let bytes = ts.checkpoint(Vec::new()).unwrap();
        assert!(
            bytes.len() > 16 << 20,
            "test wants a header beyond the 16 MiB transport default"
        );
        let restored = TimeSeriesStore::restore(bytes.as_slice()).unwrap();
        assert_eq!(restored.num_cells(), ts.num_cells());
        assert_eq!(restored.metrics().count(), 2000);
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let mut ts = TimeSeriesStore::new(0.01, 256, 10).unwrap();
        ts.record("m", 5, 1.0).unwrap();
        ts.record("n", 25, 2.0).unwrap();
        let bytes = ts.checkpoint(Vec::new()).unwrap();

        // Sanity: the pristine stream restores.
        assert!(TimeSeriesStore::restore(bytes.as_slice()).is_ok());
        // Every strict prefix fails cleanly (truncated header, truncated
        // cell frames, missing cells vs the declared count).
        for cut in 0..bytes.len() {
            assert!(
                TimeSeriesStore::restore(&bytes[..cut]).is_err(),
                "prefix of length {cut} restored"
            );
        }
        // Trailing garbage after the last cell.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(TimeSeriesStore::restore(extended.as_slice()).is_err());
        // Flip one byte at a time through the whole stream: restore must
        // error or produce a store, never panic. (Most flips corrupt;
        // some — e.g. inside a count — survive as a different store.)
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            let _ = TimeSeriesStore::restore(flipped.as_slice());
        }
    }

    #[test]
    fn retain_recent_keeps_the_trailing_width() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert_eq!(ts.newest_window(), None);
        assert_eq!(ts.retain_recent(30), 0, "empty store is a no-op");
        for w in 0..10u64 {
            ts.record("a", w * 10, 1.0).unwrap();
            ts.record("b", w * 10, 2.0).unwrap();
        }
        assert_eq!(ts.newest_window(), Some(90));
        assert_eq!(ts.retain_recent(0), 0, "zero width is a no-op");
        // Newest cell ends at 100; a 30s trail keeps windows ≥ 70.
        assert_eq!(ts.retain_recent(30), 14);
        assert_eq!(ts.num_cells(), 6);
        for (_, window, _) in ts.cells() {
            assert!(window >= 70);
        }
        // Already within the width: nothing further to evict.
        assert_eq!(ts.retain_recent(30), 0);
        // A width wider than the data keeps everything.
        assert_eq!(ts.retain_recent(u64::MAX), 0);
        // A sub-window width still keeps the newest cell (it overlaps
        // any non-empty trailing span).
        assert_eq!(ts.retain_recent(1), 4);
        assert_eq!(ts.num_cells(), 2);
        assert_eq!(ts.newest_window(), Some(90));
    }

    #[test]
    fn epoch_advances_only_on_data_changes() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert_eq!(ts.epoch(), 0);
        // Rejected writes leave the epoch untouched.
        assert!(ts.record("m", 0, f64::NAN).is_err());
        assert_eq!(ts.epoch(), 0);
        ts.record("m", 0, 1.0).unwrap();
        let e1 = ts.epoch();
        assert!(e1 > 0);
        ts.record("m", 55, 2.0).unwrap();
        let e2 = ts.epoch();
        assert!(e2 > e1);
        // Queries never advance the epoch.
        ts.quantile("m", 0, 0.5).unwrap();
        ts.quantile_series("m", 0.5);
        assert_eq!(ts.epoch(), e2);
        // Evicting nothing is not a data change; evicting cells is.
        assert_eq!(ts.evict_before(0), 0);
        assert_eq!(ts.epoch(), e2);
        assert_eq!(ts.retain_recent(10), 1);
        assert!(ts.epoch() > e2);
    }

    #[test]
    fn evict_before_bounds_retention() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for w in 0..10u64 {
            ts.record("a", w * 10, 1.0).unwrap();
            ts.record("b", w * 10, 2.0).unwrap();
        }
        assert_eq!(ts.num_cells(), 20);
        // Roll up the old fine windows first, then drop them — the
        // retention idiom for a long-lived aggregator.
        let archived = ts.rollup(10).unwrap();
        assert_eq!(ts.evict_before(50), 10);
        assert_eq!(ts.num_cells(), 10);
        assert_eq!(ts.metric_count("a"), 5);
        assert_eq!(archived.metric_count("a"), 10);
        // Only windows ≥ 50 remain.
        for (_, window, _) in ts.cells() {
            assert!(window >= 50);
        }
        // Recording into an evicted window recreates the cell.
        ts.record("a", 0, 3.0).unwrap();
        assert_eq!(ts.num_cells(), 11);
        // Evicting everything empties the store but keeps the intern
        // table usable.
        assert_eq!(ts.evict_before(u64::MAX), 11);
        assert_eq!(ts.num_cells(), 0);
        assert!(ts.metric_id("a").is_some());
        assert_eq!(ts.evict_before(0), 0);
    }
}
