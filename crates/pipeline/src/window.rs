//! Time-windowed sketch aggregation.
//!
//! The paper's motivating deployment (Section 1): workers note the latency
//! of every request into a per-second sketch, ship the sketches to a
//! monitoring system, and the system "rolls up" fine windows into coarser
//! ones *perfectly accurately* — which is exactly what full mergeability
//! buys: a merged sketch is bucket-identical to a sketch built from the
//! union of the raw data.
//!
//! The store is generic over the runtime [`SketchConfig`]: an operator can
//! trade accuracy for memory per deployment (dense-collapsing for
//! production defaults, sparse for wide-range metrics) without a rebuild.

use std::collections::BTreeMap;

use ddsketch::{AnyDDSketch, SketchConfig, SketchError};

/// Identifies one aggregation cell: a metric key (e.g. endpoint name) and
/// the start of its time window in epoch seconds.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Metric / endpoint identifier.
    pub metric: String,
    /// Window start, in seconds since an arbitrary epoch.
    pub window_start: u64,
}

/// A time-series store of sketches: one [`AnyDDSketch`] of a fixed
/// [`SketchConfig`] per (metric, window) cell.
#[derive(Debug)]
pub struct TimeSeriesStore {
    config: SketchConfig,
    /// Window width in seconds.
    window_secs: u64,
    cells: BTreeMap<CellKey, AnyDDSketch>,
}

impl TimeSeriesStore {
    /// Create a store whose cells use the given sketch configuration.
    pub fn with_config(config: SketchConfig, window_secs: u64) -> Result<Self, SketchError> {
        if window_secs == 0 {
            return Err(SketchError::InvalidConfig(
                "window_secs must be positive".into(),
            ));
        }
        config.validate()?;
        Ok(Self {
            config,
            window_secs,
            cells: BTreeMap::new(),
        })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(alpha: f64, max_bins: usize, window_secs: u64) -> Result<Self, SketchError> {
        Self::with_config(SketchConfig::dense_collapsing(alpha, max_bins), window_secs)
    }

    /// The sketch configuration every cell uses.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Number of live (metric, window) cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Align a timestamp down to its window start.
    pub fn window_of(&self, ts_secs: u64) -> u64 {
        ts_secs - ts_secs % self.window_secs
    }

    /// Run `op` against the cell for `(metric, window_start)`, creating
    /// the cell only if `op` succeeds — so a rejected record/absorb on a
    /// not-yet-existing cell leaves no phantom empty cell behind (every
    /// `op` used here mutates the sketch atomically, so existing cells
    /// are likewise untouched on failure).
    fn with_cell(
        &mut self,
        metric: &str,
        window_start: u64,
        op: impl FnOnce(&mut AnyDDSketch) -> Result<(), SketchError>,
    ) -> Result<(), SketchError> {
        let key = CellKey {
            metric: metric.to_string(),
            window_start,
        };
        if let Some(cell) = self.cells.get_mut(&key) {
            return op(cell);
        }
        let mut fresh = self.config.build().expect("validated in constructor");
        op(&mut fresh)?;
        self.cells.insert(key, fresh);
        Ok(())
    }

    /// Record a single observation for `metric` at time `ts_secs`.
    pub fn record(&mut self, metric: &str, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.with_cell(metric, window, |cell| cell.add(value))
    }

    /// Record a batch of observations sharing one timestamp window — one
    /// cell lookup and one bulk sketch ingestion for the whole slice.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: if any value
    /// is unsupported, the cell is left unchanged.
    pub fn record_slice(
        &mut self,
        metric: &str,
        ts_secs: u64,
        values: &[f64],
    ) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.with_cell(metric, window, |cell| cell.add_slice(values))
    }

    /// Absorb a sketch shipped by an agent for `(metric, window_start)` —
    /// the paper's merge path. Fully mergeable: repeated absorption equals
    /// having seen all the raw points.
    ///
    /// Sketches from a different variant (mapping or store family) or a
    /// different `α` are rejected with `IncompatibleMerge`, leaving the
    /// store untouched. A same-variant sketch with a different `max_bins`
    /// is accepted — bucket boundaries agree, and the cell re-collapses
    /// to its own bound (Algorithm 4) — though an agent whose smaller
    /// bound already collapsed buckets carries that accuracy loss with it.
    pub fn absorb(
        &mut self,
        metric: &str,
        window_start: u64,
        sketch: &AnyDDSketch,
    ) -> Result<(), SketchError> {
        let window = self.window_of(window_start);
        self.with_cell(metric, window, |cell| cell.merge_from(sketch))
    }

    /// Quantile estimate for one cell, if present and non-empty.
    pub fn quantile(&self, metric: &str, window_start: u64, q: f64) -> Option<f64> {
        let key = CellKey {
            metric: metric.to_string(),
            window_start,
        };
        self.cells.get(&key).and_then(|s| s.quantile(q).ok())
    }

    /// The quantile time series for a metric: `(window_start, estimate)`
    /// for every window that has data — the data behind the paper's
    /// Figures 2 and 4.
    pub fn quantile_series(&self, metric: &str, q: f64) -> Vec<(u64, f64)> {
        self.cells
            .iter()
            .filter(|(k, s)| k.metric == metric && !s.is_empty())
            .filter_map(|(k, s)| s.quantile(q).ok().map(|v| (k.window_start, v)))
            .collect()
    }

    /// The average time series for a metric (the paper's Figure 2 dotted
    /// line — exact, since sums and counts merge exactly).
    pub fn average_series(&self, metric: &str) -> Vec<(u64, f64)> {
        self.cells
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .filter_map(|(k, s)| s.average().map(|v| (k.window_start, v)))
            .collect()
    }

    /// Roll the store up into `factor`-times-wider windows, merging the
    /// sketches of each group ("rolling up the sums and counts ... over
    /// much larger time periods perfectly accurately" — and with DDSketch,
    /// the same now holds for quantiles).
    pub fn rollup(&self, factor: u64) -> Result<TimeSeriesStore, SketchError> {
        if factor == 0 {
            return Err(SketchError::InvalidConfig(
                "rollup factor must be positive".into(),
            ));
        }
        let mut out = TimeSeriesStore::with_config(self.config, self.window_secs * factor)?;
        for (key, sketch) in &self.cells {
            out.absorb(&key.metric, key.window_start, sketch)?;
        }
        Ok(out)
    }

    /// Iterate over all cells (ascending by metric, then window).
    pub fn cells(&self) -> impl Iterator<Item = (&CellKey, &AnyDDSketch)> {
        self.cells.iter()
    }

    /// Total observation count across all cells of a metric.
    pub fn metric_count(&self, metric: &str) -> u64 {
        self.cells
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .map(|(_, s)| s.count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(TimeSeriesStore::new(0.01, 2048, 0).is_err());
        assert!(TimeSeriesStore::new(0.0, 2048, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 0, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 2048, 10).is_ok());
        assert!(TimeSeriesStore::with_config(SketchConfig::sparse(0.01), 10).is_ok());
        assert!(TimeSeriesStore::with_config(SketchConfig::sparse(0.0), 10).is_err());
    }

    #[test]
    fn records_are_windowed() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("api.latency", 3, 1.0).unwrap();
        ts.record("api.latency", 9, 2.0).unwrap();
        ts.record("api.latency", 10, 3.0).unwrap();
        ts.record("api.latency", 25, 4.0).unwrap();
        assert_eq!(ts.num_cells(), 3); // windows 0, 10, 20
        assert_eq!(ts.metric_count("api.latency"), 4);
        assert_eq!(ts.quantile_series("api.latency", 0.5).len(), 3);
    }

    #[test]
    fn record_slice_matches_record() {
        let mut scalar = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut batched = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let values: Vec<f64> = (1..=5000).map(|i| 0.1 + f64::from(i) * 0.01).collect();
        for &v in &values {
            scalar.record("m", 17, v).unwrap();
        }
        for chunk in values.chunks(512) {
            batched.record_slice("m", 17, chunk).unwrap();
        }
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(batched.quantile("m", 10, q), scalar.quantile("m", 10, q));
        }
        // A bad value fails the batch without touching the cell.
        assert!(batched.record_slice("m", 17, &[1.0, f64::NAN]).is_err());
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
    }

    #[test]
    fn metrics_are_isolated() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("a", 0, 1.0).unwrap();
        ts.record("b", 0, 100.0).unwrap();
        let qa = ts.quantile("a", 0, 0.5).unwrap();
        let qb = ts.quantile("b", 0, 0.5).unwrap();
        assert!(qa < 2.0 && qb > 90.0);
        assert!(ts.quantile("c", 0, 0.5).is_none());
    }

    #[test]
    fn rollup_is_exactly_the_union_under_every_config() {
        for config in SketchConfig::all(0.01, 2048) {
            let mut fine = TimeSeriesStore::with_config(config, 1).unwrap();
            let mut coarse_direct = TimeSeriesStore::with_config(config, 60).unwrap();
            for t in 0..600u64 {
                let v = 1.0 + (t % 97) as f64;
                fine.record("m", t, v).unwrap();
                coarse_direct.record("m", t, v).unwrap();
            }
            let rolled = fine.rollup(60).unwrap();
            assert_eq!(rolled.config(), config);
            assert_eq!(rolled.num_cells(), coarse_direct.num_cells());
            for (key, direct) in coarse_direct.cells() {
                let merged = rolled.quantile(&key.metric, key.window_start, 0.9).unwrap();
                assert_eq!(
                    merged,
                    direct.quantile(0.9).unwrap(),
                    "{}: rollup must equal direct ingestion for window {}",
                    config.name(),
                    key.window_start
                );
            }
        }
    }

    #[test]
    fn absorb_equals_record() {
        use ddsketch::AnyDDSketch;
        let mut via_absorb = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut via_record = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut agent_sketch = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        for i in 1..=100 {
            let v = f64::from(i) * 0.5;
            agent_sketch.add(v).unwrap();
            via_record.record("m", 42, v).unwrap();
        }
        via_absorb.absorb("m", 42, &agent_sketch).unwrap();
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(
                via_absorb.quantile("m", 40, q).unwrap(),
                via_record.quantile("m", 40, q).unwrap()
            );
        }
        // Statically-typed producers convert losslessly into the store.
        let mut preset = ddsketch::presets::logarithmic_collapsing(0.01, 2048).unwrap();
        preset.add(1.0).unwrap();
        let any: AnyDDSketch = preset.into();
        via_absorb.absorb("m", 42, &any).unwrap();
    }

    #[test]
    fn absorb_rejects_mismatched_configs() {
        let mut ts = TimeSeriesStore::with_config(SketchConfig::sparse(0.01), 10).unwrap();
        let foreign = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        assert!(matches!(
            ts.absorb("m", 0, &foreign),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // The rejection must not leave a phantom empty cell behind — a
        // long-lived aggregator fed bad payloads must not grow.
        assert_eq!(ts.num_cells(), 0);
        // Same for an existing cell: rejected absorb leaves it untouched.
        ts.record("m", 0, 1.0).unwrap();
        assert!(ts.absorb("m", 0, &foreign).is_err());
        assert_eq!(ts.num_cells(), 1);
        assert_eq!(ts.metric_count("m"), 1);
    }

    #[test]
    fn rejected_writes_leave_no_phantom_cells() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(ts.record("m", 0, f64::NAN).is_err());
        assert!(ts.record_slice("m", 0, &[1.0, f64::INFINITY]).is_err());
        assert_eq!(ts.num_cells(), 0, "failed writes must not create cells");
        assert_eq!(ts.quantile_series("m", 0.5), vec![]);
    }

    #[test]
    fn average_series_is_exact() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for v in [1.0, 2.0, 3.0] {
            ts.record("m", 5, v).unwrap();
        }
        let series = ts.average_series("m");
        assert_eq!(series, vec![(0, 2.0)]);
    }

    #[test]
    fn rollup_factor_validation() {
        let ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(ts.rollup(0).is_err());
        assert!(ts.rollup(6).is_ok());
    }
}
