//! Time-windowed sketch aggregation.
//!
//! The paper's motivating deployment (Section 1): workers note the latency
//! of every request into a per-second sketch, ship the sketches to a
//! monitoring system, and the system "rolls up" fine windows into coarser
//! ones *perfectly accurately* — which is exactly what full mergeability
//! buys: a merged sketch is bucket-identical to a sketch built from the
//! union of the raw data.

use std::collections::BTreeMap;

use ddsketch::{presets, BoundedDDSketch, SketchError};

/// Identifies one aggregation cell: a metric key (e.g. endpoint name) and
/// the start of its time window in epoch seconds.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Metric / endpoint identifier.
    pub metric: String,
    /// Window start, in seconds since an arbitrary epoch.
    pub window_start: u64,
}

/// A time-series store of sketches: one [`BoundedDDSketch`] per
/// (metric, window) cell.
#[derive(Debug)]
pub struct TimeSeriesStore {
    alpha: f64,
    max_bins: usize,
    /// Window width in seconds.
    window_secs: u64,
    cells: BTreeMap<CellKey, BoundedDDSketch>,
}

impl TimeSeriesStore {
    /// Create a store with the given sketch parameters and window width.
    pub fn new(alpha: f64, max_bins: usize, window_secs: u64) -> Result<Self, SketchError> {
        if window_secs == 0 {
            return Err(SketchError::InvalidConfig(
                "window_secs must be positive".into(),
            ));
        }
        // Validate the sketch parameters once up front.
        presets::logarithmic_collapsing(alpha, max_bins)?;
        Ok(Self {
            alpha,
            max_bins,
            window_secs,
            cells: BTreeMap::new(),
        })
    }

    /// Window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Number of live (metric, window) cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Align a timestamp down to its window start.
    pub fn window_of(&self, ts_secs: u64) -> u64 {
        ts_secs - ts_secs % self.window_secs
    }

    fn cell(&mut self, metric: &str, window_start: u64) -> &mut BoundedDDSketch {
        let key = CellKey {
            metric: metric.to_string(),
            window_start,
        };
        let (alpha, bins) = (self.alpha, self.max_bins);
        self.cells.entry(key).or_insert_with(|| {
            presets::logarithmic_collapsing(alpha, bins).expect("validated in constructor")
        })
    }

    /// Record a single observation for `metric` at time `ts_secs`.
    pub fn record(&mut self, metric: &str, ts_secs: u64, value: f64) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.cell(metric, window).add(value)
    }

    /// Record a batch of observations sharing one timestamp window — one
    /// cell lookup and one bulk sketch ingestion for the whole slice.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: if any value
    /// is unsupported, the cell is left unchanged.
    pub fn record_slice(
        &mut self,
        metric: &str,
        ts_secs: u64,
        values: &[f64],
    ) -> Result<(), SketchError> {
        let window = self.window_of(ts_secs);
        self.cell(metric, window).add_slice(values)
    }

    /// Absorb a sketch shipped by an agent for `(metric, window_start)` —
    /// the paper's merge path. Fully mergeable: repeated absorption equals
    /// having seen all the raw points.
    pub fn absorb(
        &mut self,
        metric: &str,
        window_start: u64,
        sketch: &BoundedDDSketch,
    ) -> Result<(), SketchError> {
        let window = self.window_of(window_start);
        self.cell(metric, window).merge_from(sketch)
    }

    /// Quantile estimate for one cell, if present and non-empty.
    pub fn quantile(&self, metric: &str, window_start: u64, q: f64) -> Option<f64> {
        let key = CellKey {
            metric: metric.to_string(),
            window_start,
        };
        self.cells.get(&key).and_then(|s| s.quantile(q).ok())
    }

    /// The quantile time series for a metric: `(window_start, estimate)`
    /// for every window that has data — the data behind the paper's
    /// Figures 2 and 4.
    pub fn quantile_series(&self, metric: &str, q: f64) -> Vec<(u64, f64)> {
        self.cells
            .iter()
            .filter(|(k, s)| k.metric == metric && !s.is_empty())
            .filter_map(|(k, s)| s.quantile(q).ok().map(|v| (k.window_start, v)))
            .collect()
    }

    /// The average time series for a metric (the paper's Figure 2 dotted
    /// line — exact, since sums and counts merge exactly).
    pub fn average_series(&self, metric: &str) -> Vec<(u64, f64)> {
        self.cells
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .filter_map(|(k, s)| s.average().map(|v| (k.window_start, v)))
            .collect()
    }

    /// Roll the store up into `factor`-times-wider windows, merging the
    /// sketches of each group ("rolling up the sums and counts ... over
    /// much larger time periods perfectly accurately" — and with DDSketch,
    /// the same now holds for quantiles).
    pub fn rollup(&self, factor: u64) -> Result<TimeSeriesStore, SketchError> {
        if factor == 0 {
            return Err(SketchError::InvalidConfig(
                "rollup factor must be positive".into(),
            ));
        }
        let mut out = TimeSeriesStore::new(self.alpha, self.max_bins, self.window_secs * factor)?;
        for (key, sketch) in &self.cells {
            out.absorb(&key.metric, key.window_start, sketch)?;
        }
        Ok(out)
    }

    /// Iterate over all cells (ascending by metric, then window).
    pub fn cells(&self) -> impl Iterator<Item = (&CellKey, &BoundedDDSketch)> {
        self.cells.iter()
    }

    /// Total observation count across all cells of a metric.
    pub fn metric_count(&self, metric: &str) -> u64 {
        self.cells
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .map(|(_, s)| s.count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(TimeSeriesStore::new(0.01, 2048, 0).is_err());
        assert!(TimeSeriesStore::new(0.0, 2048, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 0, 10).is_err());
        assert!(TimeSeriesStore::new(0.01, 2048, 10).is_ok());
    }

    #[test]
    fn records_are_windowed() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("api.latency", 3, 1.0).unwrap();
        ts.record("api.latency", 9, 2.0).unwrap();
        ts.record("api.latency", 10, 3.0).unwrap();
        ts.record("api.latency", 25, 4.0).unwrap();
        assert_eq!(ts.num_cells(), 3); // windows 0, 10, 20
        assert_eq!(ts.metric_count("api.latency"), 4);
        assert_eq!(ts.quantile_series("api.latency", 0.5).len(), 3);
    }

    #[test]
    fn record_slice_matches_record() {
        let mut scalar = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut batched = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let values: Vec<f64> = (1..=5000).map(|i| 0.1 + f64::from(i) * 0.01).collect();
        for &v in &values {
            scalar.record("m", 17, v).unwrap();
        }
        for chunk in values.chunks(512) {
            batched.record_slice("m", 17, chunk).unwrap();
        }
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(batched.quantile("m", 10, q), scalar.quantile("m", 10, q));
        }
        // A bad value fails the batch without touching the cell.
        assert!(batched.record_slice("m", 17, &[1.0, f64::NAN]).is_err());
        assert_eq!(batched.metric_count("m"), scalar.metric_count("m"));
    }

    #[test]
    fn metrics_are_isolated() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        ts.record("a", 0, 1.0).unwrap();
        ts.record("b", 0, 100.0).unwrap();
        let qa = ts.quantile("a", 0, 0.5).unwrap();
        let qb = ts.quantile("b", 0, 0.5).unwrap();
        assert!(qa < 2.0 && qb > 90.0);
        assert!(ts.quantile("c", 0, 0.5).is_none());
    }

    #[test]
    fn rollup_is_exactly_the_union() {
        let mut fine = TimeSeriesStore::new(0.01, 2048, 1).unwrap();
        let mut coarse_direct = TimeSeriesStore::new(0.01, 2048, 60).unwrap();
        for t in 0..600u64 {
            let v = 1.0 + (t % 97) as f64;
            fine.record("m", t, v).unwrap();
            coarse_direct.record("m", t, v).unwrap();
        }
        let rolled = fine.rollup(60).unwrap();
        assert_eq!(rolled.num_cells(), coarse_direct.num_cells());
        for (key, direct) in coarse_direct.cells() {
            let merged = rolled.quantile(&key.metric, key.window_start, 0.9).unwrap();
            assert_eq!(
                merged,
                direct.quantile(0.9).unwrap(),
                "rollup must equal direct ingestion for window {}",
                key.window_start
            );
        }
    }

    #[test]
    fn absorb_equals_record() {
        use ddsketch::presets::logarithmic_collapsing;
        let mut via_absorb = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut via_record = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        let mut agent_sketch = logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=100 {
            let v = f64::from(i) * 0.5;
            agent_sketch.add(v).unwrap();
            via_record.record("m", 42, v).unwrap();
        }
        via_absorb.absorb("m", 42, &agent_sketch).unwrap();
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(
                via_absorb.quantile("m", 40, q).unwrap(),
                via_record.quantile("m", 40, q).unwrap()
            );
        }
    }

    #[test]
    fn average_series_is_exact() {
        let mut ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        for v in [1.0, 2.0, 3.0] {
            ts.record("m", 5, v).unwrap();
        }
        let series = ts.average_series("m");
        assert_eq!(series, vec![(0, 2.0)]);
    }

    #[test]
    fn rollup_factor_validation() {
        let ts = TimeSeriesStore::new(0.01, 2048, 10).unwrap();
        assert!(ts.rollup(0).is_err());
        assert!(ts.rollup(6).is_ok());
    }
}
