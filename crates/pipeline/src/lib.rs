//! # pipeline
//!
//! A simulation of the distributed monitoring architecture that motivates
//! DDSketch (paper Figure 1): workers note request latencies into
//! per-window sketches, agents ship encoded sketches to an aggregator, and
//! the aggregator merges them into a time-series store that can roll
//! windows up losslessly — the property only *fully mergeable* sketches
//! provide.
//!
//! Modules:
//! * [`aggregator`] — the decode-free receiving end: raw `DDS2` frames
//!   in, quantiles out, zero intermediate sketches (below).
//! * [`window`] — the `(metric, window) → sketch` time-series store with
//!   interned metric ids, exact k-way rollups, retention eviction,
//!   trailing-width [`window::SlidingView`] reads over existing cells,
//!   and frame-stream [`TimeSeriesStore::checkpoint`]/
//!   [`TimeSeriesStore::restore`] durability.
//! * [`window_sliding`] — continuously sliding quantile windows ("p99
//!   over the last five minutes"): a ring of per-slot sketches read by
//!   one zero-copy k-way walk, with suffix-aggregate (two-stack) and
//!   exponentially-decayed variants, plus a sharded concurrent front.
//! * [`concurrent`] — a sharded thread-safe sketch for multi-threaded
//!   producers whose read path merges outside all locks.
//! * [`sim`] — the end-to-end threaded simulation (workers → channel →
//!   aggregator) used by the Figure 2 binary and integration tests.
//!
//! ## Agent → aggregator: the decode-free wire path
//!
//! An agent encodes its sketch (`sketch.encode()`, ~2 bytes per warm
//! bucket) and ships it — one frame per payload, batched per connection
//! or file through [`ddsketch::codec::FrameWriter`]. The receiving
//! [`Aggregator`] never decodes a payload into a sketch:
//!
//! ```
//! use ddsketch::codec::{FrameReader, FrameWriter};
//! use ddsketch::SketchConfig;
//! use pipeline::Aggregator;
//!
//! let config = SketchConfig::dense_collapsing(0.01, 2048);
//!
//! // A fleet of agents, each batching its payloads onto one stream.
//! let mut stream = FrameWriter::new(Vec::new()).unwrap();
//! for agent in 0..4u32 {
//!     let mut sketch = config.build().unwrap();
//!     for i in 1..=1000u32 {
//!         sketch.add(f64::from(agent * 1000 + i) * 1e-3).unwrap();
//!     }
//!     stream.write_sketch(&sketch).unwrap();
//! }
//! let bytes = stream.finish().unwrap();
//!
//! // The aggregator decodes each frame once into a recycled staging
//! // payload (bins + summary, never a sketch), folds every few frames
//! // into one resident sketch (one bulk `add_bins` pass per store),
//! // and answers quantiles over resident ∪ unfolded payloads in a
//! // single k-way walk.
//! let mut agg = Aggregator::with_config(config, 16).unwrap();
//! agg.feed_stream(&mut FrameReader::new(bytes.as_slice()).unwrap()).unwrap();
//! let p = agg.quantiles(&[0.5, 0.99]).unwrap();
//! assert!(p[0] < p[1]);
//! ```
//!
//! The store side gets the same treatment: a long-lived
//! [`TimeSeriesStore`] checkpoints every `(metric, window)` cell through
//! the frame stream and restores it exactly — interned metric ids
//! included — so an aggregator restart costs one stream replay, not a
//! re-ingestion.

pub mod aggregator;
pub mod concurrent;
pub mod sim;
pub mod window;
pub mod window_sliding;

pub use aggregator::Aggregator;
pub use concurrent::ConcurrentSketch;
pub use sim::{run_sequential, run_simulation, Payload, SimConfig, SimReport};
pub use window::{MetricId, SlidingView, TimeSeriesStore};
pub use window_sliding::{ConcurrentSlidingWindow, SlidingWindowSketch};
