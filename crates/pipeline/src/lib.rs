//! # pipeline
//!
//! A simulation of the distributed monitoring architecture that motivates
//! DDSketch (paper Figure 1): workers note request latencies into
//! per-window sketches, agents ship encoded sketches to an aggregator, and
//! the aggregator merges them into a time-series store that can roll
//! windows up losslessly — the property only *fully mergeable* sketches
//! provide.
//!
//! Modules:
//! * [`window`] — the `(metric, window) → sketch` time-series store with
//!   interned metric ids, exact k-way rollups, retention eviction, and
//!   trailing-width [`window::SlidingView`] reads over existing cells.
//! * [`window_sliding`] — continuously sliding quantile windows ("p99
//!   over the last five minutes"): a ring of per-slot sketches read by
//!   one zero-copy k-way walk, with suffix-aggregate (two-stack) and
//!   exponentially-decayed variants, plus a sharded concurrent front.
//! * [`concurrent`] — a sharded thread-safe sketch for multi-threaded
//!   producers whose read path merges outside all locks.
//! * [`sim`] — the end-to-end threaded simulation (workers → channel →
//!   aggregator) used by the Figure 2 binary and integration tests.

pub mod concurrent;
pub mod sim;
pub mod window;
pub mod window_sliding;

pub use concurrent::ConcurrentSketch;
pub use sim::{run_sequential, run_simulation, Payload, SimConfig, SimReport};
pub use window::{MetricId, SlidingView, TimeSeriesStore};
pub use window_sliding::{ConcurrentSlidingWindow, SlidingWindowSketch};
