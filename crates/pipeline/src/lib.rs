//! # pipeline
//!
//! A simulation of the distributed monitoring architecture that motivates
//! DDSketch (paper Figure 1): workers note request latencies into
//! per-window sketches, agents ship encoded sketches to an aggregator, and
//! the aggregator merges them into a time-series store that can roll
//! windows up losslessly — the property only *fully mergeable* sketches
//! provide.
//!
//! Modules:
//! * [`aggregator`] — the decode-free receiving end: raw `DDS2` frames
//!   in, quantiles out, zero intermediate sketches (below); its
//!   [`WeightedAggregator`] sibling runs the same staging/fold machinery
//!   on the `f64` count plane and accepts mixed `DDS1`/`DDS2`/`DDS3`
//!   streams.
//! * [`window`] — the `(metric, window) → sketch` time-series store with
//!   interned metric ids, exact k-way rollups, retention eviction,
//!   trailing-width [`window::SlidingView`] reads over existing cells,
//!   and frame-stream [`TimeSeriesStore::checkpoint`]/
//!   [`TimeSeriesStore::restore`] durability.
//! * [`window_sliding`] — continuously sliding quantile windows ("p99
//!   over the last five minutes"): a ring of per-slot sketches read by
//!   one zero-copy k-way walk, with suffix-aggregate (two-stack) and
//!   exponentially-decayed variants, plus a sharded concurrent front and
//!   an ingest-time decayed window ([`DecayedIngestWindow`]) that pays
//!   the decay once per slot tick on the weighted count plane.
//! * [`concurrent`] — a sharded thread-safe sketch for multi-threaded
//!   producers whose read path merges outside all locks.
//! * [`sim`] — the end-to-end threaded simulation (workers → channel →
//!   aggregator) used by the Figure 2 binary and integration tests.
//!
//! ## Concurrency model
//!
//! Multi-threaded ingestion runs on one of three planes, fastest first:
//!
//! 1. **Lock-free atomic** ([`ConcurrentSketch`] over a dense-store
//!    config, the default): every shard is a [`ddsketch::AnyAtomicDDSketch`]
//!    whose `add` is a relaxed `fetch_add` into an atomic bucket cell —
//!    no lock, no CAS loop; growth/collapse on a rare guarded slow path.
//!    Reads snapshot each shard through an epoch-validated counter scan
//!    into recycled buffers; writers are never blocked by readers.
//! 2. **Thread-local publish** ([`LocalIngest`]): values accumulate in a
//!    private sequential sketch (plain `u64` counters) and publish
//!    bin-wise to the shared sketch at flush boundaries and on drop —
//!    removing even atomic cache-line traffic from the per-value path, at
//!    the cost of bounded read staleness.
//! 3. **Locked shards** (sparse-store configs, or any config via
//!    [`ConcurrentSketch::with_config_locked`]): one sketch per shard
//!    behind its own lock, writers pick shards by thread identity.
//!    [`ConcurrentSlidingWindow`] uses this plane with short-hold reads:
//!    each shard lock is held only for that shard's own head scan or slot
//!    copy, never all shards at once.
//!
//! All three planes share one correctness story, inherited from full
//! mergeability and the contract in [`ddsketch::atomic`]: once writers
//! quiesce with a happens-before edge to the reader (thread join, channel
//! hand-off), the merged view is **exactly** — bit-identical bins, count,
//! min, max — the sketch a single thread would have built over the union
//! of every writer's values, with the `f64` sum equal up to addition
//! reassociation. Reads racing writers see each counter at some instant
//! during the read, never torn, lost, or double-counted. Counter updates
//! are `Relaxed`; store growth and fold epochs use `Release`/`Acquire`
//! (see the `ddsketch` crate's "Concurrency model" section for the full
//! ordering contract). `tests/concurrent_ingest.rs` stress-tests the
//! exactness claim and `tests/zero_alloc_ingest.rs` holds the steady-state
//! atomic hot path to zero allocations; multi-thread throughput is
//! measured in `benches/ingest.rs` (`results/BENCH_ingest.json`).
//!
//! ## Agent → aggregator: the decode-free wire path
//!
//! An agent encodes its sketch (`sketch.encode()`, ~2 bytes per warm
//! bucket) and ships it — one frame per payload, batched per connection
//! or file through [`ddsketch::codec::FrameWriter`]. The receiving
//! [`Aggregator`] never decodes a payload into a sketch:
//!
//! ```
//! use ddsketch::codec::{FrameReader, FrameWriter};
//! use ddsketch::SketchConfig;
//! use pipeline::Aggregator;
//!
//! let config = SketchConfig::dense_collapsing(0.01, 2048);
//!
//! // A fleet of agents, each batching its payloads onto one stream.
//! let mut stream = FrameWriter::new(Vec::new()).unwrap();
//! for agent in 0..4u32 {
//!     let mut sketch = config.build().unwrap();
//!     for i in 1..=1000u32 {
//!         sketch.add(f64::from(agent * 1000 + i) * 1e-3).unwrap();
//!     }
//!     stream.write_sketch(&sketch).unwrap();
//! }
//! let bytes = stream.finish().unwrap();
//!
//! // The aggregator decodes each frame once into a recycled staging
//! // payload (bins + summary, never a sketch), folds every few frames
//! // into one resident sketch (one bulk `add_bins` pass per store),
//! // and answers quantiles over resident ∪ unfolded payloads in a
//! // single k-way walk.
//! let mut agg = Aggregator::with_config(config, 16).unwrap();
//! agg.feed_stream(&mut FrameReader::new(bytes.as_slice()).unwrap()).unwrap();
//! let p = agg.quantiles(&[0.5, 0.99]).unwrap();
//! assert!(p[0] < p[1]);
//! ```
//!
//! The store side gets the same treatment: a long-lived
//! [`TimeSeriesStore`] checkpoints every `(metric, window)` cell through
//! the frame stream and restores it exactly — interned metric ids
//! included — so an aggregator restart costs one stream replay, not a
//! re-ingestion.
//!
//! This crate models the path in-process; the `sketchd` crate deploys it
//! over real sockets. There, `AgentSender` ships each frame with a
//! single atomic `write_all` (reconnect + whole-frame resend on
//! failure), and the server routes frames by FNV-1a metric hash to
//! per-shard workers that absorb each decoded payload into both an
//! [`Aggregator`] (fleet quantiles) and a [`TimeSeriesStore`] (per-window
//! series + checkpoints), behind bounded staging queues whose
//! backpressure throttles agents through TCP flow control. Because both
//! sinks are fed from the same single decode, the served quantiles stay
//! bit-identical to a from-scratch union over every agent's payloads —
//! the same exactness contract as the in-process plane.

pub mod aggregator;
pub mod concurrent;
pub mod sim;
pub mod window;
pub mod window_sliding;

pub use aggregator::{Aggregator, WeightedAggregator};
pub use concurrent::{ConcurrentSketch, LocalIngest};
pub use sim::{run_sequential, run_simulation, Payload, SimConfig, SimReport};
pub use window::{MetricId, SlidingView, TimeSeriesStore};
pub use window_sliding::{ConcurrentSlidingWindow, DecayedIngestWindow, SlidingWindowSketch};
