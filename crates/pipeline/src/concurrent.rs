//! A thread-safe sketch for multi-threaded producers.
//!
//! High-throughput endpoints ("over 10M points per second", paper
//! Section 5) are served by many worker threads. Because DDSketch is fully
//! mergeable, the cheapest safe design is *sharding*: each shard is an
//! independent sketch behind its own lock, writers pick a shard by thread
//! identity, and readers merge all shards on demand — the merged view is
//! exactly the sketch of all inserted values, by full mergeability.

use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::{presets, BoundedDDSketch, SketchError};
use parking_lot::Mutex;

/// A sharded, thread-safe DDSketch.
#[derive(Debug)]
pub struct ConcurrentSketch {
    shards: Vec<Mutex<BoundedDDSketch>>,
    /// Round-robin assignment for callers without a shard hint.
    next: AtomicUsize,
}

impl ConcurrentSketch {
    /// Create a sketch with `shards` independent shards (≥ 1); shard count
    /// should roughly match writer-thread count.
    pub fn new(alpha: f64, max_bins: usize, shards: usize) -> Result<Self, SketchError> {
        if shards == 0 {
            return Err(SketchError::InvalidConfig("shards must be positive".into()));
        }
        let shards = (0..shards)
            .map(|_| presets::logarithmic_collapsing(alpha, max_bins).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shards,
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Insert with an explicit shard hint (e.g. a worker id); any value
    /// works — it is reduced modulo the shard count.
    pub fn add_hinted(&self, hint: usize, value: f64) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()].lock().add(value)
    }

    /// Insert using a round-robin shard (uncontended as long as writer
    /// count ≤ shard count).
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        let hint = self.next.fetch_add(1, Ordering::Relaxed);
        self.add_hinted(hint, value)
    }

    /// Bulk-insert a batch into one shard: a single lock acquisition and a
    /// single batched sketch ingestion for the whole slice — the fast path
    /// for writers that buffer locally and flush periodically.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: an
    /// unsupported value fails the whole batch without ingesting anything.
    pub fn add_slice_hinted(&self, hint: usize, values: &[f64]) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()]
            .lock()
            .add_slice(values)
    }

    /// Bulk-insert a batch using a round-robin shard.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        let hint = self.next.fetch_add(1, Ordering::Relaxed);
        self.add_slice_hinted(hint, values)
    }

    /// Total count across shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().count()).sum()
    }

    /// Merge all shards into a single snapshot sketch. By full
    /// mergeability this is exactly the sketch of every value inserted so
    /// far (modulo inserts racing with the snapshot).
    pub fn snapshot(&self) -> Result<BoundedDDSketch, SketchError> {
        let mut iter = self.shards.iter();
        let mut merged = iter.next().expect("shards >= 1").lock().clone();
        for shard in iter {
            merged.merge_from(&shard.lock())?;
        }
        Ok(merged)
    }

    /// Convenience: quantile of a fresh snapshot.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        self.snapshot()?.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn constructor_validates() {
        assert!(ConcurrentSketch::new(0.01, 2048, 0).is_err());
        assert!(ConcurrentSketch::new(0.0, 2048, 4).is_err());
        assert!(ConcurrentSketch::new(0.01, 2048, 4).is_ok());
    }

    #[test]
    fn sequential_inserts_match_plain_sketch() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=10_000 {
            let v = f64::from(i) * 0.1;
            cs.add(v).unwrap();
            plain.add(v).unwrap();
        }
        assert_eq!(cs.count(), plain.count());
        let snap = cs.snapshot().unwrap();
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8;
        let per_thread = 25_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic per-thread values.
                        let v = 1.0 + f64::from(t * per_thread + i) * 1e-3;
                        cs.add_hinted(t as usize, v).unwrap();
                    }
                });
            }
        });
        assert_eq!(cs.count(), u64::from(threads) * u64::from(per_thread));

        // The snapshot must be bucket-identical to a single sketch over
        // the same 200k values.
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                plain
                    .add(1.0 + f64::from(t * per_thread + i) * 1e-3)
                    .unwrap();
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn batched_inserts_match_scalar_inserts() {
        let scalar = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let batched = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let values: Vec<f64> = (1..=40_000).map(|i| 0.5 + f64::from(i) * 1e-3).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let (scalar, batched, values) = (&scalar, &batched, &values);
                scope.spawn(move || {
                    let mine: Vec<f64> = values[t * 10_000..(t + 1) * 10_000].to_vec();
                    for &v in &mine {
                        scalar.add_hinted(t, v).unwrap();
                    }
                    // Shard-local batch buffer, flushed in chunks.
                    for chunk in mine.chunks(1024) {
                        batched.add_slice_hinted(t, chunk).unwrap();
                    }
                });
            }
        });
        assert_eq!(batched.count(), scalar.count());
        let (a, b) = (batched.snapshot().unwrap(), scalar.snapshot().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(a.quantile(q).unwrap(), b.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn snapshot_of_empty_sketch_is_empty() {
        let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
        let snap = cs.snapshot().unwrap();
        assert!(snap.is_empty());
        assert!(cs.quantile(0.5).is_err());
    }
}
