//! A thread-safe sketch for multi-threaded producers.
//!
//! High-throughput endpoints ("over 10M points per second", paper
//! Section 5) are served by many worker threads. Because DDSketch is fully
//! mergeable, every design below reduces to the same correctness story:
//! the merged view of whatever the writers built is exactly the sketch of
//! all inserted values.
//!
//! # Concurrency model
//!
//! [`ConcurrentSketch`] runs one of two ingest planes, chosen by the store
//! family of its [`SketchConfig`]:
//!
//! * **Atomic plane** (dense store families — the default
//!   `dense_collapsing`, `unbounded`, and `fast` configs). Each shard is an
//!   [`AnyAtomicDDSketch`]: the hot `add` is a single relaxed `fetch_add`
//!   into an atomic bucket cell plus relaxed striped summary updates — no
//!   lock, no CAS loop, writers never wait on each other or on readers.
//!   Growth and collapse happen on a rare seqlock-guarded slow path that
//!   writers other than the grower never observe.
//! * **Locked plane** (sparse store families, whose B-tree rebalancing
//!   cannot be made lock-free with these techniques; also available for
//!   any config via [`ConcurrentSketch::with_config_locked`] as a
//!   benchmark baseline). Each shard is an independent sketch behind its
//!   own lock; writers pick a shard by thread identity so shards stay
//!   uncontended while writer threads ≤ shards.
//!
//! Reads never block writers on the atomic plane: [`ConcurrentSketch::count`]
//! sums the striped counters lock-free, and snapshots/quantiles
//! materialize each shard through an epoch-validated counter scan into
//! recycled per-reader buffers (readers serialize among themselves on one
//! small scratch lock; writers are unaffected). On the locked plane, reads
//! hold each shard lock only long enough to copy its bins, and the k-way
//! merge walk runs outside every lock.
//!
//! Writers that want to amortize even the atomic traffic use
//! [`LocalIngest`]: a thread-local front-end with a private sequential
//! sketch that publishes its deltas to the shared sketch at flush
//! boundaries (and on drop), turning N shared-counter updates into one
//! bin-wise publish per flush.
//!
//! **Memory-ordering contract** (inherited from
//! [`ddsketch::atomic`]): counter updates are `Relaxed`; store growth and
//! fold epochs use `Release`/`Acquire`. A racing reader sees every counter
//! at some instant during its read — never torn, lost, or double-counted.
//! After writers quiesce with a happens-before edge to the reader (thread
//! join, channel hand-off), reads are *exact*: bit-identical bins, count,
//! min, and max to a single-threaded sketch over the union of all values
//! (the `f64` sum matches up to addition reassociation across threads).
//!
//! The sketch configuration is runtime data ([`SketchConfig`]): the same
//! concurrent facade serves every preset, from the paper's collapsing
//! dense default to the sparse memory-bound variants.

use ddsketch::{
    AnyAtomicDDSketch, AnyDDSketch, AtomicSketchScratch, ConcurrentIngest, SketchConfig,
    SketchError, StoreKind,
};
use parking_lot::Mutex;

/// The calling thread's default shard: a hash of its `ThreadId`, computed
/// once per thread. Unlike a shared round-robin counter, this costs no
/// cross-thread cache-line traffic on the write path, and a thread keeps
/// hitting the same shard — uncontended as long as threads don't outnumber
/// shards (and merely contended, never wrong, when they do).
pub(crate) fn thread_shard() -> usize {
    use std::hash::{Hash, Hasher};
    std::thread_local! {
        static SHARD: usize = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            hasher.finish() as usize
        };
    }
    SHARD.with(|shard| *shard)
}

/// The two ingest planes; see the module docs.
#[derive(Debug)]
enum Plane {
    /// One sketch per shard behind its own lock.
    Locked(Vec<Mutex<AnyDDSketch>>),
    /// One lock-free atomic sketch per shard.
    Atomic(Vec<AnyAtomicDDSketch>),
}

/// Recycled per-reader buffers for materializing atomic shards: one
/// snapshot copy per shard plus the raw-counter scratch. Kept behind one
/// small lock so steady-state reads stop allocating; writers never touch
/// it.
#[derive(Debug, Default)]
struct ReadScratch {
    copies: Vec<AnyDDSketch>,
    snap: AtomicSketchScratch,
}

/// A sharded, thread-safe DDSketch over any runtime configuration.
#[derive(Debug)]
pub struct ConcurrentSketch {
    config: SketchConfig,
    plane: Plane,
    read_scratch: Mutex<ReadScratch>,
}

impl ConcurrentSketch {
    /// Create a sketch with `shards` independent shards (≥ 1) of the given
    /// configuration; shard count should roughly match writer-thread count.
    ///
    /// Dense store families get the lock-free atomic plane; sparse
    /// families get locked shards (see the module docs).
    pub fn with_config(config: SketchConfig, shards: usize) -> Result<Self, SketchError> {
        if AnyAtomicDDSketch::supports(&config) {
            Self::build(config, shards, true)
        } else {
            Self::build(config, shards, false)
        }
    }

    /// Like [`Self::with_config`], but always uses locked shards, even for
    /// the dense families the atomic plane would normally serve. This is
    /// the baseline the ingest benchmarks compare the lock-free plane
    /// against; production code has no reason to prefer it.
    pub fn with_config_locked(config: SketchConfig, shards: usize) -> Result<Self, SketchError> {
        Self::build(config, shards, false)
    }

    fn build(config: SketchConfig, shards: usize, atomic: bool) -> Result<Self, SketchError> {
        if shards == 0 {
            return Err(SketchError::InvalidConfig("shards must be positive".into()));
        }
        let plane = if atomic {
            Plane::Atomic(
                (0..shards)
                    .map(|_| AnyAtomicDDSketch::new(config))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        } else {
            Plane::Locked(
                (0..shards)
                    .map(|_| config.build().map(Mutex::new))
                    .collect::<Result<Vec<_>, _>>()?,
            )
        };
        Ok(Self {
            config,
            plane,
            read_scratch: Mutex::new(ReadScratch::default()),
        })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping) — served by
    /// the lock-free atomic plane.
    pub fn new(alpha: f64, max_bins: usize, shards: usize) -> Result<Self, SketchError> {
        Self::with_config(SketchConfig::dense_collapsing(alpha, max_bins), shards)
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        match &self.plane {
            Plane::Locked(shards) => shards.len(),
            Plane::Atomic(shards) => shards.len(),
        }
    }

    /// Whether ingestion runs on the lock-free atomic plane (dense store
    /// families) rather than locked shards.
    pub fn is_lock_free(&self) -> bool {
        matches!(self.plane, Plane::Atomic(_))
    }

    /// Insert with an explicit shard hint (e.g. a worker id); any value
    /// works — it is reduced modulo the shard count.
    pub fn add_hinted(&self, hint: usize, value: f64) -> Result<(), SketchError> {
        match &self.plane {
            Plane::Locked(shards) => shards[hint % shards.len()].lock().add(value),
            Plane::Atomic(shards) => shards[hint % shards.len()].add(value),
        }
    }

    /// Insert `count` copies of `value` with an explicit shard hint.
    pub fn add_n_hinted(&self, hint: usize, value: f64, count: u64) -> Result<(), SketchError> {
        match &self.plane {
            Plane::Locked(shards) => shards[hint % shards.len()].lock().add_n(value, count),
            Plane::Atomic(shards) => shards[hint % shards.len()].add_n(value, count),
        }
    }

    /// Insert using the calling thread's default shard (a hash of its
    /// thread id — uncontended as long as writer threads ≤ shards, with no
    /// shared counter for every writer to bounce a cache line on).
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        self.add_hinted(thread_shard(), value)
    }

    /// Insert `count` copies of `value` using the calling thread's
    /// default shard.
    pub fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        self.add_n_hinted(thread_shard(), value, count)
    }

    /// Alias for [`ConcurrentSketch::add_n`], matching the sketch-layer
    /// weighted-ingestion surface ([`ddsketch::DDSketch::add_with_count`]):
    /// the natural entry point for pre-aggregated client submissions
    /// ("this value occurred `count` times").
    pub fn add_with_count(&self, value: f64, count: u64) -> Result<(), SketchError> {
        self.add_n(value, count)
    }

    /// Bulk-insert a batch into one shard. On the locked plane this is a
    /// single lock acquisition and one batched sketch ingestion; on the
    /// atomic plane the batch is validated up front and the striped
    /// summaries are updated once for the whole slice.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: an
    /// unsupported value fails the whole batch without ingesting anything.
    pub fn add_slice_hinted(&self, hint: usize, values: &[f64]) -> Result<(), SketchError> {
        match &self.plane {
            Plane::Locked(shards) => shards[hint % shards.len()].lock().add_slice(values),
            Plane::Atomic(shards) => shards[hint % shards.len()].add_slice(values),
        }
    }

    /// Bulk-insert a batch using the calling thread's default shard.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        self.add_slice_hinted(thread_shard(), values)
    }

    /// Total count across shards. Lock-free on the atomic plane (a sum of
    /// relaxed striped counters); takes each shard lock briefly on the
    /// locked plane.
    pub fn count(&self) -> u64 {
        match &self.plane {
            Plane::Locked(shards) => shards.iter().map(|s| s.lock().count()).sum(),
            Plane::Atomic(shards) => shards.iter().map(|s| s.count()).sum(),
        }
    }

    /// A thread-local ingestion front-end: values accumulate in a private
    /// sequential sketch and publish to this sketch at flush boundaries
    /// (every [`LocalIngest::DEFAULT_FLUSH_EVERY`] values, configurable)
    /// and on drop. See [`LocalIngest`].
    pub fn local_ingest(&self) -> Result<LocalIngest<'_>, SketchError> {
        Ok(LocalIngest {
            parent: self,
            local: self.config.build()?,
            pending: 0,
            flush_every: LocalIngest::DEFAULT_FLUSH_EVERY,
        })
    }

    /// Copy every locked shard, holding each shard's lock only for the
    /// duration of its (cheap, bin-copying) clone — writers are never
    /// blocked on merge work.
    fn locked_copies(shards: &[Mutex<AnyDDSketch>]) -> Vec<AnyDDSketch> {
        shards.iter().map(|shard| shard.lock().clone()).collect()
    }

    /// Materialize every atomic shard into the recycled `scratch.copies`
    /// (growing it on first use). Each shard's scan is epoch-validated
    /// against concurrent folds; writers are never blocked.
    fn fill_atomic_copies(
        &self,
        shards: &[AnyAtomicDDSketch],
        scratch: &mut ReadScratch,
    ) -> Result<(), SketchError> {
        while scratch.copies.len() < shards.len() {
            scratch.copies.push(self.config.build()?);
        }
        for (shard, copy) in shards.iter().zip(scratch.copies.iter_mut()) {
            shard.snapshot_into(copy, &mut scratch.snap)?;
        }
        Ok(())
    }

    /// Merge all shards into a single snapshot sketch. By full
    /// mergeability this is exactly the sketch of every value inserted so
    /// far (modulo inserts racing with the snapshot).
    ///
    /// On the locked plane each shard lock is held only while that shard's
    /// bins are copied; on the atomic plane no writer is disturbed at all.
    /// The k-way merge itself ([`AnyDDSketch::merge_many`], one capacity
    /// decision for all shards) runs outside every lock.
    pub fn snapshot(&self) -> Result<AnyDDSketch, SketchError> {
        match &self.plane {
            Plane::Locked(shards) => {
                let mut copies = Self::locked_copies(shards).into_iter();
                let mut merged = copies.next().expect("shards >= 1");
                let rest: Vec<AnyDDSketch> = copies.collect();
                let refs: Vec<&AnyDDSketch> = rest.iter().collect();
                merged.merge_many(&refs)?;
                Ok(merged)
            }
            Plane::Atomic(shards) => {
                let mut guard = self.read_scratch.lock();
                let scratch = &mut *guard;
                self.fill_atomic_copies(shards, scratch)?;
                let mut merged = scratch.copies[0].clone();
                let refs: Vec<&AnyDDSketch> = scratch.copies[1..shards.len()].iter().collect();
                merged.merge_many(&refs)?;
                Ok(merged)
            }
        }
    }

    /// Convenience: a single quantile via [`Self::quantiles`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }

    /// Estimate several quantiles with **no materialized merge**: every
    /// rank is answered by one k-way sorted-rank walk
    /// ([`AnyDDSketch::merged_quantiles`]) — no merged store is built and
    /// no merge-time grow/collapse work happens at all. Output order
    /// matches `qs`, and each estimate equals what
    /// [`Self::snapshot`]`.quantiles(qs)` would return against the same
    /// shard states.
    ///
    /// On the atomic plane the walk runs over epoch-validated per-shard
    /// snapshots in recycled buffers — writers are never blocked, and no
    /// shard lock exists to take. On the locked plane, locking is tuned
    /// per store family: the contiguous (dense) families take the fully
    /// zero-copy path — all shard locks held (acquired in shard order, the
    /// only multi-lock path, so it cannot deadlock) for just the blocked,
    /// vectorized column walk — while the sparse families' per-bin walk
    /// scales with total non-empty bins, so each shard is copied under a
    /// short per-shard hold and the walk runs over the copies outside all
    /// locks.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        match &self.plane {
            Plane::Atomic(shards) => {
                let mut guard = self.read_scratch.lock();
                let scratch = &mut *guard;
                self.fill_atomic_copies(shards, scratch)?;
                let refs: Vec<&AnyDDSketch> = scratch.copies[..shards.len()].iter().collect();
                AnyDDSketch::merged_quantiles(&refs, qs)
            }
            Plane::Locked(shards) => {
                if matches!(
                    self.config.store,
                    StoreKind::Unbounded | StoreKind::CollapsingDense
                ) {
                    let guards: Vec<_> = shards.iter().map(Mutex::lock).collect();
                    let refs: Vec<&AnyDDSketch> = guards.iter().map(|guard| &**guard).collect();
                    AnyDDSketch::merged_quantiles(&refs, qs)
                } else {
                    let copies = Self::locked_copies(shards);
                    let refs: Vec<&AnyDDSketch> = copies.iter().collect();
                    AnyDDSketch::merged_quantiles(&refs, qs)
                }
            }
        }
    }
}

impl ConcurrentIngest for ConcurrentSketch {
    fn add(&self, value: f64) -> Result<(), SketchError> {
        ConcurrentSketch::add(self, value)
    }

    fn add_n(&self, value: f64, count: u64) -> Result<(), SketchError> {
        ConcurrentSketch::add_n(self, value, count)
    }

    fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        ConcurrentSketch::add_slice(self, values)
    }

    fn count(&self) -> u64 {
        ConcurrentSketch::count(self)
    }
}

/// A thread-local ingestion front-end over a [`ConcurrentSketch`].
///
/// Even a relaxed `fetch_add` costs a shared cache line when many cores
/// hammer the same hot buckets. `LocalIngest` removes that traffic from
/// the per-value path entirely: each value lands in a **private**
/// sequential sketch (plain `u64` counters, no atomics), and only at a
/// flush boundary — every [`LocalIngest::DEFAULT_FLUSH_EVERY`] values by
/// default, on an explicit [`LocalIngest::flush`], or on drop — are the
/// accumulated deltas published to the shared sketch in one bin-wise pass.
/// Because DDSketch is fully mergeable, the published result is exactly
/// the sketch of all values, regardless of flush timing.
///
/// The trade-off is staleness: up to `flush_every` values per thread are
/// invisible to readers until the next flush. Dropping the front-end
/// flushes the remainder (a publish failure on drop is ignored — it can
/// only happen for config mismatches, which [`ConcurrentSketch::local_ingest`]
/// rules out by construction).
#[derive(Debug)]
pub struct LocalIngest<'a> {
    parent: &'a ConcurrentSketch,
    local: AnyDDSketch,
    pending: u64,
    flush_every: u64,
}

impl LocalIngest<'_> {
    /// Default flush boundary: values per publish.
    pub const DEFAULT_FLUSH_EVERY: u64 = 8192;

    /// Set the flush boundary (≥ 1): publish after this many values.
    pub fn flush_every(mut self, every: u64) -> Self {
        self.flush_every = every.max(1);
        self
    }

    /// Values accumulated since the last publish.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Insert one value into the private sketch.
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        self.add_n(value, 1)
    }

    /// Insert `count` copies of `value` into the private sketch.
    pub fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        self.local.add_n(value, count)?;
        self.pending += count;
        self.maybe_flush()
    }

    /// Insert a batch into the private sketch (all-or-nothing, like
    /// [`ddsketch::DDSketch::add_slice`]).
    pub fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        self.local.add_slice(values)?;
        self.pending += values.len() as u64;
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<(), SketchError> {
        if self.pending >= self.flush_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Publish the private sketch's contents to the shared sketch and
    /// clear the private sketch. A no-op when nothing is pending.
    pub fn flush(&mut self) -> Result<(), SketchError> {
        if self.local.is_empty() {
            self.pending = 0;
            return Ok(());
        }
        match &self.parent.plane {
            Plane::Atomic(shards) => {
                shards[thread_shard() % shards.len()].absorb(&self.local)?;
            }
            Plane::Locked(shards) => {
                shards[thread_shard() % shards.len()]
                    .lock()
                    .merge_from(&self.local)?;
            }
        }
        self.local.clear();
        self.pending = 0;
        Ok(())
    }
}

impl Drop for LocalIngest<'_> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsketch::presets;
    use std::sync::Arc;

    #[test]
    fn constructor_validates() {
        assert!(ConcurrentSketch::new(0.01, 2048, 0).is_err());
        assert!(ConcurrentSketch::new(0.0, 2048, 4).is_err());
        assert!(ConcurrentSketch::new(0.01, 2048, 4).is_ok());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(0.01), 0).is_err());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(2.0), 4).is_err());
        assert!(ConcurrentSketch::with_config_locked(SketchConfig::unbounded(0.01), 0).is_err());
    }

    #[test]
    fn plane_selection_follows_store_family() {
        for config in SketchConfig::all(0.01, 1024) {
            let cs = ConcurrentSketch::with_config(config, 2).unwrap();
            let dense = matches!(
                config.store,
                StoreKind::Unbounded | StoreKind::CollapsingDense
            );
            assert_eq!(cs.is_lock_free(), dense, "{}", config.name());
            // The locked baseline is available for every config.
            let locked = ConcurrentSketch::with_config_locked(config, 2).unwrap();
            assert!(!locked.is_lock_free());
        }
    }

    #[test]
    fn sequential_inserts_match_plain_sketch() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        assert!(cs.is_lock_free());
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=10_000 {
            let v = f64::from(i) * 0.1;
            cs.add(v).unwrap();
            plain.add(v).unwrap();
        }
        assert_eq!(cs.count(), plain.count());
        let snap = cs.snapshot().unwrap();
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn every_config_works_behind_the_concurrent_facade() {
        for config in SketchConfig::all(0.01, 1024) {
            let cs = ConcurrentSketch::with_config(config, 3).unwrap();
            assert_eq!(cs.config(), config);
            let mut plain = config.build().unwrap();
            for i in 1..=3_000 {
                let v = f64::from(i) * 0.3;
                cs.add_hinted(i as usize, v).unwrap();
                plain.add(v).unwrap();
            }
            let snap = cs.snapshot().unwrap();
            assert_eq!(snap.config(), config);
            assert_eq!(snap.count(), plain.count(), "{}", config.name());
            for q in [0.1, 0.5, 0.99] {
                assert_eq!(
                    snap.quantile(q).unwrap(),
                    plain.quantile(q).unwrap(),
                    "{} q = {q}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn locked_and_atomic_planes_agree_exactly() {
        for config in [
            SketchConfig::unbounded(0.01),
            SketchConfig::dense_collapsing(0.01, 512),
            SketchConfig::fast(0.01, 512),
        ] {
            let atomic = ConcurrentSketch::with_config(config, 4).unwrap();
            let locked = ConcurrentSketch::with_config_locked(config, 4).unwrap();
            assert!(atomic.is_lock_free() && !locked.is_lock_free());
            for i in 1..=8_000usize {
                let v = (i as f64).sqrt() * if i % 4 == 0 { -0.9 } else { 0.7 };
                atomic.add_hinted(i, v).unwrap();
                locked.add_hinted(i, v).unwrap();
            }
            assert_eq!(atomic.count(), locked.count());
            let (a, l) = (atomic.snapshot().unwrap(), locked.snapshot().unwrap());
            assert_eq!(a.positive_bins(), l.positive_bins(), "{}", config.name());
            assert_eq!(a.negative_bins(), l.negative_bins());
            assert_eq!(a.min(), l.min());
            assert_eq!(a.max(), l.max());
            let qs = [0.0, 0.1, 0.5, 0.9, 1.0];
            assert_eq!(
                atomic.quantiles(&qs).unwrap(),
                locked.quantiles(&qs).unwrap()
            );
        }
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8;
        let per_thread = 25_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic per-thread values.
                        let v = 1.0 + f64::from(t * per_thread + i) * 1e-3;
                        cs.add_hinted(t as usize, v).unwrap();
                    }
                });
            }
        });
        assert_eq!(cs.count(), u64::from(threads) * u64::from(per_thread));

        // The snapshot must be bucket-identical to a single sketch over
        // the same 200k values.
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                plain
                    .add(1.0 + f64::from(t * per_thread + i) * 1e-3)
                    .unwrap();
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn unhinted_multithread_ingest_bucket_matches_plain_sketch() {
        // Writers without a shard hint land on a thread-identity hash;
        // whatever the shard assignment, the merged view must be
        // bucket-identical to a single sketch over all inserted values.
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8u32;
        let per_thread = 10_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let v = 0.5 + f64::from(t * per_thread + i) * 1e-3;
                        if i % 3 == 0 {
                            cs.add(v).unwrap();
                        } else if i % 3 == 1 {
                            cs.add(-v).unwrap();
                        } else {
                            cs.add_slice(&[v, v * 2.0]).unwrap();
                        }
                    }
                });
            }
        });
        let mut plain = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                let v = 0.5 + f64::from(t * per_thread + i) * 1e-3;
                if i % 3 == 0 {
                    plain.add(v).unwrap();
                } else if i % 3 == 1 {
                    plain.add(-v).unwrap();
                } else {
                    plain.add_slice(&[v, v * 2.0]).unwrap();
                }
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.positive_bins(), plain.positive_bins());
        assert_eq!(snap.negative_bins(), plain.negative_bins());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                cs.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn quantiles_never_materialize_but_match_snapshot() {
        for config in SketchConfig::all(0.01, 256) {
            let cs = ConcurrentSketch::with_config(config, 5).unwrap();
            for i in 1..=5_000usize {
                cs.add_hinted(i, (i as f64).sqrt() * 0.7).unwrap();
            }
            let qs = [0.99, 0.0, 0.5, 1.0, 0.75];
            let direct = cs.quantiles(&qs).unwrap();
            let via_snapshot = cs.snapshot().unwrap().quantiles(&qs).unwrap();
            assert_eq!(direct, via_snapshot, "{}", config.name());
        }
    }

    #[test]
    fn batched_inserts_match_scalar_inserts() {
        let scalar = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let batched = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let values: Vec<f64> = (1..=40_000).map(|i| 0.5 + f64::from(i) * 1e-3).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let (scalar, batched, values) = (&scalar, &batched, &values);
                scope.spawn(move || {
                    let mine: Vec<f64> = values[t * 10_000..(t + 1) * 10_000].to_vec();
                    for &v in &mine {
                        scalar.add_hinted(t, v).unwrap();
                    }
                    // Shard-local batch buffer, flushed in chunks.
                    for chunk in mine.chunks(1024) {
                        batched.add_slice_hinted(t, chunk).unwrap();
                    }
                });
            }
        });
        assert_eq!(batched.count(), scalar.count());
        let (a, b) = (batched.snapshot().unwrap(), scalar.snapshot().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(a.quantile(q).unwrap(), b.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn batch_quantiles_match_single_quantile_calls() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        for i in 1..=20_000 {
            cs.add_hinted(i, 0.2 + i as f64 * 1e-3).unwrap();
        }
        // Unsorted, duplicated request order.
        let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.25];
        let batch = cs.quantiles(&qs).unwrap();
        assert_eq!(batch.len(), qs.len());
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, cs.quantile(q).unwrap(), "q = {q}");
        }
        // Validation propagates like the scalar path.
        assert!(cs.quantiles(&[0.5, 1.5]).is_err());
        assert_eq!(cs.quantiles(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn snapshot_of_empty_sketch_is_empty() {
        let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
        let snap = cs.snapshot().unwrap();
        assert!(snap.is_empty());
        assert!(cs.quantile(0.5).is_err());
        assert!(cs.quantiles(&[0.5]).is_err());
    }

    #[test]
    fn local_ingest_publishes_at_flush_boundaries_and_on_drop() {
        let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
        {
            let mut local = cs.local_ingest().unwrap().flush_every(100);
            for i in 1..=250 {
                local.add(f64::from(i)).unwrap();
            }
            // Two automatic flushes have happened; 50 values pending.
            assert_eq!(local.pending(), 50);
            assert_eq!(cs.count(), 200);
            local.add_n(3.0, 10).unwrap();
            local.add_slice(&[1.0, 2.0]).unwrap();
            assert_eq!(local.pending(), 62);
        } // Drop publishes the remainder.
        assert_eq!(cs.count(), 262);

        // The published union is exactly the single-threaded sketch.
        let mut plain = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        for i in 1..=250 {
            plain.add(f64::from(i)).unwrap();
        }
        plain.add_n(3.0, 10).unwrap();
        plain.add_slice(&[1.0, 2.0]).unwrap();
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.positive_bins(), plain.positive_bins());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
    }

    #[test]
    fn local_ingest_multithreaded_union_is_exact() {
        // One LocalIngest per writer over both planes; the quiesced union
        // must be bucket-identical to a single-threaded sketch.
        type Make = fn(SketchConfig, usize) -> Result<ConcurrentSketch, SketchError>;
        for make in [
            ConcurrentSketch::with_config as Make,
            ConcurrentSketch::with_config_locked as Make,
        ] {
            let config = SketchConfig::dense_collapsing(0.01, 1024);
            let cs = make(config, 4).unwrap();
            let threads = 4u32;
            let per_thread = 20_000u32;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cs = &cs;
                    scope.spawn(move || {
                        let mut local = cs.local_ingest().unwrap().flush_every(1000);
                        for i in 0..per_thread {
                            let v = 0.1 + f64::from(t * per_thread + i) * 1e-3;
                            local.add(v).unwrap();
                        }
                    });
                }
            });
            let mut plain = config.build().unwrap();
            for t in 0..threads {
                for i in 0..per_thread {
                    plain
                        .add(0.1 + f64::from(t * per_thread + i) * 1e-3)
                        .unwrap();
                }
            }
            let snap = cs.snapshot().unwrap();
            assert_eq!(snap.count(), plain.count());
            assert_eq!(snap.positive_bins(), plain.positive_bins());
            assert_eq!(snap.min(), plain.min());
            assert_eq!(snap.max(), plain.max());
        }
    }
}
