//! A thread-safe sketch for multi-threaded producers.
//!
//! High-throughput endpoints ("over 10M points per second", paper
//! Section 5) are served by many worker threads. Because DDSketch is fully
//! mergeable, the cheapest safe design is *sharding*: each shard is an
//! independent sketch behind its own lock, writers pick a shard by thread
//! identity, and readers merge all shards on demand — the merged view is
//! exactly the sketch of all inserted values, by full mergeability.
//!
//! The sketch configuration is runtime data ([`SketchConfig`]): the same
//! concurrent facade serves every preset, from the paper's collapsing
//! dense default to the sparse memory-bound variants.

use std::sync::atomic::{AtomicUsize, Ordering};

use ddsketch::{AnyDDSketch, SketchConfig, SketchError};
use parking_lot::Mutex;

/// A sharded, thread-safe DDSketch over any runtime configuration.
#[derive(Debug)]
pub struct ConcurrentSketch {
    config: SketchConfig,
    shards: Vec<Mutex<AnyDDSketch>>,
    /// Round-robin assignment for callers without a shard hint.
    next: AtomicUsize,
}

impl ConcurrentSketch {
    /// Create a sketch with `shards` independent shards (≥ 1) of the given
    /// configuration; shard count should roughly match writer-thread count.
    pub fn with_config(config: SketchConfig, shards: usize) -> Result<Self, SketchError> {
        if shards == 0 {
            return Err(SketchError::InvalidConfig("shards must be positive".into()));
        }
        let shards = (0..shards)
            .map(|_| config.build().map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            config,
            shards,
            next: AtomicUsize::new(0),
        })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(alpha: f64, max_bins: usize, shards: usize) -> Result<Self, SketchError> {
        Self::with_config(SketchConfig::dense_collapsing(alpha, max_bins), shards)
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Insert with an explicit shard hint (e.g. a worker id); any value
    /// works — it is reduced modulo the shard count.
    pub fn add_hinted(&self, hint: usize, value: f64) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()].lock().add(value)
    }

    /// Insert using a round-robin shard (uncontended as long as writer
    /// count ≤ shard count).
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        let hint = self.next.fetch_add(1, Ordering::Relaxed);
        self.add_hinted(hint, value)
    }

    /// Bulk-insert a batch into one shard: a single lock acquisition and a
    /// single batched sketch ingestion for the whole slice — the fast path
    /// for writers that buffer locally and flush periodically.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: an
    /// unsupported value fails the whole batch without ingesting anything.
    pub fn add_slice_hinted(&self, hint: usize, values: &[f64]) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()]
            .lock()
            .add_slice(values)
    }

    /// Bulk-insert a batch using a round-robin shard.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        let hint = self.next.fetch_add(1, Ordering::Relaxed);
        self.add_slice_hinted(hint, values)
    }

    /// Total count across shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().count()).sum()
    }

    /// Merge all shards into a single snapshot sketch. By full
    /// mergeability this is exactly the sketch of every value inserted so
    /// far (modulo inserts racing with the snapshot).
    pub fn snapshot(&self) -> Result<AnyDDSketch, SketchError> {
        let mut iter = self.shards.iter();
        let mut merged = iter.next().expect("shards >= 1").lock().clone();
        for shard in iter {
            merged.merge_from(&shard.lock())?;
        }
        Ok(merged)
    }

    /// Convenience: quantile of a fresh snapshot.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        self.snapshot()?.quantile(q)
    }

    /// Estimate several quantiles from **one** snapshot: the shards are
    /// merged once, then all ranks are answered by a single sorted-rank
    /// walk of the merged stores ([`AnyDDSketch::quantiles`]) — instead of
    /// paying a full shard-merge per quantile as repeated
    /// [`Self::quantile`] calls would. Output order matches `qs`, and each
    /// estimate equals what `quantile` would return against the same
    /// snapshot.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        self.snapshot()?.quantiles(qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsketch::presets;
    use std::sync::Arc;

    #[test]
    fn constructor_validates() {
        assert!(ConcurrentSketch::new(0.01, 2048, 0).is_err());
        assert!(ConcurrentSketch::new(0.0, 2048, 4).is_err());
        assert!(ConcurrentSketch::new(0.01, 2048, 4).is_ok());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(0.01), 0).is_err());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(2.0), 4).is_err());
    }

    #[test]
    fn sequential_inserts_match_plain_sketch() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=10_000 {
            let v = f64::from(i) * 0.1;
            cs.add(v).unwrap();
            plain.add(v).unwrap();
        }
        assert_eq!(cs.count(), plain.count());
        let snap = cs.snapshot().unwrap();
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn every_config_works_behind_the_concurrent_facade() {
        for config in SketchConfig::all(0.01, 1024) {
            let cs = ConcurrentSketch::with_config(config, 3).unwrap();
            assert_eq!(cs.config(), config);
            let mut plain = config.build().unwrap();
            for i in 1..=3_000 {
                let v = f64::from(i) * 0.3;
                cs.add_hinted(i as usize, v).unwrap();
                plain.add(v).unwrap();
            }
            let snap = cs.snapshot().unwrap();
            assert_eq!(snap.config(), config);
            assert_eq!(snap.count(), plain.count(), "{}", config.name());
            for q in [0.1, 0.5, 0.99] {
                assert_eq!(
                    snap.quantile(q).unwrap(),
                    plain.quantile(q).unwrap(),
                    "{} q = {q}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8;
        let per_thread = 25_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic per-thread values.
                        let v = 1.0 + f64::from(t * per_thread + i) * 1e-3;
                        cs.add_hinted(t as usize, v).unwrap();
                    }
                });
            }
        });
        assert_eq!(cs.count(), u64::from(threads) * u64::from(per_thread));

        // The snapshot must be bucket-identical to a single sketch over
        // the same 200k values.
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                plain
                    .add(1.0 + f64::from(t * per_thread + i) * 1e-3)
                    .unwrap();
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn batched_inserts_match_scalar_inserts() {
        let scalar = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let batched = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let values: Vec<f64> = (1..=40_000).map(|i| 0.5 + f64::from(i) * 1e-3).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let (scalar, batched, values) = (&scalar, &batched, &values);
                scope.spawn(move || {
                    let mine: Vec<f64> = values[t * 10_000..(t + 1) * 10_000].to_vec();
                    for &v in &mine {
                        scalar.add_hinted(t, v).unwrap();
                    }
                    // Shard-local batch buffer, flushed in chunks.
                    for chunk in mine.chunks(1024) {
                        batched.add_slice_hinted(t, chunk).unwrap();
                    }
                });
            }
        });
        assert_eq!(batched.count(), scalar.count());
        let (a, b) = (batched.snapshot().unwrap(), scalar.snapshot().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(a.quantile(q).unwrap(), b.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn batch_quantiles_match_single_quantile_calls() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        for i in 1..=20_000 {
            cs.add_hinted(i, 0.2 + i as f64 * 1e-3).unwrap();
        }
        // Unsorted, duplicated request order.
        let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.25];
        let batch = cs.quantiles(&qs).unwrap();
        assert_eq!(batch.len(), qs.len());
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, cs.quantile(q).unwrap(), "q = {q}");
        }
        // Validation propagates like the scalar path.
        assert!(cs.quantiles(&[0.5, 1.5]).is_err());
        assert_eq!(cs.quantiles(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn snapshot_of_empty_sketch_is_empty() {
        let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
        let snap = cs.snapshot().unwrap();
        assert!(snap.is_empty());
        assert!(cs.quantile(0.5).is_err());
        assert!(cs.quantiles(&[0.5]).is_err());
    }
}
