//! A thread-safe sketch for multi-threaded producers.
//!
//! High-throughput endpoints ("over 10M points per second", paper
//! Section 5) are served by many worker threads. Because DDSketch is fully
//! mergeable, the cheapest safe design is *sharding*: each shard is an
//! independent sketch behind its own lock, writers pick a shard by thread
//! identity, and readers merge all shards on demand — the merged view is
//! exactly the sketch of all inserted values, by full mergeability.
//!
//! Reads ride the k-way merge plane: [`ConcurrentSketch::snapshot`] holds
//! each shard lock only long enough to copy that shard's bins and runs
//! the one k-way merge outside every lock, while
//! [`ConcurrentSketch::quantiles`] never materializes a merged sketch at
//! all — a direct rank walk over the shards (zero-copy for the dense
//! families, over short-hold bin copies for the sparse ones).
//!
//! The sketch configuration is runtime data ([`SketchConfig`]): the same
//! concurrent facade serves every preset, from the paper's collapsing
//! dense default to the sparse memory-bound variants.

use ddsketch::{AnyDDSketch, SketchConfig, SketchError, StoreKind};
use parking_lot::Mutex;

/// The calling thread's default shard: a hash of its `ThreadId`, computed
/// once per thread. Unlike a shared round-robin counter, this costs no
/// cross-thread cache-line traffic on the write path, and a thread keeps
/// hitting the same shard — uncontended as long as threads don't outnumber
/// shards (and merely contended, never wrong, when they do).
pub(crate) fn thread_shard() -> usize {
    use std::hash::{Hash, Hasher};
    std::thread_local! {
        static SHARD: usize = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            hasher.finish() as usize
        };
    }
    SHARD.with(|shard| *shard)
}

/// A sharded, thread-safe DDSketch over any runtime configuration.
#[derive(Debug)]
pub struct ConcurrentSketch {
    config: SketchConfig,
    shards: Vec<Mutex<AnyDDSketch>>,
}

impl ConcurrentSketch {
    /// Create a sketch with `shards` independent shards (≥ 1) of the given
    /// configuration; shard count should roughly match writer-thread count.
    pub fn with_config(config: SketchConfig, shards: usize) -> Result<Self, SketchError> {
        if shards == 0 {
            return Err(SketchError::InvalidConfig("shards must be positive".into()));
        }
        let shards = (0..shards)
            .map(|_| config.build().map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { config, shards })
    }

    /// Convenience constructor for the paper's default configuration
    /// (collapsing dense stores, exact logarithmic mapping).
    pub fn new(alpha: f64, max_bins: usize, shards: usize) -> Result<Self, SketchError> {
        Self::with_config(SketchConfig::dense_collapsing(alpha, max_bins), shards)
    }

    /// The configuration every shard was built with.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Insert with an explicit shard hint (e.g. a worker id); any value
    /// works — it is reduced modulo the shard count.
    pub fn add_hinted(&self, hint: usize, value: f64) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()].lock().add(value)
    }

    /// Insert using the calling thread's default shard (a hash of its
    /// thread id — uncontended as long as writer threads ≤ shards, with no
    /// shared counter for every writer to bounce a cache line on).
    pub fn add(&self, value: f64) -> Result<(), SketchError> {
        self.add_hinted(thread_shard(), value)
    }

    /// Bulk-insert a batch into one shard: a single lock acquisition and a
    /// single batched sketch ingestion for the whole slice — the fast path
    /// for writers that buffer locally and flush periodically.
    ///
    /// All-or-nothing like [`ddsketch::DDSketch::add_slice`]: an
    /// unsupported value fails the whole batch without ingesting anything.
    pub fn add_slice_hinted(&self, hint: usize, values: &[f64]) -> Result<(), SketchError> {
        self.shards[hint % self.shards.len()]
            .lock()
            .add_slice(values)
    }

    /// Bulk-insert a batch using the calling thread's default shard.
    pub fn add_slice(&self, values: &[f64]) -> Result<(), SketchError> {
        self.add_slice_hinted(thread_shard(), values)
    }

    /// Total count across shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().count()).sum()
    }

    /// Copy every shard, holding each shard's lock only for the duration
    /// of its (cheap, bin-copying) clone — writers are never blocked on
    /// merge work.
    fn shard_copies(&self) -> Vec<AnyDDSketch> {
        self.shards
            .iter()
            .map(|shard| shard.lock().clone())
            .collect()
    }

    /// Merge all shards into a single snapshot sketch. By full
    /// mergeability this is exactly the sketch of every value inserted so
    /// far (modulo inserts racing with the snapshot).
    ///
    /// Each shard lock is held only while that shard's bins are copied;
    /// the k-way merge itself ([`AnyDDSketch::merge_many`], one capacity
    /// decision for all shards) runs outside every lock.
    pub fn snapshot(&self) -> Result<AnyDDSketch, SketchError> {
        let mut copies = self.shard_copies().into_iter();
        let mut merged = copies.next().expect("shards >= 1");
        let rest: Vec<AnyDDSketch> = copies.collect();
        let refs: Vec<&AnyDDSketch> = rest.iter().collect();
        merged.merge_many(&refs)?;
        Ok(merged)
    }

    /// Convenience: a single quantile via [`Self::quantiles`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        Ok(self.quantiles(std::slice::from_ref(&q))?[0])
    }

    /// Estimate several quantiles with **no materialized merge**: every
    /// rank is answered by one k-way sorted-rank walk
    /// ([`AnyDDSketch::merged_quantiles`]) — no merged store is built and
    /// no merge-time grow/collapse work happens at all. Output order
    /// matches `qs`, and each estimate equals what
    /// [`Self::snapshot`]`.quantiles(qs)` would return against the same
    /// shard states.
    ///
    /// Locking is tuned per store family. The contiguous (dense) families
    /// take the fully zero-copy path: all shard locks are held (acquired
    /// in shard order — this is the only multi-lock path, so it cannot
    /// deadlock) for just the blocked, vectorized column walk, whose cost
    /// is bounded by the stores' index span — comparable to the one
    /// `merge_from` the old snapshot ran under each shard's lock, and far
    /// less total work. The sparse families' per-bin walk instead scales
    /// with total non-empty bins, so there each shard is copied under a
    /// short per-shard hold (a bin copy, like [`Self::snapshot`]) and the
    /// walk runs over the copies outside all locks — writers never wait
    /// on read work.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        if matches!(
            self.config.store,
            StoreKind::Unbounded | StoreKind::CollapsingDense
        ) {
            let guards: Vec<_> = self.shards.iter().map(Mutex::lock).collect();
            let refs: Vec<&AnyDDSketch> = guards.iter().map(|guard| &**guard).collect();
            AnyDDSketch::merged_quantiles(&refs, qs)
        } else {
            let copies = self.shard_copies();
            let refs: Vec<&AnyDDSketch> = copies.iter().collect();
            AnyDDSketch::merged_quantiles(&refs, qs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsketch::presets;
    use std::sync::Arc;

    #[test]
    fn constructor_validates() {
        assert!(ConcurrentSketch::new(0.01, 2048, 0).is_err());
        assert!(ConcurrentSketch::new(0.0, 2048, 4).is_err());
        assert!(ConcurrentSketch::new(0.01, 2048, 4).is_ok());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(0.01), 0).is_err());
        assert!(ConcurrentSketch::with_config(SketchConfig::sparse(2.0), 4).is_err());
    }

    #[test]
    fn sequential_inserts_match_plain_sketch() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=10_000 {
            let v = f64::from(i) * 0.1;
            cs.add(v).unwrap();
            plain.add(v).unwrap();
        }
        assert_eq!(cs.count(), plain.count());
        let snap = cs.snapshot().unwrap();
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn every_config_works_behind_the_concurrent_facade() {
        for config in SketchConfig::all(0.01, 1024) {
            let cs = ConcurrentSketch::with_config(config, 3).unwrap();
            assert_eq!(cs.config(), config);
            let mut plain = config.build().unwrap();
            for i in 1..=3_000 {
                let v = f64::from(i) * 0.3;
                cs.add_hinted(i as usize, v).unwrap();
                plain.add(v).unwrap();
            }
            let snap = cs.snapshot().unwrap();
            assert_eq!(snap.config(), config);
            assert_eq!(snap.count(), plain.count(), "{}", config.name());
            for q in [0.1, 0.5, 0.99] {
                assert_eq!(
                    snap.quantile(q).unwrap(),
                    plain.quantile(q).unwrap(),
                    "{} q = {q}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8;
        let per_thread = 25_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic per-thread values.
                        let v = 1.0 + f64::from(t * per_thread + i) * 1e-3;
                        cs.add_hinted(t as usize, v).unwrap();
                    }
                });
            }
        });
        assert_eq!(cs.count(), u64::from(threads) * u64::from(per_thread));

        // The snapshot must be bucket-identical to a single sketch over
        // the same 200k values.
        let mut plain = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                plain
                    .add(1.0 + f64::from(t * per_thread + i) * 1e-3)
                    .unwrap();
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                snap.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn unhinted_multithread_ingest_bucket_matches_plain_sketch() {
        // Writers without a shard hint land on a thread-identity hash;
        // whatever the shard assignment, the merged view must be
        // bucket-identical to a single sketch over all inserted values.
        let cs = Arc::new(ConcurrentSketch::new(0.01, 2048, 8).unwrap());
        let threads = 8u32;
        let per_thread = 10_000u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cs = Arc::clone(&cs);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let v = 0.5 + f64::from(t * per_thread + i) * 1e-3;
                        if i % 3 == 0 {
                            cs.add(v).unwrap();
                        } else if i % 3 == 1 {
                            cs.add(-v).unwrap();
                        } else {
                            cs.add_slice(&[v, v * 2.0]).unwrap();
                        }
                    }
                });
            }
        });
        let mut plain = SketchConfig::dense_collapsing(0.01, 2048).build().unwrap();
        for t in 0..threads {
            for i in 0..per_thread {
                let v = 0.5 + f64::from(t * per_thread + i) * 1e-3;
                if i % 3 == 0 {
                    plain.add(v).unwrap();
                } else if i % 3 == 1 {
                    plain.add(-v).unwrap();
                } else {
                    plain.add_slice(&[v, v * 2.0]).unwrap();
                }
            }
        }
        let snap = cs.snapshot().unwrap();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.positive_bins(), plain.positive_bins());
        assert_eq!(snap.negative_bins(), plain.negative_bins());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                cs.quantile(q).unwrap(),
                plain.quantile(q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn quantiles_never_materialize_but_match_snapshot() {
        for config in SketchConfig::all(0.01, 256) {
            let cs = ConcurrentSketch::with_config(config, 5).unwrap();
            for i in 1..=5_000usize {
                cs.add_hinted(i, (i as f64).sqrt() * 0.7).unwrap();
            }
            let qs = [0.99, 0.0, 0.5, 1.0, 0.75];
            let direct = cs.quantiles(&qs).unwrap();
            let via_snapshot = cs.snapshot().unwrap().quantiles(&qs).unwrap();
            assert_eq!(direct, via_snapshot, "{}", config.name());
        }
    }

    #[test]
    fn batched_inserts_match_scalar_inserts() {
        let scalar = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let batched = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        let values: Vec<f64> = (1..=40_000).map(|i| 0.5 + f64::from(i) * 1e-3).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let (scalar, batched, values) = (&scalar, &batched, &values);
                scope.spawn(move || {
                    let mine: Vec<f64> = values[t * 10_000..(t + 1) * 10_000].to_vec();
                    for &v in &mine {
                        scalar.add_hinted(t, v).unwrap();
                    }
                    // Shard-local batch buffer, flushed in chunks.
                    for chunk in mine.chunks(1024) {
                        batched.add_slice_hinted(t, chunk).unwrap();
                    }
                });
            }
        });
        assert_eq!(batched.count(), scalar.count());
        let (a, b) = (batched.snapshot().unwrap(), scalar.snapshot().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(a.quantile(q).unwrap(), b.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn batch_quantiles_match_single_quantile_calls() {
        let cs = ConcurrentSketch::new(0.01, 2048, 4).unwrap();
        for i in 1..=20_000 {
            cs.add_hinted(i, 0.2 + i as f64 * 1e-3).unwrap();
        }
        // Unsorted, duplicated request order.
        let qs = [0.99, 0.0, 0.5, 0.5, 1.0, 0.25];
        let batch = cs.quantiles(&qs).unwrap();
        assert_eq!(batch.len(), qs.len());
        for (&q, &got) in qs.iter().zip(&batch) {
            assert_eq!(got, cs.quantile(q).unwrap(), "q = {q}");
        }
        // Validation propagates like the scalar path.
        assert!(cs.quantiles(&[0.5, 1.5]).is_err());
        assert_eq!(cs.quantiles(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn snapshot_of_empty_sketch_is_empty() {
        let cs = ConcurrentSketch::new(0.01, 2048, 2).unwrap();
        let snap = cs.snapshot().unwrap();
        assert!(snap.is_empty());
        assert!(cs.quantile(0.5).is_err());
        assert!(cs.quantiles(&[0.5]).is_err());
    }
}
