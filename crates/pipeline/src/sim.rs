//! End-to-end simulation of the paper's Figure 1 deployment.
//!
//! Worker threads handle "requests" for a set of endpoints, noting each
//! latency into per-(endpoint, window) sketches. At the end of each window
//! the worker serializes its sketches with the compact wire codec and
//! ships them over a channel to the aggregator — which decodes and merges
//! them into a [`TimeSeriesStore`]. Because DDSketch is fully mergeable,
//! the aggregated store is *bucket-identical* to a store that had ingested
//! every raw latency directly; the tests assert exactly that.
//!
//! The sketch configuration is part of [`SimConfig`]: the same simulation
//! runs under every preset (dense-collapsing, fast, sparse, …), and the
//! aggregator reconstructs whatever arrives via the self-describing
//! [`AnyDDSketch::decode`] — it never needs to know what the workers run.

use crossbeam::channel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use datasets::{Distribution, LogNormal, Pareto, Weibull};
use ddsketch::{AnyDDSketch, SketchConfig, SketchError};

use crate::window::TimeSeriesStore;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of worker threads (containers in Figure 1).
    pub workers: usize,
    /// Requests handled per worker over the whole run.
    pub requests_per_worker: usize,
    /// Simulated run length in seconds.
    pub duration_secs: u64,
    /// Aggregation window width in seconds.
    pub window_secs: u64,
    /// Sketch configuration used by every worker and the aggregator.
    pub sketch: SketchConfig,
    /// Master seed; every worker derives its own deterministic stream.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            requests_per_worker: 10_000,
            duration_secs: 60,
            window_secs: 10,
            sketch: SketchConfig::dense_collapsing(0.01, 2048),
            seed: 0xDD5,
        }
    }
}

/// The monitored endpoints and their latency models (seconds).
fn endpoints() -> Vec<(&'static str, Box<dyn Distribution>)> {
    vec![
        // Cheap cached page: tight log-normal around 2 ms.
        (
            "web.home",
            Box::new(LogNormal::with_median(0.002, 0.5)) as Box<dyn Distribution>,
        ),
        // Search: Weibull body, a bit slower.
        ("web.search", Box::new(Weibull::new(0.05, 1.3))),
        // Checkout: heavy-tailed — the paper's motivating skew.
        ("web.checkout", Box::new(Pareto::new(1.2, 0.01))),
    ]
}

/// One shipped message: endpoint, window start, encoded sketch.
#[derive(Debug)]
pub struct Payload {
    /// Endpoint/metric name.
    pub metric: &'static str,
    /// Window start (seconds).
    pub window_start: u64,
    /// Wire-encoded sketch bytes (self-describing `DDS2`).
    pub bytes: Vec<u8>,
}

/// Simulation output.
#[derive(Debug)]
pub struct SimReport {
    /// The aggregated time-series store.
    pub store: TimeSeriesStore,
    /// Total requests simulated.
    pub total_requests: u64,
    /// Number of payload messages shipped.
    pub payloads: u64,
    /// Total bytes on the (simulated) wire.
    pub wire_bytes: u64,
}

/// Generate one worker's latencies deterministically:
/// `(metric, timestamp, latency)` triples.
fn worker_stream(config: &SimConfig, worker: usize) -> Vec<(&'static str, u64, f64)> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9));
    let eps = endpoints();
    let mut out = Vec::with_capacity(config.requests_per_worker);
    for i in 0..config.requests_per_worker {
        let (name, dist) = &eps[i % eps.len()];
        // Spread requests uniformly over the run.
        let ts = (i as u64).wrapping_mul(config.duration_secs)
            / config.requests_per_worker.max(1) as u64;
        let latency = dist.sample(&mut rng).max(1e-6);
        out.push((
            *name,
            ts.min(config.duration_secs.saturating_sub(1)),
            latency,
        ));
    }
    out
}

/// Run the full threaded simulation: workers sketch + encode + ship,
/// the aggregator decodes + merges.
pub fn run_simulation(config: &SimConfig) -> Result<SimReport, SketchError> {
    if config.workers == 0 || config.window_secs == 0 || config.duration_secs == 0 {
        return Err(SketchError::InvalidConfig(
            "workers, window_secs and duration_secs must be positive".into(),
        ));
    }
    // Validate the sketch configuration up front.
    config.sketch.validate()?;

    let (tx, rx) = channel::unbounded::<Payload>();
    let mut store = TimeSeriesStore::with_config(config.sketch, config.window_secs)?;
    let mut total_requests = 0u64;
    let mut payloads = 0u64;
    let mut wire_bytes = 0u64;

    std::thread::scope(|scope| -> Result<(), SketchError> {
        for worker in 0..config.workers {
            let tx = tx.clone();
            let config = config.clone();
            scope.spawn(move || {
                /// Worker-local flush threshold: large enough to amortize
                /// the sketch's per-batch bookkeeping, small enough that a
                /// cell's buffer stays cache-resident.
                const BATCH: usize = 256;

                // Local per-(metric, window) sketches, each fed through a
                // small batch buffer so the hot loop is a push and the
                // sketch ingests via its bulk `add_slice` fast path.
                struct LocalCell {
                    sketch: AnyDDSketch,
                    buffer: Vec<f64>,
                }
                let mut local: std::collections::BTreeMap<(&'static str, u64), LocalCell> =
                    std::collections::BTreeMap::new();
                for (metric, ts, latency) in worker_stream(&config, worker) {
                    let window = ts - ts % config.window_secs;
                    let cell = local.entry((metric, window)).or_insert_with(|| LocalCell {
                        sketch: config.sketch.build().expect("validated"),
                        buffer: Vec::with_capacity(BATCH),
                    });
                    cell.buffer.push(latency);
                    if cell.buffer.len() == BATCH {
                        cell.sketch
                            .add_slice(&cell.buffer)
                            .expect("finite positive latency");
                        cell.buffer.clear();
                    }
                }
                // Flush remainders and ship each window's sketch as an
                // encoded payload.
                for ((metric, window_start), mut cell) in local {
                    cell.sketch
                        .add_slice(&cell.buffer)
                        .expect("finite positive latency");
                    let bytes = cell.sketch.encode();
                    tx.send(Payload {
                        metric,
                        window_start,
                        bytes,
                    })
                    .expect("aggregator alive");
                }
            });
        }
        drop(tx);

        // Aggregator loop: self-describing decode — the payload bytes
        // alone select the sketch variant — then a bucket-exact merge.
        for payload in rx.iter() {
            let sketch = AnyDDSketch::decode(&payload.bytes)?;
            total_requests += sketch.count();
            payloads += 1;
            wire_bytes += payload.bytes.len() as u64;
            store.absorb(payload.metric, payload.window_start, &sketch)?;
        }
        Ok(())
    })?;

    Ok(SimReport {
        store,
        total_requests,
        payloads,
        wire_bytes,
    })
}

/// Sequential reference: ingest every raw latency directly into one store.
/// Used by tests and the Figure 2 binary to demonstrate that distributed
/// aggregation loses nothing.
pub fn run_sequential(config: &SimConfig) -> Result<TimeSeriesStore, SketchError> {
    let mut store = TimeSeriesStore::with_config(config.sketch, config.window_secs)?;
    for worker in 0..config.workers {
        for (metric, ts, latency) in worker_stream(config, worker) {
            store.record(metric, ts, latency)?;
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimConfig {
        SimConfig {
            workers: 3,
            requests_per_worker: 3000,
            duration_secs: 30,
            window_secs: 10,
            ..SimConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let mut c = small_config();
        c.workers = 0;
        assert!(run_simulation(&c).is_err());
        let mut c = small_config();
        c.sketch.alpha = 0.0;
        assert!(run_simulation(&c).is_err());
    }

    #[test]
    fn distributed_equals_sequential_under_every_sketch_config() {
        // The paper's central claim in action, for every runtime
        // configuration: the distributed pipeline (sketch → encode → ship
        // → decode → merge) must answer quantile queries identically to a
        // single sequential ingest.
        for sketch in SketchConfig::all(0.01, 2048) {
            let config = SimConfig {
                sketch,
                ..small_config()
            };
            let report = run_simulation(&config).unwrap();
            let sequential = run_sequential(&config).unwrap();

            assert_eq!(
                report.total_requests,
                (config.workers * config.requests_per_worker) as u64
            );
            assert_eq!(report.store.num_cells(), sequential.num_cells());
            for (metric, window_start, direct) in sequential.cells() {
                for q in [0.5, 0.75, 0.9, 0.99] {
                    let agg = report
                        .store
                        .quantile(metric, window_start, q)
                        .expect("cell exists");
                    assert_eq!(
                        agg,
                        direct.quantile(q).unwrap(),
                        "{}: metric {metric} window {window_start} q {q}",
                        sketch.name(),
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = small_config();
        let a = run_simulation(&config).unwrap();
        let b = run_simulation(&config).unwrap();
        assert_eq!(a.total_requests, b.total_requests);
        for (metric, window_start, sketch) in a.store.cells() {
            assert_eq!(
                sketch.quantile(0.9).ok(),
                b.store.quantile(metric, window_start, 0.9),
            );
        }
    }

    #[test]
    fn payload_sizes_are_modest() {
        // A window sketch over thousands of values should encode to a few
        // kB at most — the point of sketching instead of shipping raw data.
        let config = small_config();
        let report = run_simulation(&config).unwrap();
        let avg = report.wire_bytes as f64 / report.payloads as f64;
        assert!(avg < 16_384.0, "average payload {avg} bytes is too large");
        // And far smaller than shipping raw points (8 bytes each).
        let raw = report.total_requests * 8;
        assert!(report.wire_bytes < raw, "sketching must beat raw shipping");
    }

    #[test]
    fn checkout_endpoint_is_heavy_tailed() {
        // Sanity: the simulated checkout latency (Pareto) should show the
        // paper's Figure 2 pathology — mean well above the median.
        let config = SimConfig {
            requests_per_worker: 30_000,
            ..small_config()
        };
        let report = run_simulation(&config).unwrap();
        let rolled = report.store.rollup(3).unwrap(); // single window
        let p50 = rolled.quantile("web.checkout", 0, 0.5).unwrap();
        let avg = rolled.average_series("web.checkout")[0].1;
        assert!(
            avg > p50 * 1.5,
            "heavy tail should drag the mean ({avg}) well above the median ({p50})"
        );
    }
}
