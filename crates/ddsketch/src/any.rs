//! [`AnyDDSketch`]: the type-erased sketch behind [`SketchConfig`].
//!
//! The five preset types in [`crate::presets`] are distinct concrete types,
//! which is perfect for a single process that knows its configuration at
//! compile time — and useless for an aggregator that must merge whatever
//! arrives over the wire (paper Figure 1). `AnyDDSketch` closes that gap:
//! an enum over the five presets with macro-generated match arms (no `dyn`,
//! no allocation per call) exposing the full sketch surface, plus
//! [`AnyDDSketch::config`] to recover the runtime configuration and a
//! self-describing codec ([`AnyDDSketch::decode`] in [`crate::codec`])
//! that reconstructs the right variant with no caller-side type knowledge.
//!
//! Every operation dispatches to the statically-typed preset it wraps, so
//! an `AnyDDSketch` is bit-identical (bins, count, sum, min, max) to the
//! matching preset fed the same stream — property-tested in the workspace
//! integration suite.

use crate::config::SketchConfig;
use crate::mapping::IndexMapping;
use crate::presets::{
    self, BoundedDDSketch, FastDDSketch, PaperExactDDSketch, SparseDDSketch, UnboundedDDSketch,
};
use crate::store::Store;
use sketch_core::{MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// A runtime-configured DDSketch: one of the five preset types behind a
/// single enum, selected by [`SketchConfig`].
#[derive(Debug, Clone)]
pub enum AnyDDSketch {
    /// [`presets::unbounded`]: exact log mapping, unbounded dense stores.
    Unbounded(UnboundedDDSketch),
    /// [`presets::logarithmic_collapsing`]: the paper's Table 2 sketch.
    Bounded(BoundedDDSketch),
    /// [`presets::fast`]: cubic mapping, collapsing dense stores.
    Fast(FastDDSketch),
    /// [`presets::sparse`]: exact log mapping, B-tree stores.
    Sparse(SparseDDSketch),
    /// [`presets::paper_exact`]: Algorithm-3 collapsing sparse stores.
    PaperExact(PaperExactDDSketch),
}

/// Recover the runtime configuration of a borrowed preset — the body of
/// [`AnyDDSketch::config`], callable while the enum itself is already
/// borrowed through one of its variants (as the merge error paths need).
pub(crate) fn config_of<M, SP, SN>(sketch: &crate::DDSketch<M, SP, SN>) -> SketchConfig
where
    M: IndexMapping,
    SP: Store,
    SN: Store<Count = SP::Count>,
{
    SketchConfig {
        alpha: sketch.relative_accuracy(),
        mapping: sketch.mapping().kind(),
        store: sketch.positive_store().store_kind(),
        max_bins: sketch.positive_store().bin_limit().unwrap_or(0),
    }
}

/// Dispatch `$body` over whichever preset `$self` wraps, binding it to
/// `$s`. One macro, five arms, zero virtual calls.
macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnyDDSketch::Unbounded($s) => $body,
            AnyDDSketch::Bounded($s) => $body,
            AnyDDSketch::Fast($s) => $body,
            AnyDDSketch::Sparse($s) => $body,
            AnyDDSketch::PaperExact($s) => $body,
        }
    };
}
pub(crate) use dispatch;

impl AnyDDSketch {
    /// Build an empty sketch for `config` (validating it first).
    pub fn new(config: SketchConfig) -> Result<Self, SketchError> {
        config.validate()?;
        use crate::mapping::MappingKind;
        use crate::store::StoreKind;
        Ok(match (config.mapping, config.store) {
            (MappingKind::Logarithmic, StoreKind::Unbounded) => {
                AnyDDSketch::Unbounded(presets::unbounded(config.alpha)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingDense) => AnyDDSketch::Bounded(
                presets::logarithmic_collapsing(config.alpha, config.max_bins)?,
            ),
            (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => {
                AnyDDSketch::Fast(presets::fast(config.alpha, config.max_bins)?)
            }
            (MappingKind::Logarithmic, StoreKind::Sparse) => {
                AnyDDSketch::Sparse(presets::sparse(config.alpha)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => {
                AnyDDSketch::PaperExact(presets::paper_exact(config.alpha, config.max_bins)?)
            }
            _ => unreachable!("validate() rejects unsupported combinations"),
        })
    }

    /// Recover the runtime configuration this sketch was built with.
    ///
    /// Round-trips exactly: `AnyDDSketch::new(c)?.config() == c` for every
    /// valid `c`.
    pub fn config(&self) -> SketchConfig {
        dispatch!(self, s => config_of(s))
    }

    /// The relative accuracy `α` guaranteed for non-collapsed buckets.
    pub fn relative_accuracy(&self) -> f64 {
        dispatch!(self, s => s.relative_accuracy())
    }

    /// Insert one occurrence of `value`.
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        dispatch!(self, s => s.add(value))
    }

    /// Insert `count` occurrences of `value` in O(1).
    pub fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        dispatch!(self, s => s.add_n(value, count))
    }

    /// Bulk-insert a batch through the preset's fused fast path. Atomic
    /// like [`crate::DDSketch::add_slice`]: an unsupported value fails the
    /// whole batch without ingesting anything.
    pub fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        dispatch!(self, s => s.add_slice(values))
    }

    /// Remove one previously-inserted occurrence of `value`; see
    /// [`crate::DDSketch::delete`].
    pub fn delete(&mut self, value: f64) -> bool {
        dispatch!(self, s => s.delete(value))
    }

    /// Insert `count` occurrences of `value` through the count-generic
    /// ingestion path ([`crate::DDSketch::add_with_count`]); identical to
    /// [`Self::add_n`] for this integer-counted plane.
    pub fn add_with_count(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        dispatch!(self, s => s.add_with_count(value, count))
    }

    /// Subtract another sketch's contents bucket-by-bucket, flooring at
    /// zero; see [`crate::DDSketch::sub_sketch`]. Both sketches must wrap
    /// the same variant with mergeable mappings.
    pub fn sub_sketch(&mut self, other: &Self) -> Result<(), SketchError> {
        match (self, other) {
            (AnyDDSketch::Unbounded(a), AnyDDSketch::Unbounded(b)) => a.sub_sketch(b),
            (AnyDDSketch::Bounded(a), AnyDDSketch::Bounded(b)) => a.sub_sketch(b),
            (AnyDDSketch::Fast(a), AnyDDSketch::Fast(b)) => a.sub_sketch(b),
            (AnyDDSketch::Sparse(a), AnyDDSketch::Sparse(b)) => a.sub_sketch(b),
            (AnyDDSketch::PaperExact(a), AnyDDSketch::PaperExact(b)) => a.sub_sketch(b),
            (a, b) => Err(SketchError::IncompatibleMerge(format!(
                "store/mapping mismatch: {:?} vs {:?}",
                a.config(),
                b.config()
            ))),
        }
    }

    /// Scale every stored count by `factor` (integer counts round to
    /// nearest); see [`crate::DDSketch::scale_counts`].
    pub fn scale_counts(&mut self, factor: f64) -> Result<(), SketchError> {
        dispatch!(self, s => s.scale_counts(factor))
    }

    /// Total stored weight as `f64`; see
    /// [`crate::DDSketch::weighted_count`].
    pub fn weighted_count(&self) -> f64 {
        dispatch!(self, s => s.weighted_count())
    }

    /// Estimate the q-quantile (Algorithm 2).
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        dispatch!(self, s => s.quantile(q))
    }

    /// Estimate several quantiles in one sorted-rank store walk; see
    /// [`crate::DDSketch::quantiles`].
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        dispatch!(self, s => s.quantiles(qs))
    }

    /// Hard bounds on the q-quantile; see
    /// [`crate::DDSketch::quantile_bounds`].
    pub fn quantile_bounds(&self, q: f64) -> Result<(f64, f64), SketchError> {
        dispatch!(self, s => s.quantile_bounds(q))
    }

    /// Merge another runtime-configured sketch into this one.
    ///
    /// Succeeds exactly when both sketches wrap the same variant with
    /// mergeable mappings (same family, same `α`); the merge is then
    /// bucket-exact (Algorithm 4). Cross-variant merges fail with
    /// [`SketchError::IncompatibleMerge`] naming both configurations —
    /// sketches built from different store families do not share collapse
    /// semantics, so merging them would silently void Proposition 4.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        match (self, other) {
            (AnyDDSketch::Unbounded(a), AnyDDSketch::Unbounded(b)) => a.merge_from(b),
            (AnyDDSketch::Bounded(a), AnyDDSketch::Bounded(b)) => a.merge_from(b),
            (AnyDDSketch::Fast(a), AnyDDSketch::Fast(b)) => a.merge_from(b),
            (AnyDDSketch::Sparse(a), AnyDDSketch::Sparse(b)) => a.merge_from(b),
            (AnyDDSketch::PaperExact(a), AnyDDSketch::PaperExact(b)) => a.merge_from(b),
            (a, b) => Err(SketchError::IncompatibleMerge(format!(
                "store/mapping mismatch: {:?} vs {:?}",
                a.config(),
                b.config()
            ))),
        }
    }

    /// Merge any number of same-variant sketches into this one in a
    /// single k-way pass; see [`crate::DDSketch::merge_many`].
    ///
    /// Like [`Self::merge_from`], every sketch must wrap the same variant
    /// with a mergeable mapping; the first mismatch fails the whole call
    /// with `IncompatibleMerge` before anything is merged.
    pub fn merge_many(&mut self, others: &[&Self]) -> Result<(), SketchError> {
        macro_rules! merge_arm {
            ($target:ident, $variant:ident) => {{
                let mut typed = Vec::with_capacity(others.len());
                for other in others {
                    match other {
                        AnyDDSketch::$variant(sketch) => typed.push(sketch),
                        mismatched => {
                            return Err(SketchError::IncompatibleMerge(format!(
                                "store/mapping mismatch: {:?} vs {:?}",
                                config_of($target),
                                mismatched.config()
                            )))
                        }
                    }
                }
                $target.merge_many(&typed)
            }};
        }
        match self {
            AnyDDSketch::Unbounded(s) => merge_arm!(s, Unbounded),
            AnyDDSketch::Bounded(s) => merge_arm!(s, Bounded),
            AnyDDSketch::Fast(s) => merge_arm!(s, Fast),
            AnyDDSketch::Sparse(s) => merge_arm!(s, Sparse),
            AnyDDSketch::PaperExact(s) => merge_arm!(s, PaperExact),
        }
    }

    /// Estimate quantiles of the merge of `sketches` without materializing
    /// the merged sketch; see [`crate::DDSketch::merged_quantiles`].
    ///
    /// Every sketch must wrap the same variant with a mergeable mapping.
    /// With no sketches (or no data), non-empty `qs` fail with `Empty`
    /// while an empty `qs` succeeds with an empty vec.
    pub fn merged_quantiles(sketches: &[&Self], qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        let Some((first, rest)) = sketches.split_first() else {
            for &q in qs {
                if !(0.0..=1.0).contains(&q) {
                    return Err(SketchError::InvalidQuantile(q));
                }
            }
            return if qs.is_empty() {
                Ok(Vec::new())
            } else {
                Err(SketchError::Empty)
            };
        };
        macro_rules! quantiles_arm {
            ($head:ident, $variant:ident) => {{
                let mut typed = Vec::with_capacity(sketches.len());
                typed.push($head);
                for other in rest {
                    match other {
                        AnyDDSketch::$variant(sketch) => typed.push(sketch),
                        mismatched => {
                            return Err(SketchError::IncompatibleMerge(format!(
                                "store/mapping mismatch: {:?} vs {:?}",
                                config_of($head),
                                mismatched.config()
                            )))
                        }
                    }
                }
                crate::DDSketch::merged_quantiles(&typed, qs)
            }};
        }
        match first {
            AnyDDSketch::Unbounded(s) => quantiles_arm!(s, Unbounded),
            AnyDDSketch::Bounded(s) => quantiles_arm!(s, Bounded),
            AnyDDSketch::Fast(s) => quantiles_arm!(s, Fast),
            AnyDDSketch::Sparse(s) => quantiles_arm!(s, Sparse),
            AnyDDSketch::PaperExact(s) => quantiles_arm!(s, PaperExact),
        }
    }

    /// [`Self::merged_quantiles`] over an iterator of borrowed sketches,
    /// writing into caller-owned buffers; see
    /// [`crate::DDSketch::merged_quantiles_into`]. With `scratch` and
    /// `out` reused across calls, dense-store walks perform zero heap
    /// allocations at steady state — the sliding-window read path.
    ///
    /// Every sketch must wrap the same variant with a mergeable mapping;
    /// the first mismatch fails the whole call before any walk state is
    /// built.
    pub fn merged_quantiles_into<'a>(
        sketches: impl Iterator<Item = &'a Self> + Clone,
        qs: &[f64],
        scratch: &mut crate::MergedQuantileScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        let Some(first) = sketches.clone().next() else {
            for &q in qs {
                if !(0.0..=1.0).contains(&q) {
                    return Err(SketchError::InvalidQuantile(q));
                }
            }
            out.clear();
            return if qs.is_empty() {
                Ok(())
            } else {
                Err(SketchError::Empty)
            };
        };
        macro_rules! into_arm {
            ($head:ident, $variant:ident) => {{
                for other in sketches.clone() {
                    if !matches!(other, AnyDDSketch::$variant(_)) {
                        return Err(SketchError::IncompatibleMerge(format!(
                            "store/mapping mismatch: {:?} vs {:?}",
                            config_of($head),
                            other.config()
                        )));
                    }
                }
                crate::DDSketch::merged_quantiles_into(
                    sketches.map(|s| match s {
                        AnyDDSketch::$variant(sketch) => sketch,
                        _ => unreachable!("variants checked above"),
                    }),
                    qs,
                    scratch,
                    out,
                )
            }};
        }
        match first {
            AnyDDSketch::Unbounded(s) => into_arm!(s, Unbounded),
            AnyDDSketch::Bounded(s) => into_arm!(s, Bounded),
            AnyDDSketch::Fast(s) => into_arm!(s, Fast),
            AnyDDSketch::Sparse(s) => into_arm!(s, Sparse),
            AnyDDSketch::PaperExact(s) => into_arm!(s, PaperExact),
        }
    }

    /// Weighted merged quantiles over `(sketch, weight)` pairs; see
    /// [`crate::DDSketch::weighted_merged_quantiles_into`]. Each sketch's
    /// bins count `weight` times in the rank walk — the query-time decay
    /// behind "recent-biased" sliding-window reads. Every sketch must
    /// wrap the same variant with a mergeable mapping.
    pub fn weighted_merged_quantiles_into<'a>(
        sketches: impl Iterator<Item = (&'a Self, f64)> + Clone,
        qs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), SketchError> {
        let Some((first, _)) = sketches.clone().next() else {
            for &q in qs {
                if !(0.0..=1.0).contains(&q) {
                    return Err(SketchError::InvalidQuantile(q));
                }
            }
            out.clear();
            return if qs.is_empty() {
                Ok(())
            } else {
                Err(SketchError::Empty)
            };
        };
        macro_rules! weighted_arm {
            ($head:ident, $variant:ident) => {{
                for (other, _) in sketches.clone() {
                    if !matches!(other, AnyDDSketch::$variant(_)) {
                        return Err(SketchError::IncompatibleMerge(format!(
                            "store/mapping mismatch: {:?} vs {:?}",
                            config_of($head),
                            other.config()
                        )));
                    }
                }
                crate::DDSketch::weighted_merged_quantiles_into(
                    sketches.map(|(s, w)| match s {
                        AnyDDSketch::$variant(sketch) => (sketch, w),
                        _ => unreachable!("variants checked above"),
                    }),
                    qs,
                    out,
                )
            }};
        }
        match first {
            AnyDDSketch::Unbounded(s) => weighted_arm!(s, Unbounded),
            AnyDDSketch::Bounded(s) => weighted_arm!(s, Bounded),
            AnyDDSketch::Fast(s) => weighted_arm!(s, Fast),
            AnyDDSketch::Sparse(s) => weighted_arm!(s, Sparse),
            AnyDDSketch::PaperExact(s) => weighted_arm!(s, PaperExact),
        }
    }

    /// Convenience slice form of [`Self::weighted_merged_quantiles_into`].
    pub fn weighted_merged_quantiles(
        sketches: &[(&Self, f64)],
        qs: &[f64],
    ) -> Result<Vec<f64>, SketchError> {
        let mut out = Vec::with_capacity(qs.len());
        Self::weighted_merged_quantiles_into(sketches.iter().copied(), qs, &mut out)?;
        Ok(out)
    }

    /// Total number of stored occurrences.
    pub fn count(&self) -> u64 {
        dispatch!(self, s => s.count())
    }

    /// Whether the sketch holds no data.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of inserted values.
    pub fn sum(&self) -> f64 {
        dispatch!(self, s => s.sum())
    }

    /// Exact mean, or `None` if empty.
    pub fn average(&self) -> Option<f64> {
        dispatch!(self, s => s.average())
    }

    /// Exact minimum inserted value.
    pub fn min(&self) -> Option<f64> {
        dispatch!(self, s => s.min())
    }

    /// Exact maximum inserted value.
    pub fn max(&self) -> Option<f64> {
        dispatch!(self, s => s.max())
    }

    /// Count of values in the exact zero bucket.
    pub fn zero_count(&self) -> u64 {
        dispatch!(self, s => s.zero_count())
    }

    /// Number of non-empty buckets plus the zero bucket.
    pub fn num_bins(&self) -> usize {
        dispatch!(self, s => s.num_bins())
    }

    /// Whether any store has collapsed buckets (Proposition 4).
    pub fn has_collapsed(&self) -> bool {
        dispatch!(self, s => s.has_collapsed())
    }

    /// Reset to empty, retaining allocations and configuration.
    pub fn clear(&mut self) {
        dispatch!(self, s => s.clear())
    }

    /// Internal: bulk-absorb raw state (summary statistics plus positive /
    /// negative bins) with union-merge semantics — one [`Store::add_bins`]
    /// pass per store, so bounded families apply their collapse clamp
    /// exactly as a merge would. This is how the lock-free ingest plane's
    /// snapshots materialize ([`crate::atomic`]): raw atomic counters in,
    /// a regular sketch out, without an intermediate sketch.
    pub(crate) fn absorb_raw(
        &mut self,
        zero_count: u64,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, u64)],
        neg_bins: &[(i32, u64)],
    ) {
        dispatch!(self, s => s.absorb_bins(zero_count, min, max, sum, pos_bins, neg_bins))
    }

    /// Free the batched-ingestion scratch buffers; see
    /// [`crate::DDSketch::release_scratch`].
    pub fn release_scratch(&mut self) {
        dispatch!(self, s => s.release_scratch())
    }

    /// Structural memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        dispatch!(self, s => s.memory_bytes())
    }

    /// Positive-store bins in ascending index order (read-only; used by
    /// tests asserting bit-identity against the statically-typed presets).
    pub fn positive_bins(&self) -> Vec<(i32, u64)> {
        dispatch!(self, s => s.positive_store().bins_ascending())
    }

    /// Negative-store bins in ascending index order (of `|x|`).
    pub fn negative_bins(&self) -> Vec<(i32, u64)> {
        dispatch!(self, s => s.negative_store().bins_ascending())
    }
}

impl Extend<f64> for AnyDDSketch {
    /// Bulk insertion; unsupported values are silently skipped.
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            let _ = self.add(v);
        }
    }
}

impl QuantileSketch for AnyDDSketch {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        AnyDDSketch::add(self, value)
    }

    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        AnyDDSketch::add_n(self, value, count)
    }

    fn add_slice(&mut self, values: &[f64]) -> Result<(), SketchError> {
        AnyDDSketch::add_slice(self, values)
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        AnyDDSketch::quantile(self, q)
    }

    fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        AnyDDSketch::quantiles(self, qs)
    }

    fn count(&self) -> u64 {
        AnyDDSketch::count(self)
    }

    fn name(&self) -> &'static str {
        self.config().name()
    }
}

impl MergeableSketch for AnyDDSketch {
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        AnyDDSketch::merge_from(self, other)
    }
}

impl MemoryFootprint for AnyDDSketch {
    fn memory_bytes(&self) -> usize {
        AnyDDSketch::memory_bytes(self)
    }
}

macro_rules! impl_from_preset {
    ($($preset:ty => $variant:ident),* $(,)?) => {
        $(impl From<$preset> for AnyDDSketch {
            fn from(sketch: $preset) -> Self {
                AnyDDSketch::$variant(sketch)
            }
        })*
    };
}

impl_from_preset!(
    UnboundedDDSketch => Unbounded,
    BoundedDDSketch => Bounded,
    FastDDSketch => Fast,
    SparseDDSketch => Sparse,
    PaperExactDDSketch => PaperExact,
);

/// The weighted (`f64`-counted) twin of [`AnyDDSketch`]: the same five
/// runtime-selected configurations with stores that count in `f64`, so
/// occurrences carry fractional weights, decay in place
/// ([`Self::scale_counts`]), and subtract with floor-at-zero semantics
/// ([`Self::sub_sketch`]). This is the type the `DDS3` wire dialect
/// decodes into ([`crate::codec`]) and the sliding-window plane's
/// ingest-time-decay slots are built on.
#[derive(Debug, Clone)]
pub enum AnyWeightedDDSketch {
    /// Weighted [`presets::unbounded`].
    Unbounded(presets::WeightedUnboundedDDSketch),
    /// Weighted [`presets::logarithmic_collapsing`].
    Bounded(presets::WeightedBoundedDDSketch),
    /// Weighted [`presets::fast`].
    Fast(presets::WeightedFastDDSketch),
    /// Weighted [`presets::sparse`].
    Sparse(presets::WeightedSparseDDSketch),
    /// Weighted [`presets::paper_exact`].
    PaperExact(presets::WeightedPaperExactDDSketch),
}

/// [`dispatch!`] for the weighted enum.
macro_rules! wdispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnyWeightedDDSketch::Unbounded($s) => $body,
            AnyWeightedDDSketch::Bounded($s) => $body,
            AnyWeightedDDSketch::Fast($s) => $body,
            AnyWeightedDDSketch::Sparse($s) => $body,
            AnyWeightedDDSketch::PaperExact($s) => $body,
        }
    };
}

impl AnyWeightedDDSketch {
    /// Build an empty weighted sketch for `config` (validating it first).
    pub fn new(config: SketchConfig) -> Result<Self, SketchError> {
        config.validate()?;
        use crate::mapping::MappingKind;
        use crate::store::StoreKind;
        Ok(match (config.mapping, config.store) {
            (MappingKind::Logarithmic, StoreKind::Unbounded) => {
                AnyWeightedDDSketch::Unbounded(presets::weighted_unbounded(config.alpha)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingDense) => AnyWeightedDDSketch::Bounded(
                presets::weighted_logarithmic_collapsing(config.alpha, config.max_bins)?,
            ),
            (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => {
                AnyWeightedDDSketch::Fast(presets::weighted_fast(config.alpha, config.max_bins)?)
            }
            (MappingKind::Logarithmic, StoreKind::Sparse) => {
                AnyWeightedDDSketch::Sparse(presets::weighted_sparse(config.alpha)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => {
                AnyWeightedDDSketch::PaperExact(presets::weighted_paper_exact(
                    config.alpha,
                    config.max_bins,
                )?)
            }
            _ => unreachable!("validate() rejects unsupported combinations"),
        })
    }

    /// Recover the runtime configuration this sketch was built with.
    pub fn config(&self) -> SketchConfig {
        wdispatch!(self, s => config_of(s))
    }

    /// The relative accuracy `α` guaranteed for non-collapsed buckets.
    pub fn relative_accuracy(&self) -> f64 {
        wdispatch!(self, s => s.relative_accuracy())
    }

    /// Insert one occurrence of `value` at weight 1.
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        wdispatch!(self, s => s.add_with_count(value, 1.0))
    }

    /// Insert `value` with a (possibly fractional) weight; see
    /// [`crate::DDSketch::add_with_count`].
    pub fn add_with_count(&mut self, value: f64, count: f64) -> Result<(), SketchError> {
        wdispatch!(self, s => s.add_with_count(value, count))
    }

    /// Bulk-insert `(value, weight)` pairs atomically; see
    /// [`crate::DDSketch::add_weighted_slice`].
    pub fn add_weighted_slice(&mut self, pairs: &[(f64, f64)]) -> Result<(), SketchError> {
        wdispatch!(self, s => s.add_weighted_slice(pairs))
    }

    /// Estimate the q-quantile of the weighted multiset; see
    /// [`crate::DDSketch::weighted_quantile`].
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        wdispatch!(self, s => s.weighted_quantile(q))
    }

    /// Estimate several quantiles; output order matches input order.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        wdispatch!(self, s => s.weighted_quantiles(qs))
    }

    /// [`AnyWeightedDDSketch::quantiles`] into a caller-owned buffer —
    /// the allocation-free query form (on the dense store families the
    /// walk touches no heap). On error `out`'s contents are unspecified.
    pub fn quantiles_into(&self, qs: &[f64], out: &mut Vec<f64>) -> Result<(), SketchError> {
        out.clear();
        out.reserve(qs.len());
        for &q in qs {
            out.push(wdispatch!(self, s => s.weighted_quantile(q))?);
        }
        Ok(())
    }

    /// Merge another weighted sketch into this one (same-variant only).
    pub fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        match (self, other) {
            (AnyWeightedDDSketch::Unbounded(a), AnyWeightedDDSketch::Unbounded(b)) => {
                a.merge_from(b)
            }
            (AnyWeightedDDSketch::Bounded(a), AnyWeightedDDSketch::Bounded(b)) => a.merge_from(b),
            (AnyWeightedDDSketch::Fast(a), AnyWeightedDDSketch::Fast(b)) => a.merge_from(b),
            (AnyWeightedDDSketch::Sparse(a), AnyWeightedDDSketch::Sparse(b)) => a.merge_from(b),
            (AnyWeightedDDSketch::PaperExact(a), AnyWeightedDDSketch::PaperExact(b)) => {
                a.merge_from(b)
            }
            (a, b) => Err(SketchError::IncompatibleMerge(format!(
                "store/mapping mismatch: {:?} vs {:?}",
                a.config(),
                b.config()
            ))),
        }
    }

    /// Subtract another weighted sketch bucket-by-bucket, flooring at
    /// zero; see [`crate::DDSketch::sub_sketch`].
    pub fn sub_sketch(&mut self, other: &Self) -> Result<(), SketchError> {
        match (self, other) {
            (AnyWeightedDDSketch::Unbounded(a), AnyWeightedDDSketch::Unbounded(b)) => {
                a.sub_sketch(b)
            }
            (AnyWeightedDDSketch::Bounded(a), AnyWeightedDDSketch::Bounded(b)) => a.sub_sketch(b),
            (AnyWeightedDDSketch::Fast(a), AnyWeightedDDSketch::Fast(b)) => a.sub_sketch(b),
            (AnyWeightedDDSketch::Sparse(a), AnyWeightedDDSketch::Sparse(b)) => a.sub_sketch(b),
            (AnyWeightedDDSketch::PaperExact(a), AnyWeightedDDSketch::PaperExact(b)) => {
                a.sub_sketch(b)
            }
            (a, b) => Err(SketchError::IncompatibleMerge(format!(
                "store/mapping mismatch: {:?} vs {:?}",
                a.config(),
                b.config()
            ))),
        }
    }

    /// Scale every stored weight by `factor` — ingest-time exponential
    /// decay; see [`crate::DDSketch::scale_counts`].
    pub fn scale_counts(&mut self, factor: f64) -> Result<(), SketchError> {
        wdispatch!(self, s => s.scale_counts(factor))
    }

    /// Total stored weight.
    pub fn weighted_count(&self) -> f64 {
        wdispatch!(self, s => s.weighted_count())
    }

    /// Weight in the exact zero bucket.
    pub fn zero_weight(&self) -> f64 {
        wdispatch!(self, s => s.zero_weight())
    }

    /// Whether the sketch holds no weight.
    pub fn is_empty(&self) -> bool {
        wdispatch!(self, s => s.is_empty())
    }

    /// Exact weighted sum of inserted values.
    pub fn sum(&self) -> f64 {
        wdispatch!(self, s => s.sum())
    }

    /// Exact weighted mean, or `None` if empty.
    pub fn average(&self) -> Option<f64> {
        wdispatch!(self, s => s.average())
    }

    /// The tracked minimum; see [`crate::DDSketch::min`].
    pub fn min(&self) -> Option<f64> {
        wdispatch!(self, s => s.min())
    }

    /// The tracked maximum; see [`crate::DDSketch::max`].
    pub fn max(&self) -> Option<f64> {
        wdispatch!(self, s => s.max())
    }

    /// Number of non-empty buckets plus the zero bucket.
    pub fn num_bins(&self) -> usize {
        wdispatch!(self, s => s.num_bins())
    }

    /// Whether any store has collapsed buckets (Proposition 4).
    pub fn has_collapsed(&self) -> bool {
        wdispatch!(self, s => s.has_collapsed())
    }

    /// Reset to empty, retaining allocations and configuration.
    pub fn clear(&mut self) {
        wdispatch!(self, s => s.clear())
    }

    /// Structural memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        wdispatch!(self, s => s.memory_bytes())
    }

    /// Positive-store bins in ascending index order.
    pub fn positive_bins(&self) -> Vec<(i32, f64)> {
        wdispatch!(self, s => s.positive_store().bins_ascending())
    }

    /// Negative-store bins in ascending index order (of `|x|`).
    pub fn negative_bins(&self) -> Vec<(i32, f64)> {
        wdispatch!(self, s => s.negative_store().bins_ascending())
    }

    /// Internal: bulk-absorb raw weighted state with union-merge
    /// semantics — the weighted mirror of [`AnyDDSketch::absorb_raw`],
    /// used by the codec's weighted decode/feed paths.
    pub(crate) fn absorb_raw(
        &mut self,
        zero_count: f64,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, f64)],
        neg_bins: &[(i32, f64)],
    ) {
        wdispatch!(self, s => s.absorb_bins(zero_count, min, max, sum, pos_bins, neg_bins))
    }

    /// Internal: bulk-load decoded weighted state (exact overwrite, not a
    /// fold) — the weighted mirror of the codec's `rebuild` path.
    pub(crate) fn load_raw(
        &mut self,
        zero_count: f64,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, f64)],
        neg_bins: &[(i32, f64)],
    ) {
        wdispatch!(self, s => s.load(zero_count, min, max, sum, pos_bins, neg_bins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DDSketchBuilder;

    // The exhaustive config-matrix properties (bit-identity against every
    // preset, batched-vs-scalar equivalence, cross-variant merge
    // rejection, same-config exact merges) live in the workspace
    // integration suite (`tests/runtime_config.rs`), which is their
    // single home; this module only smoke-tests the dispatch surface and
    // conversions.

    #[test]
    fn full_surface_smoke() {
        let mut s = DDSketchBuilder::new(0.01)
            .dense_collapsing(512)
            .build()
            .unwrap();
        s.add_n(2.0, 3).unwrap();
        s.add_slice(&[1.0, 4.0, -2.0, 0.0]).unwrap();
        s.extend([8.0, f64::NAN, 16.0]);
        assert_eq!(s.count(), 9);
        assert_eq!(s.zero_count(), 1);
        assert_eq!(s.min(), Some(-2.0));
        assert_eq!(s.max(), Some(16.0));
        assert!(s.average().unwrap() > 0.0);
        assert!(s.num_bins() >= 5);
        assert!(!s.has_collapsed());
        assert!(s.memory_bytes() > 0);
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert!(lo <= hi);
        let qs = s.quantiles(&[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(qs[0], s.quantile(0.0).unwrap());
        assert!(s.delete(2.0));
        assert_eq!(s.count(), 8);
        assert_eq!(QuantileSketch::name(&s), "DDSketch");
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.config().max_bins, 512);
        // From<preset> conversions preserve the configuration.
        let any: AnyDDSketch = presets::sparse(0.03).unwrap().into();
        assert_eq!(any.config(), SketchConfig::sparse(0.03));
    }

    #[test]
    fn weighted_any_surface_smoke() {
        for config in [
            SketchConfig::unbounded(0.01),
            SketchConfig::dense_collapsing(0.01, 256),
            SketchConfig::fast(0.01, 256),
            SketchConfig::sparse(0.01),
            SketchConfig::paper_exact(0.01, 256),
        ] {
            let mut w = AnyWeightedDDSketch::new(config).unwrap();
            assert_eq!(w.config(), config, "config must round-trip");
            let mut u = AnyDDSketch::new(config).unwrap();
            for i in 1..=500u64 {
                let v = match i % 5 {
                    0 => 0.0,
                    1 | 2 => (i as f64) * 0.7,
                    _ => -(i as f64) * 0.3,
                };
                let k = i % 3 + 1;
                u.add_n(v, k).unwrap();
                w.add_with_count(v, k as f64).unwrap();
            }
            // Integral weights mirror the integer plane exactly.
            assert_eq!(w.weighted_count(), u.count() as f64, "{config:?}");
            assert_eq!(w.sum(), u.sum(), "{config:?}");
            assert_eq!(w.min(), u.min(), "{config:?}");
            assert_eq!(w.max(), u.max(), "{config:?}");
            assert_eq!(w.zero_weight(), u.zero_count() as f64, "{config:?}");
            for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                assert_eq!(w.quantile(q).unwrap(), u.quantile(q).unwrap(), "{config:?}");
            }
            // Merge and subtract round-trip: (w ∪ w) − w == w.
            let snapshot = w.clone();
            w.merge_from(&snapshot).unwrap();
            assert_eq!(w.weighted_count(), 2.0 * snapshot.weighted_count());
            w.sub_sketch(&snapshot).unwrap();
            assert_eq!(w.positive_bins(), snapshot.positive_bins(), "{config:?}");
            assert_eq!(w.negative_bins(), snapshot.negative_bins(), "{config:?}");
            // Decay halves the weight exactly on the f64 plane.
            w.scale_counts(0.5).unwrap();
            assert_eq!(w.weighted_count(), snapshot.weighted_count() / 2.0);
            w.clear();
            assert!(w.is_empty());
        }
        // Cross-variant merges and subtractions are rejected.
        let mut a = AnyWeightedDDSketch::new(SketchConfig::unbounded(0.01)).unwrap();
        let b = AnyWeightedDDSketch::new(SketchConfig::sparse(0.01)).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(SketchError::IncompatibleMerge(_))
        ));
        assert!(matches!(
            a.sub_sketch(&b),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn merge_plane_smoke() {
        let build = |vals: &[f64]| {
            let mut s = SketchConfig::dense_collapsing(0.01, 512).build().unwrap();
            s.add_slice(vals).unwrap();
            s
        };
        let a = build(&[1.0, 2.0, 3.0]);
        let b = build(&[4.0, 5.0]);
        let c = build(&[6.0]);
        let mut bulk = a.clone();
        bulk.merge_many(&[&b, &c]).unwrap();
        let mut seq = a.clone();
        seq.merge_from(&b).unwrap();
        seq.merge_from(&c).unwrap();
        assert_eq!(bulk.positive_bins(), seq.positive_bins());
        assert_eq!(bulk.count(), 6);
        // merged_quantiles ≡ quantiles of the materialized merge.
        let qs = [0.0, 0.5, 1.0];
        assert_eq!(
            AnyDDSketch::merged_quantiles(&[&a, &b, &c], &qs).unwrap(),
            bulk.quantiles(&qs).unwrap()
        );
        // Cross-variant inputs are rejected atomically with the configs
        // named.
        let sparse = SketchConfig::sparse(0.01).build().unwrap();
        let mut target = a.clone();
        assert!(matches!(
            target.merge_many(&[&b, &sparse]),
            Err(SketchError::IncompatibleMerge(_))
        ));
        assert_eq!(target.positive_bins(), a.positive_bins());
        assert!(matches!(
            AnyDDSketch::merged_quantiles(&[&a, &sparse], &[0.5]),
            Err(SketchError::IncompatibleMerge(_))
        ));
        // Empty input handling.
        assert_eq!(
            AnyDDSketch::merged_quantiles(&[], &[]).unwrap(),
            Vec::<f64>::new()
        );
        assert!(matches!(
            AnyDDSketch::merged_quantiles(&[], &[0.5]),
            Err(SketchError::Empty)
        ));
        assert!(matches!(
            AnyDDSketch::merged_quantiles(&[], &[1.5]),
            Err(SketchError::InvalidQuantile(_))
        ));
    }
}
