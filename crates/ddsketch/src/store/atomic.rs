//! Lock-free shared bucket counters: the write plane behind
//! [`crate::atomic::AtomicDDSketch`].
//!
//! # Design
//!
//! An [`AtomicDenseStore`] is a short chain of immutable-geometry counter
//! tables, each a [`DenseStore<AtomicU64>`](super::DenseStore). Tables are
//! append-only: once published they are never moved, shrunk, or freed
//! until the store is dropped, so a writer holding a reference into one
//! can never be invalidated — the property that makes the hot path a
//! single `fetch_add(Relaxed)` with **no lock and no CAS loop**:
//!
//! 1. load the newest table pointer (`Acquire`),
//! 2. bounds-check the bucket index against its span,
//! 3. `fetch_add(Relaxed)` the covered cell.
//!
//! Every new table's index span is a superset of all older spans and at
//! least doubles the allocation, so (a) a miss on the newest table means
//! no table covers the index and the writer takes the guarded slow path,
//! and (b) the chain stays logarithmic in the final span — total memory
//! is at most ~2× the newest table, exactly the amortization the
//! sequential [`DenseStore`](super::DenseStore) gets from doubling.
//!
//! A bucket's logical count is the **sum of its cell across every table**
//! (each table accumulated the adds that landed while it was newest, plus
//! whatever folds moved into it). Readers therefore sum the chain; they
//! never need the tables to be reconciled.
//!
//! # Collapse (bounded stores) and the seqlock epoch
//!
//! Bounded (`max_bins = m`) stores fold low buckets like
//! [`super::CollapsingLowestDenseStore`], but lazily: the authoritative
//! collapse happens at *read* time, when a snapshot's raw bins are
//! absorbed into a regular collapsing store (which clamps exactly like a
//! union merge would — see `crate::atomic`). The store itself folds
//! physically only when the live span overruns `m` by a growth factor,
//! and only on the already-guarded grow path: under the grow mutex it
//! `take`s every cell below the allowed minimum and `fetch_add`s the sum
//! into the lowest kept bucket. Because counts *move*, a concurrent
//! reader could transiently observe one mid-flight; the fold therefore
//! bumps a seqlock-style epoch to odd for its duration, and snapshots
//! retry while the epoch is odd or changed across their scan. Writers
//! never touch the epoch — folds cannot block the fast path.
//!
//! A writer racing a fold can land a count in a cell *after* it was
//! `take`n; the count simply stays in that (older or low) cell and is
//! clamped into the kept region at snapshot time, so nothing is ever
//! lost or double-counted. Early folds are semantically safe for the
//! same reason scalar collapse is: the fold target `live_max − m + 1`
//! only grows over time, so any bucket folded now would also be folded
//! (to an equal-or-higher target) by the eventual union collapse.
//!
//! # Memory-ordering contract
//!
//! * Cell increments and reads are `Relaxed` — counters carry no
//!   cross-thread control flow of their own.
//! * Table publication (`tables[t]`, then `num_tables`) is `Release`,
//!   matched by `Acquire` loads, so a writer or reader that observes a
//!   table count observes fully-initialized tables.
//! * The fold epoch is `Release` on store, `Acquire` on load, bracketing
//!   the moved counts.
//!
//! A snapshot that races writers observes each cell's value at some point
//! during the scan (a valid "union at some instant per bucket" read). A
//! snapshot taken after writers quiesce (thread join, or any external
//! happens-before edge) is **exact**: the join synchronizes all `Relaxed`
//! writes, and the epoch check rules out a concurrent fold.

use std::sync::atomic::Ordering::{Acquire, Release};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};

use parking_lot::Mutex;

use super::cell::{Cell, SharedCell};
use super::count::Count;
use super::dense::{round_up_chunk, CHUNK};
use super::DenseStore;

/// Chain capacity. Every link at least doubles the allocated span, so the
/// 34th table would already cover the entire `i32` index range; 40 slots
/// are unreachable in practice and cost 320 bytes.
const MAX_TABLES: usize = 40;

/// A bounded store folds physically once its live span exceeds
/// `FOLD_FACTOR × max_bins` (checked only on the guarded grow path).
const FOLD_FACTOR: i64 = 4;

type Table<C> = DenseStore<C>;

/// Reusable accumulation buffer for [`AtomicDenseStore::snapshot_bins`];
/// hold one per reader and snapshots allocate only while warming up.
#[derive(Debug, Default)]
pub struct AtomicSnapshotScratch<V: Count = u64> {
    acc: Vec<V>,
}

/// A concurrently writable dense bucket store (see module docs), generic
/// over the shared counter cell: `AtomicDenseStore` (= over [`AtomicU64`])
/// is the integer ingest plane, `AtomicDenseStore<AtomicF64>` the weighted
/// one (per-bucket CAS adds on `f64` bits).
#[derive(Debug)]
pub struct AtomicDenseStore<C: SharedCell = AtomicU64> {
    /// Published tables, oldest first. Entries `0..num_tables` are valid,
    /// heap-allocated, and never freed or moved while the store lives.
    tables: [AtomicPtr<Table<C>>; MAX_TABLES],
    num_tables: AtomicUsize,
    /// Seqlock epoch: odd while a fold is moving counts between cells.
    epoch: AtomicU64,
    /// Serializes table publication and folds. Never taken on the
    /// fast path.
    grow: Mutex<()>,
    /// `Some(m)`: fold low buckets so the live span tracks `m` (the
    /// collapsing-dense families). `None`: never fold (unbounded).
    max_bins: Option<i64>,
}

// SAFETY: all shared mutation goes through atomics; the raw table
// pointers are published with Release/Acquire, point at heap allocations
// owned by this store, and are only freed in `Drop` (exclusive access).
unsafe impl<C: SharedCell + Send> Send for AtomicDenseStore<C> {}
unsafe impl<C: SharedCell + Send> Sync for AtomicDenseStore<C> {}

impl<C: SharedCell> AtomicDenseStore<C> {
    /// An empty store; `max_bins` enables physical folding for the
    /// bounded families.
    pub fn new(max_bins: Option<usize>) -> Self {
        Self {
            tables: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            num_tables: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            grow: Mutex::new(()),
            max_bins: max_bins.map(|m| m as i64),
        }
    }

    /// Table `k`, which must be `< num_tables` (acquired by the caller).
    #[inline]
    fn table(&self, k: usize) -> &Table<C> {
        // SAFETY: entries below an Acquire-observed `num_tables` were
        // Release-published as valid boxed tables and are never freed
        // while `&self` is alive.
        unsafe { &*self.tables[k].load(Acquire) }
    }

    /// Add `count` occurrences of bucket `index`.
    ///
    /// Lock-free fast path; takes the grow mutex only when no table
    /// covers `index` yet (amortized O(log span) times per store).
    #[inline]
    pub fn add_n(&self, index: i64, count: C::Value) {
        let t = self.num_tables.load(Acquire);
        if t > 0 {
            if let Some(cell) = self.table(t - 1).cell(index) {
                SharedCell::fetch_add(cell, count);
                return;
            }
        }
        self.add_slow(index, count);
    }

    /// Grow path: publish a covering table, then retry the add (under the
    /// lock, so at most one thread builds each table).
    #[cold]
    fn add_slow(&self, index: i64, count: C::Value) {
        let _guard = self.grow.lock();
        // Re-check: another writer may have published a covering table
        // while we waited for the lock.
        let t = self.num_tables.load(Acquire);
        if t > 0 {
            if let Some(cell) = self.table(t - 1).cell(index) {
                SharedCell::fetch_add(cell, count);
                return;
            }
        }
        assert!(t < MAX_TABLES, "atomic store table chain exhausted");
        // Union span of every existing table plus the new index…
        let (mut lo, mut hi_inc, old_len) = if t > 0 {
            let newest = self.table(t - 1);
            (
                newest.span_lo().min(index),
                (newest.span_hi() - 1).max(index),
                newest.cells().len() as i64,
            )
        } else {
            (index, index, 0)
        };
        // …sized to at least double the newest table (chunk-rounded), with
        // the slack on the side that is growing.
        let needed = hi_inc - lo + 1;
        let target = round_up_chunk(needed.max(old_len * 2).max(CHUNK));
        let extra = target - needed;
        if t > 0 {
            let newest = self.table(t - 1);
            if index < newest.span_lo() {
                lo -= extra;
            } else {
                hi_inc += extra;
            }
        } else {
            // Fresh store: center the index like DenseStore does.
            lo -= extra / 2;
            hi_inc = lo + target - 1;
        }
        let table = Box::new(Table::<C>::with_span(lo, hi_inc));
        debug_assert!(table.span_hi() - table.span_lo() >= target);
        let cell = table
            .cell(index)
            .expect("with_span covers the requested span");
        SharedCell::fetch_add(cell, count);
        let ptr = Box::into_raw(table);
        self.tables[t].store(ptr, Release);
        self.num_tables.store(t + 1, Release);
        // Bounded stores: fold low buckets once the live span has drifted
        // far past the cap (still under the grow lock).
        if let Some(m) = self.max_bins {
            self.maybe_fold_locked(m);
        }
    }

    /// Physically fold buckets below `live_max − m + 1` into the lowest
    /// kept bucket when the live span exceeds `FOLD_FACTOR × m`. Caller
    /// holds the grow lock.
    fn maybe_fold_locked(&self, m: i64) {
        let t = self.num_tables.load(Acquire);
        let (mut live_lo, mut live_hi) = (i64::MAX, i64::MIN);
        for k in 0..t {
            let table = self.table(k);
            let base = table.span_lo();
            for (i, cell) in table.cells().iter().enumerate() {
                if Cell::get(cell) > C::Value::ZERO {
                    let idx = base + i as i64;
                    live_lo = live_lo.min(idx);
                    live_hi = live_hi.max(idx);
                }
            }
        }
        if live_lo > live_hi || live_hi - live_lo < FOLD_FACTOR * m {
            return;
        }
        let allowed_min = live_hi - m + 1;
        // Seqlock: counts move below; readers retry while odd.
        self.epoch.fetch_add(1, Release);
        let mut folded = C::Value::ZERO;
        for k in 0..t {
            let table = self.table(k);
            let base = table.span_lo();
            let cut = ((allowed_min - base).max(0) as usize).min(table.cells().len());
            for cell in &table.cells()[..cut] {
                folded += cell.take();
            }
        }
        if folded > C::Value::ZERO {
            let newest = self.table(t - 1);
            // The newest table covers every live index, hence allowed_min.
            let kept = newest
                .cell(allowed_min)
                .expect("newest table covers the live span");
            SharedCell::fetch_add(kept, folded);
        }
        self.epoch.fetch_add(1, Release);
    }

    /// Collect the non-empty `(index, count)` bins, ascending, appended to
    /// `out`. Retries around concurrent folds (see module docs for the
    /// exact consistency guarantee). Returns the summed count.
    pub fn snapshot_bins(
        &self,
        out: &mut Vec<(i64, C::Value)>,
        scratch: &mut AtomicSnapshotScratch<C::Value>,
    ) -> C::Value {
        loop {
            let e1 = self.epoch.load(Acquire);
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let t = self.num_tables.load(Acquire);
            if t == 0 {
                return C::Value::ZERO;
            }
            let newest = self.table(t - 1);
            let base = newest.span_lo();
            let len = newest.cells().len();
            scratch.acc.clear();
            scratch.acc.resize(len, C::Value::ZERO);
            for k in 0..t {
                let table = self.table(k);
                let off = (table.span_lo() - base) as usize;
                for (i, cell) in table.cells().iter().enumerate() {
                    let c = Cell::get(cell);
                    if c > C::Value::ZERO {
                        scratch.acc[off + i] += c;
                    }
                }
            }
            // A grow during the scan cannot invalidate it (tables are
            // append-only), but a fold can move counts mid-scan; the
            // epoch re-check rules that out.
            if self.epoch.load(Acquire) != e1 {
                continue;
            }
            let mut total = C::Value::ZERO;
            for (i, &c) in scratch.acc.iter().enumerate() {
                if c > C::Value::ZERO {
                    out.push((base + i as i64, c));
                    total += c;
                }
            }
            return total;
        }
    }

    /// Structural memory footprint in bytes (all chained tables).
    pub fn memory_bytes(&self) -> usize {
        let t = self.num_tables.load(Acquire);
        let mut bytes = std::mem::size_of::<Self>();
        for k in 0..t {
            bytes += std::mem::size_of::<Table<C>>() + std::mem::size_of_val(self.table(k).cells());
        }
        bytes
    }
}

impl<C: SharedCell> Drop for AtomicDenseStore<C> {
    fn drop(&mut self) {
        let t = *self.num_tables.get_mut();
        for slot in &mut self.tables[..t] {
            let ptr = *slot.get_mut();
            if !ptr.is_null() {
                // SAFETY: published pointers came from Box::into_raw and
                // are dropped exactly once (exclusive access here).
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins(store: &AtomicDenseStore) -> Vec<(i64, u64)> {
        let mut out = Vec::new();
        let mut scratch = AtomicSnapshotScratch::default();
        store.snapshot_bins(&mut out, &mut scratch);
        out
    }

    #[test]
    fn sequential_adds_match_dense_store() {
        use crate::store::Store;
        let atomic: AtomicDenseStore = AtomicDenseStore::new(None);
        let mut dense = crate::store::DenseStore::new();
        for i in [0i64, 5, 5, -100, 2000, 3, -100, 7, 2000] {
            atomic.add_n(i, 2);
            dense.add_n(i as i32, 2);
        }
        let expected: Vec<(i64, u64)> = dense
            .bins_ascending()
            .into_iter()
            .map(|(i, c)| (i as i64, c))
            .collect();
        assert_eq!(bins(&atomic), expected);
    }

    #[test]
    fn growth_chains_tables_without_losing_counts() {
        let store: AtomicDenseStore = AtomicDenseStore::new(None);
        let mut expected_total = 0u64;
        // Monotone stream forces repeated growth.
        for i in 0..50_000i64 {
            store.add_n(i, 1);
            expected_total += 1;
        }
        let mut out = Vec::new();
        let mut scratch = AtomicSnapshotScratch::default();
        let total = store.snapshot_bins(&mut out, &mut scratch);
        assert_eq!(total, expected_total);
        assert_eq!(out.len(), 50_000);
        assert!(out.iter().all(|&(_, c)| c == 1));
        assert!(
            store.num_tables.load(Acquire) <= 12,
            "doubling keeps the chain short"
        );
    }

    #[test]
    fn bounded_store_folds_low_buckets() {
        let m = 64i64;
        let store: AtomicDenseStore = AtomicDenseStore::new(Some(m as usize));
        // Slide the live window far past FOLD_FACTOR * m, then force the
        // deferred fold check (normally it piggybacks on the grow path).
        for i in 0..10_000i64 {
            store.add_n(i, 1);
        }
        {
            let _guard = store.grow.lock();
            store.maybe_fold_locked(m);
        }
        let out = bins(&store);
        let total: u64 = out.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        // Post-fold the live span is exactly the cap, with every folded
        // count in the lowest kept bucket.
        let allowed_min = 9_999 - m + 1;
        assert_eq!(out.first().unwrap(), &(allowed_min, 10_000 - m as u64 + 1));
        assert_eq!(out.last().unwrap(), &(9_999, 1));
        assert_eq!(out.len(), m as usize);
        // The epoch ended even, so snapshots keep working.
        assert_eq!(store.epoch.load(Acquire) % 2, 0);
        assert!(store.epoch.load(Acquire) >= 2, "fold bumped the epoch");
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let store: AtomicDenseStore = AtomicDenseStore::new(None);
        let threads = 8;
        let per_thread = 20_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = &store;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Overlapping, growing index ranges across threads.
                        store.add_n(((i * 7 + t * 13) % 4096) as i64 - 2048, 1);
                    }
                });
            }
        });
        let mut out = Vec::new();
        let mut scratch = AtomicSnapshotScratch::default();
        let total = store.snapshot_bins(&mut out, &mut scratch);
        assert_eq!(total, (threads * per_thread) as u64);
    }

    #[test]
    fn concurrent_adds_with_folds_lose_nothing() {
        let m = 32usize;
        let store: AtomicDenseStore = AtomicDenseStore::new(Some(m));
        let threads = 4;
        let per_thread = 30_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = &store;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Rising stream: keeps triggering growth + folds
                        // while other writers are mid-add.
                        store.add_n((i / 3) as i64 + t as i64, 1);
                    }
                });
                // A racing reader that must never observe a torn fold as
                // a panic or a wild total above the true final count.
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut scratch = AtomicSnapshotScratch::default();
                    for _ in 0..50 {
                        out.clear();
                        let total = store.snapshot_bins(&mut out, &mut scratch);
                        assert!(total <= threads as u64 * per_thread);
                    }
                });
            }
        });
        let total = {
            let mut out = Vec::new();
            let mut scratch = AtomicSnapshotScratch::default();
            store.snapshot_bins(&mut out, &mut scratch)
        };
        assert_eq!(total, threads as u64 * per_thread);
    }

    #[test]
    fn f64_plane_mirrors_integer_plane_on_integral_weights() {
        use crate::store::{AtomicF64, Store};
        let atomic: AtomicDenseStore<AtomicF64> = AtomicDenseStore::new(None);
        let mut dense = crate::store::DenseStore::new();
        for i in [0i64, 5, 5, -100, 2000, 3, -100, 7, 2000] {
            atomic.add_n(i, 2.0);
            dense.add_n(i as i32, 2);
        }
        // And a fractional weight on top.
        atomic.add_n(5, 0.5);
        let mut out = Vec::new();
        let mut scratch = AtomicSnapshotScratch::default();
        let total = atomic.snapshot_bins(&mut out, &mut scratch);
        assert_eq!(total, dense.total_count() as f64 + 0.5);
        let expected: Vec<(i64, f64)> = dense
            .bins_ascending()
            .into_iter()
            .map(|(i, c)| (i as i64, c as f64 + if i == 5 { 0.5 } else { 0.0 }))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn f64_plane_concurrent_adds_sum_exactly() {
        use crate::store::AtomicF64;
        let store: AtomicDenseStore<AtomicF64> = AtomicDenseStore::new(None);
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = &store;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Powers of two: exact under any interleaving.
                        store.add_n(((i * 7 + t * 13) % 1024) as i64 - 512, 0.25);
                    }
                });
            }
        });
        let mut out = Vec::new();
        let mut scratch = AtomicSnapshotScratch::default();
        let total = store.snapshot_bins(&mut out, &mut scratch);
        assert_eq!(total, (threads * per_thread) as f64 * 0.25);
    }

    #[test]
    fn empty_store_snapshot_is_empty() {
        let store: AtomicDenseStore = AtomicDenseStore::new(Some(16));
        assert!(bins(&store).is_empty());
        assert!(store.memory_bytes() >= std::mem::size_of::<AtomicDenseStore>());
    }
}
