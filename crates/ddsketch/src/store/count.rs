//! The count domain of a store: [`Count`], implemented for `u64` and
//! `f64`.
//!
//! The paper defines sketches over integer multiplicities, but weighted
//! ingestion — pre-aggregated client submissions, rate-scaled samples,
//! ingest-time decay, sketch subtraction — needs counts that are not
//! `u64`. This trait is the single seam those features thread through:
//! every store family is parameterized over its count type the same way
//! dense storage is parameterized over a [`super::Cell`], and the sketch,
//! codec, and pipeline layers follow the store's `Count` associated type.
//!
//! The `u64` implementation is the paper's integer plane and compiles to
//! exactly the arithmetic the stores used before the abstraction existed
//! (the unweighted path is property-tested to stay bit-identical). The
//! `f64` plane carries fractional weights; its validity rules (finite,
//! non-negative) are enforced at the sketch layer's ingestion boundary so
//! store internals can assume well-formed counts.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bucket-count domain: the closed additive arithmetic a store performs
/// on its per-bucket multiplicities.
///
/// Implementations must behave like a totally-ordered additive monoid on
/// their *valid* range (`u64` everywhere, `f64` on finite non-negative
/// values): `ZERO` is the additive identity and valid counts are closed
/// under addition up to overflow, which [`Count::checked_add`] reports.
pub trait Count:
    Copy
    + Debug
    + Default
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + SubAssign
{
    /// The additive identity (an empty bucket).
    const ZERO: Self;
    /// The multiplicity of one unweighted insertion.
    const ONE: Self;

    /// Convert an integer multiplicity into this domain. Exact for `u64`;
    /// exact for `f64` up to 2^53 (rounded to the nearest representable
    /// value beyond, like any u64→f64 conversion).
    fn from_u64(n: u64) -> Self;

    /// The count as an `f64`, the shared currency of rank walks and
    /// summary statistics. For `u64` this is the plain `as f64`
    /// conversion the integer plane has always used in `key_at_rank`.
    fn to_f64(self) -> f64;

    /// Whether `self` is a well-formed count: always for `u64`; finite
    /// and non-negative for `f64` (NaN, ±∞, and negative totals are
    /// rejected at the ingestion boundary).
    fn is_valid(self) -> bool;

    /// `self + other`, or `None` on overflow (`u64` wraparound, `f64`
    /// overflow to +∞).
    fn checked_add(self, other: Self) -> Option<Self>;

    /// `max(self - other, ZERO)` — the floor-at-zero subtraction behind
    /// sketch subtraction, where removing more than a bucket holds must
    /// clamp rather than underflow.
    fn sub_clamped(self, other: Self) -> Self;

    /// Scale by a non-negative finite factor — the ingest-time decay
    /// primitive. `f64` multiplies exactly; `u64` rounds to the nearest
    /// integer (so repeated integer decay loses sub-unit residue, which
    /// is why decayed windows run on the `f64` plane).
    fn scale(self, factor: f64) -> Self;

    /// The count as an exact `u64`, when it is one: `Some` for every
    /// `u64`, and for `f64` values that are integral, non-negative, and
    /// at most 2^53 (the contiguous integer range). This is the codec's
    /// integral fast path test.
    fn to_u64_exact(self) -> Option<u64>;
}

impl Count for u64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn from_u64(n: u64) -> Self {
        n
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn is_valid(self) -> bool {
        true
    }

    #[inline(always)]
    fn checked_add(self, other: Self) -> Option<Self> {
        u64::checked_add(self, other)
    }

    #[inline(always)]
    fn sub_clamped(self, other: Self) -> Self {
        self.saturating_sub(other)
    }

    #[inline(always)]
    fn scale(self, factor: f64) -> Self {
        (self as f64 * factor).round() as u64
    }

    #[inline(always)]
    fn to_u64_exact(self) -> Option<u64> {
        Some(self)
    }
}

/// Largest `f64` whose integer neighborhood is exactly representable
/// (2^53): the bound of the codec's integral fast path.
const F64_EXACT_INT_MAX: f64 = 9_007_199_254_740_992.0;

impl Count for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_u64(n: u64) -> Self {
        n as f64
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn is_valid(self) -> bool {
        self.is_finite() && self >= 0.0
    }

    #[inline(always)]
    fn checked_add(self, other: Self) -> Option<Self> {
        let sum = self + other;
        sum.is_finite().then_some(sum)
    }

    #[inline(always)]
    fn sub_clamped(self, other: Self) -> Self {
        (self - other).max(0.0)
    }

    #[inline(always)]
    fn scale(self, factor: f64) -> Self {
        self * factor
    }

    #[inline(always)]
    fn to_u64_exact(self) -> Option<u64> {
        ((0.0..=F64_EXACT_INT_MAX).contains(&self) && self.fract() == 0.0).then_some(self as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_plane_is_plain_integer_arithmetic() {
        assert_eq!(u64::ZERO, 0);
        assert_eq!(u64::ONE, 1);
        assert_eq!(u64::from_u64(17), 17);
        assert_eq!(17u64.to_f64(), 17.0);
        assert!(17u64.is_valid());
        assert_eq!(3u64.checked_add(4), Some(7));
        assert_eq!(u64::MAX.checked_add(1), None);
        assert_eq!(3u64.sub_clamped(5), 0);
        assert_eq!(5u64.sub_clamped(3), 2);
        assert_eq!(10u64.scale(0.25), 3, "u64 decay rounds to nearest");
        assert_eq!(17u64.to_u64_exact(), Some(17));
    }

    #[test]
    fn f64_validity_rejects_hostile_counts() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -1e-300] {
            assert!(!bad.is_valid(), "{bad} must be invalid");
        }
        for good in [0.0, 1e-300, 0.5, 1.0, 1e18] {
            assert!(good.is_valid(), "{good} must be valid");
        }
    }

    #[test]
    fn f64_integral_fast_path_bounds() {
        assert_eq!(1.0f64.to_u64_exact(), Some(1));
        assert_eq!(0.0f64.to_u64_exact(), Some(0));
        assert_eq!(F64_EXACT_INT_MAX.to_u64_exact(), Some(1u64 << 53));
        assert_eq!(0.5f64.to_u64_exact(), None);
        assert_eq!((-1.0f64).to_u64_exact(), None);
        assert_eq!((F64_EXACT_INT_MAX * 4.0).to_u64_exact(), None);
        assert_eq!(f64::NAN.to_u64_exact(), None);
        assert_eq!(f64::INFINITY.to_u64_exact(), None);
    }

    #[test]
    fn f64_clamped_and_checked_ops() {
        assert_eq!(1.5f64.sub_clamped(2.0), 0.0);
        assert_eq!(2.0f64.sub_clamped(0.5), 1.5);
        assert_eq!(1.5f64.checked_add(2.5), Some(4.0));
        assert_eq!(f64::MAX.checked_add(f64::MAX), None);
        assert_eq!(8.0f64.scale(0.25), 2.0);
    }
}
