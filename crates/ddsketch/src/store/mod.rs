//! Bucket stores: maps from bucket index (`i32`) to counts (`u64`).
//!
//! The paper (Section 2.2) discusses the memory/speed trade-offs: buckets
//! can be stored contiguously ("for fast addition") or sparsely ("for
//! smaller memory footprint"), and the bucket count can grow indefinitely
//! or be bounded by `m`, collapsing the lowest (or, for the negative-value
//! sketch, highest) indices per Algorithms 3 and 4.
//!
//! | store | growth | collapse | backing |
//! |-------|--------|----------|---------|
//! | [`DenseStore`] | unbounded | never | contiguous `Vec<u64>` |
//! | [`CollapsingLowestDenseStore`] | bounded span `m` | lowest indices | contiguous `Vec<u64>` |
//! | [`CollapsingHighestDenseStore`] | bounded span `m` | highest indices | contiguous `Vec<u64>` |
//! | [`SparseStore`] | unbounded | never | `BTreeMap` |
//! | [`CollapsingSparseStore`] | bounded non-empty bins `m` | two lowest non-empty (paper-exact Algorithm 3) | `BTreeMap` |
//!
//! Note the two collapsing flavours bound *different* quantities: the dense
//! stores bound the index **span** (array length), mirroring Datadog's
//! production implementations, while the sparse collapsing store bounds the
//! number of **non-empty** buckets, which is the letter of Algorithm 3.
//! Both satisfy Proposition 4's accuracy condition.

mod atomic;
mod cell;
mod collapsing;
mod count;
mod dense;
mod sparse;

pub use atomic::{AtomicDenseStore, AtomicSnapshotScratch};
pub use cell::{AtomicF64, Cell, PlainCell, SharedCell};
pub use collapsing::{CollapsingHighestDenseStore, CollapsingLowestDenseStore};
pub use count::Count;
pub use dense::DenseStore;
pub use sparse::{CollapsingSparseStore, SparseStore};

use sketch_core::SketchError;

/// Identifies the store family a sketch was built with.
///
/// This is the runtime-configuration counterpart of the concrete store
/// types above: [`crate::SketchConfig`] selects a `StoreKind`, and the
/// self-describing wire format carries it so a decoder can reconstruct the
/// right store without caller-side type knowledge. The discriminant values
/// are part of the `DDS2` wire format and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StoreKind {
    /// [`DenseStore`]: contiguous, unbounded span, never collapses.
    Unbounded = 0,
    /// [`CollapsingLowestDenseStore`] / [`CollapsingHighestDenseStore`]:
    /// contiguous, index span bounded by `max_bins`.
    CollapsingDense = 1,
    /// [`SparseStore`]: B-tree keyed by index, unbounded, never collapses.
    Sparse = 2,
    /// [`CollapsingSparseStore`]: B-tree with the number of *non-empty*
    /// buckets bounded by `max_bins` (Algorithm 3 exactly).
    CollapsingSparse = 3,
}

impl StoreKind {
    /// Decode from the codec byte.
    pub fn from_u8(b: u8) -> Result<Self, SketchError> {
        match b {
            0 => Ok(StoreKind::Unbounded),
            1 => Ok(StoreKind::CollapsingDense),
            2 => Ok(StoreKind::Sparse),
            3 => Ok(StoreKind::CollapsingSparse),
            other => Err(SketchError::Decode(format!("unknown store kind {other}"))),
        }
    }

    /// Whether this store family is bounded (takes a `max_bins` limit).
    pub fn is_bounded(self) -> bool {
        matches!(
            self,
            StoreKind::CollapsingDense | StoreKind::CollapsingSparse
        )
    }

    /// Display name used in config errors and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Unbounded => "unbounded-dense",
            StoreKind::CollapsingDense => "collapsing-dense",
            StoreKind::Sparse => "sparse",
            StoreKind::CollapsingSparse => "collapsing-sparse",
        }
    }
}

/// A borrowed, allocation-free view of a store's non-empty `(index, count)`
/// bins in ascending index order — the zero-copy counterpart of
/// [`Store::bins_ascending`] and the building block of the k-way merge
/// plane: merged quantile walks consume any number of stores' bins through
/// these iterators without materializing an intermediate store.
///
/// One concrete enum serves every store family (no `dyn`, no allocation):
/// dense stores hand out their live counter slice, the highest-collapsing
/// store hands out the mirrored view of its negated inner slice, and the
/// sparse stores hand out their B-tree range. The iterator is double-ended,
/// so the negative-value quantile walk (largest `|x|` first) is `.rev()`.
///
/// The count parameter `C` follows the store's [`Store::Count`]; it
/// defaults to `u64` so the integer plane's signatures read as before.
#[derive(Debug, Clone)]
pub enum BinIter<'a, C: Count = u64> {
    /// Dense counters: entry `k` holds the count of bucket `first + k`.
    Dense {
        /// The store's live counter window (may contain zero entries).
        counts: &'a [C],
        /// Bucket index of `counts[0]` (i64: index arithmetic near the
        /// i32 extremes must not overflow).
        first: i64,
    },
    /// Mirrored dense counters (the highest-collapsing store's view of its
    /// negated inner store): entry `k` holds the count of bucket
    /// `-(first + k)`, so ascending output order walks the slice backward.
    DenseNeg {
        /// The inner store's live counter window.
        counts: &'a [C],
        /// *Inner* bucket index of `counts[0]`.
        first: i64,
    },
    /// Ordered-map bins (sparse stores).
    Sparse(std::collections::btree_map::Iter<'a, i32, C>),
}

impl<C: Count> BinIter<'_, C> {
    /// An iterator over no bins.
    pub fn empty() -> Self {
        BinIter::Dense {
            counts: &[],
            first: 0,
        }
    }
}

impl<C: Count> Iterator for BinIter<'_, C> {
    type Item = (i32, C);

    fn next(&mut self) -> Option<(i32, C)> {
        match self {
            BinIter::Dense { counts, first } => {
                while let Some((&c, rest)) = counts.split_first() {
                    let idx = *first;
                    *counts = rest;
                    *first += 1;
                    if c > C::ZERO {
                        return Some((idx as i32, c));
                    }
                }
                None
            }
            BinIter::DenseNeg { counts, first } => {
                // Ascending mirrored order = descending inner order.
                while let Some((&c, rest)) = counts.split_last() {
                    let idx = *first + rest.len() as i64;
                    *counts = rest;
                    if c > C::ZERO {
                        return Some(((-idx) as i32, c));
                    }
                }
                None
            }
            BinIter::Sparse(iter) => iter.next().map(|(&i, &c)| (i, c)),
        }
    }
}

impl<C: Count> DoubleEndedIterator for BinIter<'_, C> {
    fn next_back(&mut self) -> Option<(i32, C)> {
        match self {
            BinIter::Dense { counts, first } => {
                while let Some((&c, rest)) = counts.split_last() {
                    let idx = *first + rest.len() as i64;
                    *counts = rest;
                    if c > C::ZERO {
                        return Some((idx as i32, c));
                    }
                }
                None
            }
            BinIter::DenseNeg { counts, first } => {
                // Descending mirrored order = ascending inner order.
                while let Some((&c, rest)) = counts.split_first() {
                    let idx = *first;
                    *counts = rest;
                    *first += 1;
                    if c > C::ZERO {
                        return Some(((-idx) as i32, c));
                    }
                }
                None
            }
            BinIter::Sparse(iter) => iter.next_back().map(|(&i, &c)| (i, c)),
        }
    }
}

/// A multiset of integer bucket indices with [`Store::Count`]
/// multiplicities (`u64` on the paper's integer plane, `f64` on the
/// weighted plane).
pub trait Store: Clone + std::fmt::Debug {
    /// The count domain of this store's buckets. Callers at the ingestion
    /// boundary are responsible for rejecting invalid counts
    /// ([`Count::is_valid`] — e.g. negative or non-finite `f64` totals);
    /// store internals assume well-formed counts.
    type Count: Count;

    /// The store family this implementation belongs to (used by the
    /// self-describing codec and [`crate::SketchConfig`] reconstruction).
    fn store_kind(&self) -> StoreKind;

    /// Add `count` occurrences of bucket `index`.
    fn add_n(&mut self, index: i32, count: Self::Count);

    /// Add a single occurrence of bucket `index`.
    #[inline]
    fn add(&mut self, index: i32) {
        self.add_n(index, Self::Count::ONE);
    }

    /// Add one occurrence of every bucket index in `indices`.
    ///
    /// The effect on the stored bins is identical — bucket for bucket —
    /// to calling [`Store::add`] on each element in order; implementations
    /// override this to amortize growth and collapse work over the whole
    /// batch (the backbone of the sketch's `add_slice` fast path).
    fn add_indices(&mut self, indices: &[i32]) {
        for &index in indices {
            self.add(index);
        }
    }

    /// Add `count` occurrences of `index` for every `(index, count)` pair.
    ///
    /// Equivalent to calling [`Store::add_n`] on each pair in order.
    /// Bulk-capable stores override this to pre-size for the batch's whole
    /// index span (used by merges and codec loads).
    fn add_bins(&mut self, bins: &[(i32, Self::Count)]) {
        for &(index, count) in bins {
            self.add_n(index, count);
        }
    }

    /// Remove `count` occurrences of bucket `index`. Returns `false`
    /// (leaving the store unchanged) if the bucket holds fewer than `count`.
    fn remove_n(&mut self, index: i32, count: Self::Count) -> bool;

    /// Remove up to `count` occurrences of bucket `index`, clamping at the
    /// bucket's floor: removes `min(count, present)` and returns the
    /// amount actually removed. This is the store-level primitive of
    /// sketch subtraction, where an over-subtracted bucket clamps to empty
    /// instead of underflowing.
    fn remove_up_to(&mut self, index: i32, count: Self::Count) -> Self::Count {
        if count <= Self::Count::ZERO {
            return Self::Count::ZERO;
        }
        let present = self
            .bin_iter()
            .find(|&(i, _)| i == index)
            .map(|(_, c)| c)
            .unwrap_or(Self::Count::ZERO);
        let take = if count < present { count } else { present };
        if take > Self::Count::ZERO && self.remove_n(index, take) {
            take
        } else {
            Self::Count::ZERO
        }
    }

    /// Scale every bucket count by a non-negative finite `factor` — the
    /// ingest-time decay primitive ([`Count::scale`]). On the `u64` plane
    /// counts round to the nearest integer (buckets may round to empty);
    /// on the `f64` plane the scaling is exact. The total is recomputed
    /// from the surviving buckets.
    fn scale_counts(&mut self, factor: f64);

    /// Total number of stored occurrences.
    fn total_count(&self) -> Self::Count;

    /// Whether the store holds no occurrences.
    fn is_empty(&self) -> bool {
        self.total_count() == Self::Count::ZERO
    }

    /// Smallest non-empty bucket index.
    fn min_index(&self) -> Option<i32>;

    /// Largest non-empty bucket index.
    fn max_index(&self) -> Option<i32>;

    /// Borrowed iterator over the non-empty `(index, count)` bins in
    /// ascending index order. Allocation-free; the k-way merge plane is
    /// built on these.
    fn bin_iter(&self) -> BinIter<'_, Self::Count>;

    /// Number of non-empty buckets ("bins" in the paper's Figure 7).
    fn num_bins(&self) -> usize {
        self.bin_iter().count()
    }

    /// Non-empty `(index, count)` pairs in ascending index order.
    ///
    /// Allocates the result; prefer [`Store::bin_iter`] on hot paths.
    fn bins_ascending(&self) -> Vec<(i32, Self::Count)> {
        self.bin_iter().collect()
    }

    /// Algorithm 2's cumulative walk: the smallest index whose cumulative
    /// count (ascending) exceeds `rank`. Falls back to the maximal index
    /// when floating-point rounding pushes `rank` past the total.
    fn key_at_rank(&self, rank: f64) -> Option<i32> {
        let mut cum = Self::Count::ZERO;
        let mut last = None;
        for (idx, count) in self.bin_iter() {
            cum += count;
            last = Some(idx);
            if cum.to_f64() > rank {
                return Some(idx);
            }
        }
        last
    }

    /// Mirror walk from the largest index downward, used by the
    /// negative-value store (most negative value = largest |x| index).
    fn key_at_rank_descending(&self, rank: f64) -> Option<i32> {
        let mut cum = Self::Count::ZERO;
        let mut last = None;
        for (idx, count) in self.bin_iter().rev() {
            cum += count;
            last = Some(idx);
            if cum.to_f64() > rank {
                return Some(idx);
            }
        }
        last
    }

    /// Merge another store of the same type into this one (summing bucket
    /// counts; bounded stores re-collapse as needed — Algorithm 4).
    fn merge_from(&mut self, other: &Self);

    /// Merge several same-type stores into this one.
    ///
    /// Equivalent — bucket for bucket, including the `has_collapsed` flag
    /// — to folding [`Store::merge_from`] over `others` in order, but
    /// bulk-capable stores override it to make the capacity and collapse
    /// decisions **once** for the whole batch (one reallocation and one
    /// fold for a k-way merge, instead of up to k of each).
    fn merge_many(&mut self, others: &[&Self])
    where
        Self: Sized,
    {
        for other in others {
            self.merge_from(other);
        }
    }

    /// The effective-index clamp that merging `stores` into a fresh store
    /// of `stores[0]`'s configuration would apply: a bin at raw index `i`
    /// lands at `i.clamp(lo, hi)` in the merged store.
    ///
    /// This lets a k-way reader (e.g. a merged quantile walk) account for
    /// collapse semantics *without materializing the merge*: unbounded
    /// families never clamp (the default), the lowest-collapsing dense
    /// store folds everything below `union_max − m + 1` upward, the
    /// highest-collapsing store mirrors that, and the Algorithm-3 sparse
    /// store folds everything at or below its post-collapse lowest
    /// surviving bucket. Since `clamp` is monotone, walking raw bins in
    /// index order and clamping on the fly visits the merged store's bins
    /// in order with identical cumulative counts.
    fn merge_clamp(stores: &[&Self]) -> (i32, i32)
    where
        Self: Sized,
    {
        Self::merge_clamp_iter(stores.iter().copied())
    }

    /// Iterator form of [`Store::merge_clamp`], for callers that walk
    /// borrowed stores without materializing a `&[&Self]` slice (the
    /// allocation-free merged quantile walk). The iterator must be
    /// restartable (`Clone`): bounded implementations may take more than
    /// one pass over the stores.
    fn merge_clamp_iter<'s>(stores: impl Iterator<Item = &'s Self> + Clone) -> (i32, i32)
    where
        Self: Sized + 's,
    {
        let _ = stores;
        (i32::MIN, i32::MAX)
    }

    /// Remove all occurrences, keeping allocated capacity where sensible.
    fn clear(&mut self);

    /// Whether any collapse has ever occurred (meaning the lowest — or
    /// highest — quantiles may no longer satisfy the α guarantee; see
    /// Proposition 4).
    fn has_collapsed(&self) -> bool {
        false
    }

    /// The configured bucket limit, if this store is bounded.
    fn bin_limit(&self) -> Option<usize> {
        None
    }

    /// Structural memory footprint in bytes (capacity-aware).
    fn memory_bytes(&self) -> usize;
}

/// Shared test-suite for store implementations.
#[cfg(test)]
pub(crate) mod storetests {
    use super::*;

    /// Basic single-bucket and multi-bucket behaviour every store must have
    /// (run only within each store's non-collapsing regime).
    pub(crate) fn run_basic_suite<S: Store<Count = u64>>(mut fresh: impl FnMut() -> S) {
        // Empty store.
        let s = fresh();
        assert!(s.is_empty());
        assert_eq!(s.total_count(), 0);
        assert_eq!(s.min_index(), None);
        assert_eq!(s.max_index(), None);
        assert_eq!(s.num_bins(), 0);
        assert_eq!(s.key_at_rank(0.0), None);
        assert_eq!(s.key_at_rank_descending(0.0), None);
        assert!(s.bins_ascending().is_empty());

        // Single bucket.
        let mut s = fresh();
        s.add(42);
        assert_eq!(s.total_count(), 1);
        assert_eq!(s.min_index(), Some(42));
        assert_eq!(s.max_index(), Some(42));
        assert_eq!(s.num_bins(), 1);
        assert_eq!(s.key_at_rank(0.0), Some(42));

        // Weighted adds and ordering.
        let mut s = fresh();
        s.add_n(5, 3);
        s.add_n(-7, 2);
        s.add_n(100, 1);
        assert_eq!(s.total_count(), 6);
        assert_eq!(s.min_index(), Some(-7));
        assert_eq!(s.max_index(), Some(100));
        assert_eq!(s.bins_ascending(), vec![(-7, 2), (5, 3), (100, 1)]);

        // Rank walk: cumulative counts are 2, 5, 6.
        assert_eq!(s.key_at_rank(0.0), Some(-7));
        assert_eq!(s.key_at_rank(1.9), Some(-7));
        assert_eq!(s.key_at_rank(2.0), Some(5));
        assert_eq!(s.key_at_rank(4.9), Some(5));
        assert_eq!(s.key_at_rank(5.0), Some(100));
        // Past-the-end rank falls back to max index.
        assert_eq!(s.key_at_rank(6.5), Some(100));

        // Descending walk: cumulative 1, 4, 6 from the top.
        assert_eq!(s.key_at_rank_descending(0.0), Some(100));
        assert_eq!(s.key_at_rank_descending(1.0), Some(5));
        assert_eq!(s.key_at_rank_descending(4.0), Some(-7));
        assert_eq!(s.key_at_rank_descending(7.0), Some(-7));

        // Removal.
        let mut s = fresh();
        s.add_n(3, 5);
        assert!(s.remove_n(3, 2));
        assert_eq!(s.total_count(), 3);
        assert!(!s.remove_n(3, 10), "removing more than present must fail");
        assert_eq!(s.total_count(), 3, "failed removal must not mutate");
        assert!(
            !s.remove_n(99, 1),
            "removing from an absent bucket must fail"
        );
        assert!(s.remove_n(3, 3));
        assert!(s.is_empty());

        // Merge.
        let mut a = fresh();
        let mut b = fresh();
        a.add_n(1, 2);
        a.add_n(10, 1);
        b.add_n(10, 4);
        b.add_n(-3, 1);
        a.merge_from(&b);
        assert_eq!(a.total_count(), 8);
        assert_eq!(a.bins_ascending(), vec![(-3, 1), (1, 2), (10, 5)]);

        // Merging an empty store is a no-op.
        let empty = fresh();
        a.merge_from(&empty);
        assert_eq!(a.total_count(), 8);

        // Clear.
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.bins_ascending(), vec![]);

        // add zero count is a no-op.
        let mut s = fresh();
        s.add_n(7, 0);
        assert!(s.is_empty());

        // Memory accounting reports something plausible.
        let mut s = fresh();
        s.add(0);
        assert!(s.memory_bytes() >= std::mem::size_of::<S>());
    }

    /// Bulk insertion must equal scalar insertion, bucket-for-bucket —
    /// including in collapsing regimes, where both paths must agree on the
    /// folded layout and the `has_collapsed` flag.
    pub(crate) fn run_bulk_equivalence<S: Store<Count = u64>>(
        mut fresh: impl FnMut() -> S,
        stream: &[i32],
    ) {
        for split in [0, stream.len() / 3, stream.len()] {
            let (warm, batch) = stream.split_at(split);
            let mut scalar = fresh();
            let mut bulk = fresh();
            for &i in warm {
                scalar.add(i);
                bulk.add(i);
            }
            for &i in batch {
                scalar.add(i);
            }
            bulk.add_indices(batch);
            assert_eq!(
                bulk.bins_ascending(),
                scalar.bins_ascending(),
                "add_indices diverged from scalar adds (warm prefix {split})"
            );
            assert_eq!(bulk.total_count(), scalar.total_count());
            assert_eq!(bulk.min_index(), scalar.min_index());
            assert_eq!(bulk.max_index(), scalar.max_index());
            assert_eq!(bulk.has_collapsed(), scalar.has_collapsed());

            // add_bins over the run-length encoding of the batch must also
            // agree (insertion order of distinct bins may differ from the
            // stream, which collapse semantics must tolerate).
            let mut rle = fresh();
            for &i in warm {
                rle.add(i);
            }
            let mut sorted = batch.to_vec();
            sorted.sort_unstable();
            let mut bins: Vec<(i32, u64)> = Vec::new();
            for &i in &sorted {
                match bins.last_mut() {
                    Some((idx, c)) if *idx == i => *c += 1,
                    _ => bins.push((i, 1)),
                }
            }
            rle.add_bins(&bins);
            assert_eq!(
                rle.bins_ascending(),
                scalar.bins_ascending(),
                "add_bins diverged from scalar adds (warm prefix {split})"
            );
            assert_eq!(rle.total_count(), scalar.total_count());
        }
    }

    /// `bin_iter` must agree with `bins_ascending` in both directions and
    /// never report empty bins.
    pub(crate) fn run_bin_iter_suite<S: Store<Count = u64>>(
        mut fresh: impl FnMut() -> S,
        stream: &[i32],
    ) {
        let empty = fresh();
        assert_eq!(empty.bin_iter().count(), 0);
        assert_eq!(empty.bin_iter().rev().count(), 0);

        let mut s = fresh();
        for &i in stream {
            s.add(i);
        }
        let expected = s.bins_ascending();
        assert_eq!(s.bin_iter().collect::<Vec<_>>(), expected);
        let mut reversed: Vec<_> = s.bin_iter().rev().collect();
        reversed.reverse();
        assert_eq!(reversed, expected, "rev() must mirror the forward walk");
        assert!(s.bin_iter().all(|(_, c)| c > 0));
        assert_eq!(s.num_bins(), expected.len());

        // Alternating front/back consumption covers the double-ended
        // bookkeeping.
        let mut front_back = Vec::new();
        let mut back = Vec::new();
        let mut iter = s.bin_iter();
        while let Some(front) = iter.next() {
            front_back.push(front);
            if let Some(b) = iter.next_back() {
                back.push(b);
            }
        }
        back.reverse();
        front_back.extend(back);
        assert_eq!(front_back, expected);
    }

    /// `merge_many` must equal folding `merge_from` in order — bins,
    /// totals, extremes, and the collapse flag — from both an empty and a
    /// warm target.
    pub(crate) fn run_merge_many_equivalence<S: Store<Count = u64>>(
        mut fresh: impl FnMut() -> S,
        warm: &[i32],
        streams: &[&[i32]],
    ) {
        let sources: Vec<S> = streams
            .iter()
            .map(|stream| {
                let mut s = fresh();
                for &i in *stream {
                    s.add(i);
                }
                s
            })
            .collect();
        let refs: Vec<&S> = sources.iter().collect();
        for warm_prefix in [&[][..], warm] {
            let mut bulk = fresh();
            let mut seq = fresh();
            for &i in warm_prefix {
                bulk.add(i);
                seq.add(i);
            }
            bulk.merge_many(&refs);
            for source in &sources {
                seq.merge_from(source);
            }
            assert_eq!(
                bulk.bins_ascending(),
                seq.bins_ascending(),
                "merge_many diverged from sequential merge_from (warm: {})",
                !warm_prefix.is_empty()
            );
            assert_eq!(bulk.total_count(), seq.total_count());
            assert_eq!(bulk.min_index(), seq.min_index());
            assert_eq!(bulk.max_index(), seq.max_index());
            assert_eq!(bulk.has_collapsed(), seq.has_collapsed());
        }
    }

    /// Merging must equal inserting the union, bucket-for-bucket.
    pub(crate) fn run_merge_equivalence<S: Store<Count = u64>>(
        mut fresh: impl FnMut() -> S,
        stream_a: &[i32],
        stream_b: &[i32],
    ) {
        let mut sa = fresh();
        let mut sb = fresh();
        let mut su = fresh();
        for &i in stream_a {
            sa.add(i);
            su.add(i);
        }
        for &i in stream_b {
            sb.add(i);
            su.add(i);
        }
        sa.merge_from(&sb);
        assert_eq!(
            sa.bins_ascending(),
            su.bins_ascending(),
            "merge(A, B) must equal sketch(A ∪ B) exactly"
        );
        assert_eq!(sa.total_count(), su.total_count());
    }

    /// The weighted count plane must mirror the integer plane exactly on
    /// integer weights: an `f64`-count store fed `add_n(i, k as f64)`
    /// produces bit-identical bins, totals, rank walks, and merges to the
    /// `u64` store fed `add_n(i, k)` (integer-valued `f64` arithmetic is
    /// exact below 2^53).
    pub(crate) fn run_weighted_mirror_suite<SU, SF>(
        mut fresh_u: impl FnMut() -> SU,
        mut fresh_f: impl FnMut() -> SF,
        stream: &[(i32, u64)],
    ) where
        SU: Store<Count = u64>,
        SF: Store<Count = f64>,
    {
        let mut su = fresh_u();
        let mut sf = fresh_f();
        for &(i, k) in stream {
            su.add_n(i, k);
            sf.add_n(i, k as f64);
        }
        let ubins = su.bins_ascending();
        let fbins = sf.bins_ascending();
        assert_eq!(ubins.len(), fbins.len(), "bin layout diverged");
        for (&(ui, uc), &(fi, fc)) in ubins.iter().zip(&fbins) {
            assert_eq!(ui, fi, "bucket index diverged");
            assert_eq!(uc as f64, fc, "bucket count diverged at {ui}");
        }
        assert_eq!(su.total_count() as f64, sf.total_count());
        assert_eq!(su.min_index(), sf.min_index());
        assert_eq!(su.max_index(), sf.max_index());
        assert_eq!(su.has_collapsed(), sf.has_collapsed());
        let total = su.total_count();
        for p in 0..=10 {
            let rank = total as f64 * p as f64 / 10.0;
            assert_eq!(su.key_at_rank(rank), sf.key_at_rank(rank), "rank {rank}");
            assert_eq!(
                su.key_at_rank_descending(rank),
                sf.key_at_rank_descending(rank),
                "descending rank {rank}"
            );
        }

        // Merging two weighted stores mirrors the integer merge.
        let (mut ua, mut fa) = (fresh_u(), fresh_f());
        let (mut ub, mut fb) = (fresh_u(), fresh_f());
        let half = stream.len() / 2;
        for &(i, k) in &stream[..half] {
            ua.add_n(i, k);
            fa.add_n(i, k as f64);
        }
        for &(i, k) in &stream[half..] {
            ub.add_n(i, k);
            fb.add_n(i, k as f64);
        }
        ua.merge_from(&ub);
        fa.merge_from(&fb);
        assert_eq!(ua.total_count() as f64, fa.total_count());
        assert_eq!(
            ua.bins_ascending()
                .into_iter()
                .map(|(i, c)| (i, c as f64))
                .collect::<Vec<_>>(),
            fa.bins_ascending(),
            "weighted merge diverged from the integer merge"
        );

        // Fractional mechanics: clamped removal and exact scaling.
        let mut s = fresh_f();
        s.add_n(3, 2.5);
        assert_eq!(s.remove_up_to(3, 1.0), 1.0);
        assert_eq!(s.total_count(), 1.5);
        assert_eq!(s.remove_up_to(3, 10.0), 1.5, "clamp at the bucket floor");
        assert!(s.is_empty());
        assert_eq!(s.remove_up_to(3, 1.0), 0.0, "empty bucket removes zero");
        let mut s = fresh_f();
        s.add_n(1, 4.0);
        s.add_n(3, 1.0);
        s.scale_counts(0.25);
        assert_eq!(s.total_count(), 1.25);
        assert_eq!(s.bins_ascending(), vec![(1, 1.0), (3, 0.25)]);
        s.scale_counts(0.0);
        assert!(s.is_empty(), "zero factor empties the store");
        assert_eq!(s.min_index(), None);
    }
}
