//! Bucket stores: maps from bucket index (`i32`) to counts (`u64`).
//!
//! The paper (Section 2.2) discusses the memory/speed trade-offs: buckets
//! can be stored contiguously ("for fast addition") or sparsely ("for
//! smaller memory footprint"), and the bucket count can grow indefinitely
//! or be bounded by `m`, collapsing the lowest (or, for the negative-value
//! sketch, highest) indices per Algorithms 3 and 4.
//!
//! | store | growth | collapse | backing |
//! |-------|--------|----------|---------|
//! | [`DenseStore`] | unbounded | never | contiguous `Vec<u64>` |
//! | [`CollapsingLowestDenseStore`] | bounded span `m` | lowest indices | contiguous `Vec<u64>` |
//! | [`CollapsingHighestDenseStore`] | bounded span `m` | highest indices | contiguous `Vec<u64>` |
//! | [`SparseStore`] | unbounded | never | `BTreeMap` |
//! | [`CollapsingSparseStore`] | bounded non-empty bins `m` | two lowest non-empty (paper-exact Algorithm 3) | `BTreeMap` |
//!
//! Note the two collapsing flavours bound *different* quantities: the dense
//! stores bound the index **span** (array length), mirroring Datadog's
//! production implementations, while the sparse collapsing store bounds the
//! number of **non-empty** buckets, which is the letter of Algorithm 3.
//! Both satisfy Proposition 4's accuracy condition.

mod collapsing;
mod dense;
mod sparse;

pub use collapsing::{CollapsingHighestDenseStore, CollapsingLowestDenseStore};
pub use dense::DenseStore;
pub use sparse::{CollapsingSparseStore, SparseStore};

use sketch_core::SketchError;

/// Identifies the store family a sketch was built with.
///
/// This is the runtime-configuration counterpart of the concrete store
/// types above: [`crate::SketchConfig`] selects a `StoreKind`, and the
/// self-describing wire format carries it so a decoder can reconstruct the
/// right store without caller-side type knowledge. The discriminant values
/// are part of the `DDS2` wire format and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StoreKind {
    /// [`DenseStore`]: contiguous, unbounded span, never collapses.
    Unbounded = 0,
    /// [`CollapsingLowestDenseStore`] / [`CollapsingHighestDenseStore`]:
    /// contiguous, index span bounded by `max_bins`.
    CollapsingDense = 1,
    /// [`SparseStore`]: B-tree keyed by index, unbounded, never collapses.
    Sparse = 2,
    /// [`CollapsingSparseStore`]: B-tree with the number of *non-empty*
    /// buckets bounded by `max_bins` (Algorithm 3 exactly).
    CollapsingSparse = 3,
}

impl StoreKind {
    /// Decode from the codec byte.
    pub fn from_u8(b: u8) -> Result<Self, SketchError> {
        match b {
            0 => Ok(StoreKind::Unbounded),
            1 => Ok(StoreKind::CollapsingDense),
            2 => Ok(StoreKind::Sparse),
            3 => Ok(StoreKind::CollapsingSparse),
            other => Err(SketchError::Decode(format!("unknown store kind {other}"))),
        }
    }

    /// Whether this store family is bounded (takes a `max_bins` limit).
    pub fn is_bounded(self) -> bool {
        matches!(
            self,
            StoreKind::CollapsingDense | StoreKind::CollapsingSparse
        )
    }

    /// Display name used in config errors and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Unbounded => "unbounded-dense",
            StoreKind::CollapsingDense => "collapsing-dense",
            StoreKind::Sparse => "sparse",
            StoreKind::CollapsingSparse => "collapsing-sparse",
        }
    }
}

/// A multiset of integer bucket indices with u64 multiplicities.
pub trait Store: Clone + std::fmt::Debug {
    /// The store family this implementation belongs to (used by the
    /// self-describing codec and [`crate::SketchConfig`] reconstruction).
    fn store_kind(&self) -> StoreKind;

    /// Add `count` occurrences of bucket `index`.
    fn add_n(&mut self, index: i32, count: u64);

    /// Add a single occurrence of bucket `index`.
    #[inline]
    fn add(&mut self, index: i32) {
        self.add_n(index, 1);
    }

    /// Add one occurrence of every bucket index in `indices`.
    ///
    /// The effect on the stored bins is identical — bucket for bucket —
    /// to calling [`Store::add`] on each element in order; implementations
    /// override this to amortize growth and collapse work over the whole
    /// batch (the backbone of the sketch's `add_slice` fast path).
    fn add_indices(&mut self, indices: &[i32]) {
        for &index in indices {
            self.add(index);
        }
    }

    /// Add `count` occurrences of `index` for every `(index, count)` pair.
    ///
    /// Equivalent to calling [`Store::add_n`] on each pair in order.
    /// Bulk-capable stores override this to pre-size for the batch's whole
    /// index span (used by merges and codec loads).
    fn add_bins(&mut self, bins: &[(i32, u64)]) {
        for &(index, count) in bins {
            self.add_n(index, count);
        }
    }

    /// Remove `count` occurrences of bucket `index`. Returns `false`
    /// (leaving the store unchanged) if the bucket holds fewer than `count`.
    fn remove_n(&mut self, index: i32, count: u64) -> bool;

    /// Total number of stored occurrences.
    fn total_count(&self) -> u64;

    /// Whether the store holds no occurrences.
    fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Smallest non-empty bucket index.
    fn min_index(&self) -> Option<i32>;

    /// Largest non-empty bucket index.
    fn max_index(&self) -> Option<i32>;

    /// Number of non-empty buckets ("bins" in the paper's Figure 7).
    fn num_bins(&self) -> usize;

    /// Non-empty `(index, count)` pairs in ascending index order.
    fn bins_ascending(&self) -> Vec<(i32, u64)>;

    /// Algorithm 2's cumulative walk: the smallest index whose cumulative
    /// count (ascending) exceeds `rank`. Falls back to the maximal index
    /// when floating-point rounding pushes `rank` past the total.
    fn key_at_rank(&self, rank: f64) -> Option<i32> {
        let mut cum = 0u64;
        let mut last = None;
        for (idx, count) in self.bins_ascending() {
            cum += count;
            last = Some(idx);
            if cum as f64 > rank {
                return Some(idx);
            }
        }
        last
    }

    /// Mirror walk from the largest index downward, used by the
    /// negative-value store (most negative value = largest |x| index).
    fn key_at_rank_descending(&self, rank: f64) -> Option<i32> {
        let mut cum = 0u64;
        let mut last = None;
        for (idx, count) in self.bins_ascending().into_iter().rev() {
            cum += count;
            last = Some(idx);
            if cum as f64 > rank {
                return Some(idx);
            }
        }
        last
    }

    /// Merge another store of the same type into this one (summing bucket
    /// counts; bounded stores re-collapse as needed — Algorithm 4).
    fn merge_from(&mut self, other: &Self);

    /// Remove all occurrences, keeping allocated capacity where sensible.
    fn clear(&mut self);

    /// Whether any collapse has ever occurred (meaning the lowest — or
    /// highest — quantiles may no longer satisfy the α guarantee; see
    /// Proposition 4).
    fn has_collapsed(&self) -> bool {
        false
    }

    /// The configured bucket limit, if this store is bounded.
    fn bin_limit(&self) -> Option<usize> {
        None
    }

    /// Structural memory footprint in bytes (capacity-aware).
    fn memory_bytes(&self) -> usize;
}

/// Shared test-suite for store implementations.
#[cfg(test)]
pub(crate) mod storetests {
    use super::*;

    /// Basic single-bucket and multi-bucket behaviour every store must have
    /// (run only within each store's non-collapsing regime).
    pub(crate) fn run_basic_suite<S: Store>(mut fresh: impl FnMut() -> S) {
        // Empty store.
        let s = fresh();
        assert!(s.is_empty());
        assert_eq!(s.total_count(), 0);
        assert_eq!(s.min_index(), None);
        assert_eq!(s.max_index(), None);
        assert_eq!(s.num_bins(), 0);
        assert_eq!(s.key_at_rank(0.0), None);
        assert_eq!(s.key_at_rank_descending(0.0), None);
        assert!(s.bins_ascending().is_empty());

        // Single bucket.
        let mut s = fresh();
        s.add(42);
        assert_eq!(s.total_count(), 1);
        assert_eq!(s.min_index(), Some(42));
        assert_eq!(s.max_index(), Some(42));
        assert_eq!(s.num_bins(), 1);
        assert_eq!(s.key_at_rank(0.0), Some(42));

        // Weighted adds and ordering.
        let mut s = fresh();
        s.add_n(5, 3);
        s.add_n(-7, 2);
        s.add_n(100, 1);
        assert_eq!(s.total_count(), 6);
        assert_eq!(s.min_index(), Some(-7));
        assert_eq!(s.max_index(), Some(100));
        assert_eq!(s.bins_ascending(), vec![(-7, 2), (5, 3), (100, 1)]);

        // Rank walk: cumulative counts are 2, 5, 6.
        assert_eq!(s.key_at_rank(0.0), Some(-7));
        assert_eq!(s.key_at_rank(1.9), Some(-7));
        assert_eq!(s.key_at_rank(2.0), Some(5));
        assert_eq!(s.key_at_rank(4.9), Some(5));
        assert_eq!(s.key_at_rank(5.0), Some(100));
        // Past-the-end rank falls back to max index.
        assert_eq!(s.key_at_rank(6.5), Some(100));

        // Descending walk: cumulative 1, 4, 6 from the top.
        assert_eq!(s.key_at_rank_descending(0.0), Some(100));
        assert_eq!(s.key_at_rank_descending(1.0), Some(5));
        assert_eq!(s.key_at_rank_descending(4.0), Some(-7));
        assert_eq!(s.key_at_rank_descending(7.0), Some(-7));

        // Removal.
        let mut s = fresh();
        s.add_n(3, 5);
        assert!(s.remove_n(3, 2));
        assert_eq!(s.total_count(), 3);
        assert!(!s.remove_n(3, 10), "removing more than present must fail");
        assert_eq!(s.total_count(), 3, "failed removal must not mutate");
        assert!(
            !s.remove_n(99, 1),
            "removing from an absent bucket must fail"
        );
        assert!(s.remove_n(3, 3));
        assert!(s.is_empty());

        // Merge.
        let mut a = fresh();
        let mut b = fresh();
        a.add_n(1, 2);
        a.add_n(10, 1);
        b.add_n(10, 4);
        b.add_n(-3, 1);
        a.merge_from(&b);
        assert_eq!(a.total_count(), 8);
        assert_eq!(a.bins_ascending(), vec![(-3, 1), (1, 2), (10, 5)]);

        // Merging an empty store is a no-op.
        let empty = fresh();
        a.merge_from(&empty);
        assert_eq!(a.total_count(), 8);

        // Clear.
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.bins_ascending(), vec![]);

        // add zero count is a no-op.
        let mut s = fresh();
        s.add_n(7, 0);
        assert!(s.is_empty());

        // Memory accounting reports something plausible.
        let mut s = fresh();
        s.add(0);
        assert!(s.memory_bytes() >= std::mem::size_of::<S>());
    }

    /// Bulk insertion must equal scalar insertion, bucket-for-bucket —
    /// including in collapsing regimes, where both paths must agree on the
    /// folded layout and the `has_collapsed` flag.
    pub(crate) fn run_bulk_equivalence<S: Store>(mut fresh: impl FnMut() -> S, stream: &[i32]) {
        for split in [0, stream.len() / 3, stream.len()] {
            let (warm, batch) = stream.split_at(split);
            let mut scalar = fresh();
            let mut bulk = fresh();
            for &i in warm {
                scalar.add(i);
                bulk.add(i);
            }
            for &i in batch {
                scalar.add(i);
            }
            bulk.add_indices(batch);
            assert_eq!(
                bulk.bins_ascending(),
                scalar.bins_ascending(),
                "add_indices diverged from scalar adds (warm prefix {split})"
            );
            assert_eq!(bulk.total_count(), scalar.total_count());
            assert_eq!(bulk.min_index(), scalar.min_index());
            assert_eq!(bulk.max_index(), scalar.max_index());
            assert_eq!(bulk.has_collapsed(), scalar.has_collapsed());

            // add_bins over the run-length encoding of the batch must also
            // agree (insertion order of distinct bins may differ from the
            // stream, which collapse semantics must tolerate).
            let mut rle = fresh();
            for &i in warm {
                rle.add(i);
            }
            let mut sorted = batch.to_vec();
            sorted.sort_unstable();
            let mut bins: Vec<(i32, u64)> = Vec::new();
            for &i in &sorted {
                match bins.last_mut() {
                    Some((idx, c)) if *idx == i => *c += 1,
                    _ => bins.push((i, 1)),
                }
            }
            rle.add_bins(&bins);
            assert_eq!(
                rle.bins_ascending(),
                scalar.bins_ascending(),
                "add_bins diverged from scalar adds (warm prefix {split})"
            );
            assert_eq!(rle.total_count(), scalar.total_count());
        }
    }

    /// Merging must equal inserting the union, bucket-for-bucket.
    pub(crate) fn run_merge_equivalence<S: Store>(
        mut fresh: impl FnMut() -> S,
        stream_a: &[i32],
        stream_b: &[i32],
    ) {
        let mut sa = fresh();
        let mut sb = fresh();
        let mut su = fresh();
        for &i in stream_a {
            sa.add(i);
            su.add(i);
        }
        for &i in stream_b {
            sb.add(i);
            su.add(i);
        }
        sa.merge_from(&sb);
        assert_eq!(
            sa.bins_ascending(),
            su.bins_ascending(),
            "merge(A, B) must equal sketch(A ∪ B) exactly"
        );
        assert_eq!(sa.total_count(), su.total_count());
    }
}
