//! Counter-cell abstraction for the dense stores.
//!
//! [`DenseStore`](super::DenseStore) and the collapsing dense stores are
//! generic over the type that holds one bucket's count. Two instantiations
//! exist today:
//!
//! * `u64` — the plain single-writer counter every sequential sketch uses.
//!   All [`Cell`] operations compile to ordinary integer arithmetic, so the
//!   generic stores are bit-identical (and instruction-identical) to the
//!   pre-generic code.
//! * [`AtomicU64`] — the shared-writer counter behind the lock-free ingest
//!   plane ([`super::AtomicDenseStore`]). The exclusive-access [`Cell`]
//!   operations use `get_mut`/`into_inner` (no atomic instructions), while
//!   the [`SharedCell`] extension exposes the `&self` RMW operations
//!   (`fetch_add`, `take`) that concurrent writers and folds need.
//!
//! The same seam is what a weighted/`f64`-count store will plug into later:
//! only the cell type changes, not the store geometry (growth, collapse,
//! live-window tracking).

use std::sync::atomic::{AtomicU64, Ordering};

/// One bucket counter, accessed exclusively (`&mut self` writes).
///
/// The trait deliberately mirrors what the dense-store geometry needs and
/// nothing more: construct, read, accumulate, overwrite. Implementations
/// must behave like a plain `u64` under exclusive access.
pub trait Cell: Default + Sized {
    /// A cell holding `value`.
    fn new(value: u64) -> Self;

    /// The current count. For atomic cells this is a `Relaxed` load, so it
    /// is safe (but possibly momentarily stale) under concurrent writers.
    fn get(&self) -> u64;

    /// Add `n` to the count (exclusive access).
    fn add_assign(&mut self, n: u64);

    /// Overwrite the count (exclusive access).
    fn set(&mut self, value: u64);
}

impl Cell for u64 {
    #[inline(always)]
    fn new(value: u64) -> Self {
        value
    }

    #[inline(always)]
    fn get(&self) -> u64 {
        *self
    }

    #[inline(always)]
    fn add_assign(&mut self, n: u64) {
        *self += n;
    }

    #[inline(always)]
    fn set(&mut self, value: u64) {
        *self = value;
    }
}

impl Cell for AtomicU64 {
    #[inline(always)]
    fn new(value: u64) -> Self {
        AtomicU64::new(value)
    }

    #[inline(always)]
    fn get(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn add_assign(&mut self, n: u64) {
        // Exclusive access: a plain read-modify-write, no atomic RMW.
        let v = *self.get_mut();
        *self.get_mut() = v + n;
    }

    #[inline(always)]
    fn set(&mut self, value: u64) {
        *self.get_mut() = value;
    }
}

/// A [`Cell`] that additionally supports shared-reference (`&self`)
/// mutation, the requirement of the lock-free write plane.
///
/// # Memory-ordering contract
///
/// Both operations are `Relaxed`: bucket counters carry no cross-thread
/// control flow of their own. Publication of the *arrays that hold them* is
/// what carries `Acquire`/`Release` (see [`super::AtomicDenseStore`]), and
/// reads that need exact totals quiesce the writers first (thread join or
/// an external barrier), which supplies the happens-before edge.
pub trait SharedCell: Cell + Sync {
    /// Atomically add `n` through a shared reference.
    fn fetch_add(&self, n: u64);

    /// Atomically take the count, leaving zero — the fold/restripe
    /// primitive: moving a count between cells is `take` + `fetch_add`, so
    /// a concurrent reader can miss a moving count only while the fold's
    /// seqlock epoch is odd (and then retries).
    fn take(&self) -> u64;
}

impl SharedCell for AtomicU64 {
    #[inline(always)]
    fn fetch_add(&self, n: u64) {
        AtomicU64::fetch_add(self, n, Ordering::Relaxed);
    }

    #[inline(always)]
    fn take(&self) -> u64 {
        self.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_cell<C: Cell>() {
        let mut c = C::new(7);
        assert_eq!(c.get(), 7);
        c.add_assign(5);
        assert_eq!(c.get(), 12);
        c.set(3);
        assert_eq!(c.get(), 3);
        assert_eq!(C::default().get(), 0);
    }

    #[test]
    fn u64_cell_behaves_like_u64() {
        exercise_cell::<u64>();
    }

    #[test]
    fn atomic_cell_matches_u64_semantics() {
        exercise_cell::<AtomicU64>();
        let c = AtomicU64::new(0);
        SharedCell::fetch_add(&c, 41);
        SharedCell::fetch_add(&c, 1);
        assert_eq!(Cell::get(&c), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(Cell::get(&c), 0);
    }
}
