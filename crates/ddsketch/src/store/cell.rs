//! Counter-cell abstraction for the dense stores.
//!
//! [`DenseStore`](super::DenseStore) and the collapsing dense stores are
//! generic over the type that holds one bucket's count. Four
//! instantiations exist, the cross product of count domain ([`Count`]:
//! `u64` or `f64`) and access mode (exclusive or shared):
//!
//! * `u64` — the plain single-writer counter every sequential sketch uses.
//!   All [`Cell`] operations compile to ordinary integer arithmetic, so the
//!   generic stores are bit-identical (and instruction-identical) to the
//!   pre-generic code.
//! * `f64` — the single-writer weighted counter: same geometry, fractional
//!   multiplicities (pre-aggregated submissions, ingest-time decay).
//! * [`AtomicU64`] — the shared-writer counter behind the lock-free ingest
//!   plane ([`super::AtomicDenseStore`]). The exclusive-access [`Cell`]
//!   operations use `get_mut`/`into_inner` (no atomic instructions), while
//!   the [`SharedCell`] extension exposes the `&self` RMW operations
//!   (`fetch_add`, `take`) that concurrent writers and folds need.
//! * [`AtomicF64`] — the shared-writer weighted counter: an `AtomicU64`
//!   holding `f64` bits, with `fetch_add` as a `to_bits`/`from_bits`
//!   compare-exchange loop (contention is per *bucket*, so the loop almost
//!   always succeeds first try).
//!
//! Which count domain a cell carries is its [`Cell::Value`] associated
//! type; the [`PlainCell`] marker identifies the cells that *are* their own
//! value (`u64`, `f64`) — the ones the sequential `Store` implementations
//! are generic over.

use std::sync::atomic::{AtomicU64, Ordering};

use super::count::Count;

/// One bucket counter, accessed exclusively (`&mut self` writes).
///
/// The trait deliberately mirrors what the dense-store geometry needs and
/// nothing more: construct, read, accumulate, overwrite. Implementations
/// must behave like a plain [`Cell::Value`] under exclusive access.
pub trait Cell: Default + Sized {
    /// The count domain this cell stores.
    type Value: Count;

    /// A cell holding `value`.
    fn new(value: Self::Value) -> Self;

    /// The current count. For atomic cells this is a `Relaxed` load, so it
    /// is safe (but possibly momentarily stale) under concurrent writers.
    fn get(&self) -> Self::Value;

    /// Add `n` to the count (exclusive access).
    fn add_assign(&mut self, n: Self::Value);

    /// Overwrite the count (exclusive access).
    fn set(&mut self, value: Self::Value);
}

/// Marker for cells that are their own count value (`u64`, `f64`): the
/// single-writer cells the sequential `Store` implementations accept, so
/// store arithmetic can treat bucket slots as plain numbers.
pub trait PlainCell: Cell<Value = Self> + Count {}

impl Cell for u64 {
    type Value = u64;

    #[inline(always)]
    fn new(value: u64) -> Self {
        value
    }

    #[inline(always)]
    fn get(&self) -> u64 {
        *self
    }

    #[inline(always)]
    fn add_assign(&mut self, n: u64) {
        *self += n;
    }

    #[inline(always)]
    fn set(&mut self, value: u64) {
        *self = value;
    }
}

impl PlainCell for u64 {}

impl Cell for f64 {
    type Value = f64;

    #[inline(always)]
    fn new(value: f64) -> Self {
        value
    }

    #[inline(always)]
    fn get(&self) -> f64 {
        *self
    }

    #[inline(always)]
    fn add_assign(&mut self, n: f64) {
        *self += n;
    }

    #[inline(always)]
    fn set(&mut self, value: f64) {
        *self = value;
    }
}

impl PlainCell for f64 {}

impl Cell for AtomicU64 {
    type Value = u64;

    #[inline(always)]
    fn new(value: u64) -> Self {
        AtomicU64::new(value)
    }

    #[inline(always)]
    fn get(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn add_assign(&mut self, n: u64) {
        // Exclusive access: a plain read-modify-write, no atomic RMW.
        let v = *self.get_mut();
        *self.get_mut() = v + n;
    }

    #[inline(always)]
    fn set(&mut self, value: u64) {
        *self.get_mut() = value;
    }
}

/// A shared-writer `f64` counter: `f64` bits in an `AtomicU64`.
///
/// Loads/stores transcode through `to_bits`/`from_bits` (free — same
/// register width); the shared-reference add is a compare-exchange loop.
/// Zero is all-bits-zero in both domains, so zero-initialized storage is
/// an empty bucket exactly as it is for the integer cells.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl Cell for AtomicF64 {
    type Value = f64;

    #[inline(always)]
    fn new(value: f64) -> Self {
        AtomicF64(AtomicU64::new(value.to_bits()))
    }

    #[inline(always)]
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn add_assign(&mut self, n: f64) {
        let v = f64::from_bits(*self.0.get_mut());
        *self.0.get_mut() = (v + n).to_bits();
    }

    #[inline(always)]
    fn set(&mut self, value: f64) {
        *self.0.get_mut() = value.to_bits();
    }
}

/// A [`Cell`] that additionally supports shared-reference (`&self`)
/// mutation, the requirement of the lock-free write plane.
///
/// # Memory-ordering contract
///
/// Both operations are `Relaxed`: bucket counters carry no cross-thread
/// control flow of their own. Publication of the *arrays that hold them* is
/// what carries `Acquire`/`Release` (see [`super::AtomicDenseStore`]), and
/// reads that need exact totals quiesce the writers first (thread join or
/// an external barrier), which supplies the happens-before edge.
pub trait SharedCell: Cell + Sync {
    /// Atomically add `n` through a shared reference.
    fn fetch_add(&self, n: Self::Value);

    /// Atomically take the count, leaving zero — the fold/restripe
    /// primitive: moving a count between cells is `take` + `fetch_add`, so
    /// a concurrent reader can miss a moving count only while the fold's
    /// seqlock epoch is odd (and then retries).
    fn take(&self) -> Self::Value;
}

impl SharedCell for AtomicU64 {
    #[inline(always)]
    fn fetch_add(&self, n: u64) {
        AtomicU64::fetch_add(self, n, Ordering::Relaxed);
    }

    #[inline(always)]
    fn take(&self) -> u64 {
        self.swap(0, Ordering::Relaxed)
    }
}

impl SharedCell for AtomicF64 {
    #[inline]
    fn fetch_add(&self, n: f64) {
        // Per-bucket CAS loop: contention exists only between writers
        // hitting the *same bucket* in the same instant, so the loop
        // nearly always succeeds on the first iteration. `Relaxed` is
        // sufficient for the same reason it is for the integer cell.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + n).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    #[inline(always)]
    fn take(&self) -> f64 {
        f64::from_bits(self.0.swap(0, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_cell<C: Cell>() {
        let mut c = C::new(C::Value::from_u64(7));
        assert_eq!(c.get(), C::Value::from_u64(7));
        c.add_assign(C::Value::from_u64(5));
        assert_eq!(c.get(), C::Value::from_u64(12));
        c.set(C::Value::from_u64(3));
        assert_eq!(c.get(), C::Value::from_u64(3));
        assert_eq!(C::default().get(), C::Value::ZERO);
    }

    #[test]
    fn u64_cell_behaves_like_u64() {
        exercise_cell::<u64>();
    }

    #[test]
    fn f64_cell_behaves_like_f64() {
        exercise_cell::<f64>();
        let mut c = <f64 as Cell>::new(0.5);
        Cell::add_assign(&mut c, 0.25);
        assert_eq!(Cell::get(&c), 0.75);
    }

    #[test]
    fn atomic_cell_matches_u64_semantics() {
        exercise_cell::<AtomicU64>();
        let c = AtomicU64::new(0);
        SharedCell::fetch_add(&c, 41);
        SharedCell::fetch_add(&c, 1);
        assert_eq!(Cell::get(&c), 42);
        assert_eq!(c.take(), 42);
        assert_eq!(Cell::get(&c), 0);
    }

    #[test]
    fn atomic_f64_cell_matches_f64_semantics() {
        exercise_cell::<AtomicF64>();
        let c = AtomicF64::new(0.0);
        SharedCell::fetch_add(&c, 1.5);
        SharedCell::fetch_add(&c, 0.25);
        assert_eq!(Cell::get(&c), 1.75);
        assert_eq!(SharedCell::take(&c), 1.75);
        assert_eq!(Cell::get(&c), 0.0);
    }

    #[test]
    fn atomic_f64_concurrent_adds_sum_exactly() {
        // Powers of two so f64 addition is exact regardless of order.
        let c = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        SharedCell::fetch_add(c, 0.25);
                    }
                });
            }
        });
        assert_eq!(Cell::get(&c), 8.0 * 1000.0 * 0.25);
    }
}
