//! Unbounded contiguous store, generic over the counter [`Cell`] type.

use super::cell::{Cell, PlainCell};
use super::count::Count;
use super::{BinIter, Store, StoreKind};

/// Growth granularity: reallocations are rounded to multiples of this many
/// buckets, and growth at least doubles the array, so a monotone stream of
/// `n` distinct indices costs O(n) amortized bucket copies.
pub(crate) const CHUNK: i64 = 128;

/// Round `v` (positive) up to the next multiple of `CHUNK`.
#[inline]
pub(crate) fn round_up_chunk(v: i64) -> i64 {
    (v + CHUNK - 1) / CHUNK * CHUNK
}

/// Contiguous array of bucket counters covering `[offset, offset + len)`.
///
/// The fastest store for insertion (a bounds check and an increment once
/// the range is warm) at the cost of holding a counter for every bucket in
/// the index span, empty or not — the paper's "preallocate the sketch
/// buckets and keep all the buckets between the minimum and maximum"
/// option. Grows without bound; pair with
/// [`super::CollapsingLowestDenseStore`] when a size cap is needed.
///
/// The counter type is pluggable: `DenseStore` (= `DenseStore<u64>`) is
/// the plain sequential integer store, `DenseStore<f64>` is its weighted
/// mirror (every [`PlainCell`] instantiation implements [`Store`] over the
/// matching count domain), and `DenseStore<AtomicU64>` is the shared
/// counter table the lock-free [`super::AtomicDenseStore`] chains
/// together. Geometry (growth, offsets, live-window tracking) is shared;
/// only the cell type changes.
#[derive(Debug, Clone, Default)]
pub struct DenseStore<C: Cell = u64> {
    counts: Vec<C>,
    /// Bucket index of `counts[0]`. i64 so index arithmetic near the i32
    /// extremes cannot overflow.
    offset: i64,
    /// Valid only when `total > 0`.
    min_idx: i64,
    max_idx: i64,
    total: C::Value,
}

impl DenseStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<C: Cell> DenseStore<C> {
    /// An empty store pre-grown to cover at least the inclusive index span
    /// `[lo, hi]` (rounded up to the growth chunk). Used by the atomic
    /// ingest plane, which sizes its counter tables up front.
    pub(crate) fn with_span(lo: i64, hi: i64) -> Self {
        let mut s = Self::default();
        s.grow_range(lo, hi);
        s
    }

    #[inline]
    fn pos(&self, index: i64) -> usize {
        debug_assert!(index >= self.offset);
        (index - self.offset) as usize
    }

    #[inline]
    fn in_range(&self, index: i64) -> bool {
        index >= self.offset && index < self.offset + self.counts.len() as i64
    }

    /// Lowest index covered by the allocation (not the live window).
    #[inline]
    pub(crate) fn span_lo(&self) -> i64 {
        self.offset
    }

    /// One past the highest index covered by the allocation.
    #[inline]
    pub(crate) fn span_hi(&self) -> i64 {
        self.offset + self.counts.len() as i64
    }

    /// Shared access to the cell for `index`, if the allocation covers it.
    /// This is the lock-free write plane's whole fast path: bounds check,
    /// then `fetch_add` on the returned cell.
    #[inline]
    pub(crate) fn cell(&self, index: i64) -> Option<&C> {
        if self.in_range(index) {
            Some(&self.counts[self.pos(index)])
        } else {
            None
        }
    }

    /// Every allocated cell, in index order starting at
    /// [`DenseStore::span_lo`].
    #[inline]
    pub(crate) fn cells(&self) -> &[C] {
        &self.counts
    }

    /// A zeroed cell buffer (generic stand-in for `vec![0; len]`).
    fn zeroed(len: usize) -> Vec<C> {
        std::iter::repeat_with(C::default).take(len).collect()
    }

    /// Reallocate so the array covers `index` as well as the current live
    /// window, doubling to keep growth amortized.
    fn grow(&mut self, index: i64) {
        self.grow_range(index, index);
    }

    /// Reallocate **once** so the array covers the whole inclusive span
    /// `[lo, hi]` as well as the current live window — the workhorse behind
    /// bulk insertion and single-copy merges.
    fn grow_range(&mut self, lo: i64, hi: i64) {
        debug_assert!(lo <= hi);
        if self.counts.is_empty() {
            let span = hi - lo + 1;
            let len = round_up_chunk(span.max(CHUNK));
            // Center the requested span in the fresh buffer.
            self.offset = lo - (len - span) / 2;
            self.counts = Self::zeroed(len as usize);
            return;
        }
        let old_lo = self.offset;
        let old_hi = self.offset + self.counts.len() as i64; // exclusive
        let new_lo = old_lo.min(lo);
        let new_hi = old_hi.max(hi + 1);
        let needed = new_hi - new_lo;
        if needed == old_hi - old_lo {
            return; // already covered
        }
        let target_len = round_up_chunk(needed.max(self.counts.len() as i64 * 2).max(1));
        let extra = target_len - needed;
        // Put the slack on the side that is growing (split when both are).
        let below = if lo < old_lo && hi + 1 > old_hi {
            extra / 2
        } else if lo < old_lo {
            extra
        } else {
            0
        };
        let final_lo = new_lo - below;
        let mut new_counts = Self::zeroed(target_len as usize);
        let shift = (old_lo - final_lo) as usize;
        for (dst, src) in new_counts[shift..shift + self.counts.len()]
            .iter_mut()
            .zip(self.counts.iter_mut())
        {
            *dst = std::mem::take(src);
        }
        self.counts = new_counts;
        self.offset = final_lo;
    }

    /// The live (possibly zero-padded) slice covering `[min_idx, max_idx]`;
    /// valid only when `total > 0`.
    #[inline]
    fn live(&self) -> &[C] {
        let lo = self.pos(self.min_idx);
        let hi = self.pos(self.max_idx);
        &self.counts[lo..=hi]
    }

    /// Rescan for the new minimum index after a bucket was emptied.
    fn rescan_min(&mut self) {
        let first = self
            .live()
            .iter()
            .position(|c| c.get() > C::Value::ZERO)
            .expect("total > 0 implies a non-empty bucket");
        self.min_idx += first as i64;
    }

    fn rescan_max(&mut self) {
        let last = self
            .live()
            .iter()
            .rposition(|c| c.get() > C::Value::ZERO)
            .expect("total > 0 implies a non-empty bucket");
        self.max_idx = self.min_idx + last as i64;
    }
}

impl<C: PlainCell> Store for DenseStore<C> {
    type Count = C;

    fn store_kind(&self) -> StoreKind {
        StoreKind::Unbounded
    }

    fn add_n(&mut self, index: i32, count: C) {
        if count <= C::ZERO {
            return;
        }
        let index = index as i64;
        if !self.in_range(index) {
            self.grow(index);
        }
        let pos = self.pos(index);
        self.counts[pos] += count;
        if self.total == C::ZERO {
            self.min_idx = index;
            self.max_idx = index;
        } else {
            self.min_idx = self.min_idx.min(index);
            self.max_idx = self.max_idx.max(index);
        }
        self.total += count;
    }

    fn add_indices(&mut self, indices: &[i32]) {
        let Some((&first, rest)) = indices.split_first() else {
            return;
        };
        let (mut lo, mut hi) = (first, first);
        for &i in rest {
            lo = lo.min(i);
            hi = hi.max(i);
        }
        let (lo, hi) = (lo as i64, hi as i64);
        if !self.in_range(lo) || !self.in_range(hi) {
            self.grow_range(lo, hi);
        }
        let offset = self.offset;
        for &i in indices {
            let pos = (i as i64 - offset) as usize;
            // SAFETY: `grow_range(lo, hi)` covers every index in the batch,
            // and `lo <= i <= hi` by the min/max scan above.
            unsafe {
                *self.counts.get_unchecked_mut(pos) += C::ONE;
            }
        }
        if self.total == C::ZERO {
            self.min_idx = lo;
            self.max_idx = hi;
        } else {
            self.min_idx = self.min_idx.min(lo);
            self.max_idx = self.max_idx.max(hi);
        }
        self.total += C::from_u64(indices.len() as u64);
    }

    fn add_bins(&mut self, bins: &[(i32, C)]) {
        let mut span: Option<(i64, i64)> = None;
        let mut added = C::ZERO;
        for &(i, c) in bins {
            if c > C::ZERO {
                let i = i as i64;
                span = Some(match span {
                    None => (i, i),
                    Some((lo, hi)) => (lo.min(i), hi.max(i)),
                });
                added += c;
            }
        }
        let Some((lo, hi)) = span else { return };
        if !self.in_range(lo) || !self.in_range(hi) {
            self.grow_range(lo, hi);
        }
        for &(i, c) in bins {
            if c > C::ZERO {
                let pos = self.pos(i as i64);
                self.counts[pos] += c;
            }
        }
        if self.total == C::ZERO {
            self.min_idx = lo;
            self.max_idx = hi;
        } else {
            self.min_idx = self.min_idx.min(lo);
            self.max_idx = self.max_idx.max(hi);
        }
        self.total += added;
    }

    fn remove_n(&mut self, index: i32, count: C) -> bool {
        if count <= C::ZERO {
            return true;
        }
        let index = index as i64;
        if self.total == C::ZERO || !self.in_range(index) {
            return false;
        }
        let pos = self.pos(index);
        if self.counts[pos] < count {
            return false;
        }
        self.counts[pos] -= count;
        self.total -= count;
        if self.total == C::ZERO {
            return true;
        }
        if self.counts[pos] == C::ZERO {
            if index == self.min_idx {
                self.rescan_min();
            }
            if index == self.max_idx {
                self.rescan_max();
            }
        }
        true
    }

    fn remove_up_to(&mut self, index: i32, count: C) -> C {
        if count <= C::ZERO || self.total == C::ZERO {
            return C::ZERO;
        }
        let idx = index as i64;
        if !self.in_range(idx) {
            return C::ZERO;
        }
        let present = self.counts[self.pos(idx)];
        let take = if count < present { count } else { present };
        if take > C::ZERO && self.remove_n(index, take) {
            take
        } else {
            C::ZERO
        }
    }

    fn scale_counts(&mut self, factor: f64) {
        if self.total == C::ZERO {
            return;
        }
        let (lo, hi) = (self.pos(self.min_idx), self.pos(self.max_idx));
        let mut total = C::ZERO;
        for c in &mut self.counts[lo..=hi] {
            let scaled = c.get().scale(factor);
            c.set(scaled);
            total += scaled;
        }
        self.total = total;
        if total == C::ZERO {
            return;
        }
        // Rounding (u64 plane) may have emptied the extremes.
        self.rescan_min();
        self.rescan_max();
    }

    #[inline]
    fn total_count(&self) -> C {
        self.total
    }

    fn min_index(&self) -> Option<i32> {
        (self.total > C::ZERO).then_some(self.min_idx as i32)
    }

    fn max_index(&self) -> Option<i32> {
        (self.total > C::ZERO).then_some(self.max_idx as i32)
    }

    fn bin_iter(&self) -> BinIter<'_, C> {
        if self.total == C::ZERO {
            return BinIter::empty();
        }
        BinIter::Dense {
            counts: self.live(),
            first: self.min_idx,
        }
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge_many(&[other]);
    }

    fn merge_many(&mut self, others: &[&Self]) {
        // Make room for the whole union's window with at most one
        // reallocation (merging k stores pairwise used to pay up to k
        // grows), then add each window as plain slices — vectorizable.
        let mut span: Option<(i64, i64)> = None;
        for other in others {
            if other.total > C::ZERO {
                span = Some(match span {
                    None => (other.min_idx, other.max_idx),
                    Some((lo, hi)) => (lo.min(other.min_idx), hi.max(other.max_idx)),
                });
            }
        }
        let Some((lo, hi)) = span else { return };
        if !self.in_range(lo) || !self.in_range(hi) {
            self.grow_range(lo, hi);
        }
        for other in others {
            if other.total == C::ZERO {
                continue;
            }
            let dst = self.pos(other.min_idx);
            let len = (other.max_idx - other.min_idx + 1) as usize;
            for (d, s) in self.counts[dst..dst + len].iter_mut().zip(other.live()) {
                *d += *s;
            }
            if self.total == C::ZERO {
                self.min_idx = other.min_idx;
                self.max_idx = other.max_idx;
            } else {
                self.min_idx = self.min_idx.min(other.min_idx);
                self.max_idx = self.max_idx.max(other.max_idx);
            }
            self.total += other.total;
        }
    }

    fn clear(&mut self) {
        self.counts.fill(C::ZERO);
        self.total = C::ZERO;
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<C>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::storetests;
    use proptest::prelude::*;

    #[test]
    fn basic_suite() {
        storetests::run_basic_suite(DenseStore::new);
    }

    #[test]
    fn merge_equivalence() {
        storetests::run_merge_equivalence(
            DenseStore::new,
            &[0, 5, 5, -100, 2000, 3],
            &[5, -100, -100, 77],
        );
    }

    #[test]
    fn bin_iter_suite() {
        storetests::run_bin_iter_suite(DenseStore::new, &[0, 5, 5, -100, 2000, 3]);
    }

    #[test]
    fn merge_many_equivalence() {
        storetests::run_merge_many_equivalence(
            DenseStore::new,
            &[7, -7],
            &[&[0, 5, 5], &[], &[-100, 2000], &[3, 3, 3]],
        );
    }

    #[test]
    fn weighted_mirror_suite() {
        storetests::run_weighted_mirror_suite(
            DenseStore::<u64>::default,
            DenseStore::<f64>::default,
            &[(0, 3), (5, 1), (-100, 7), (2000, 2), (5, 4)],
        );
    }

    #[test]
    fn grows_downward_and_upward() {
        let mut s = DenseStore::new();
        s.add(0);
        s.add(10_000);
        s.add(-10_000);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.min_index(), Some(-10_000));
        assert_eq!(s.max_index(), Some(10_000));
        assert_eq!(s.bins_ascending(), vec![(-10_000, 1), (0, 1), (10_000, 1)]);
    }

    #[test]
    fn handles_extreme_indices_without_overflow() {
        let mut s = DenseStore::new();
        // The mappings guarantee two buckets of headroom from the i32
        // extremes; the store must survive those.
        s.add(i32::MAX - 2);
        assert_eq!(s.max_index(), Some(i32::MAX - 2));
        let mut s = DenseStore::new();
        s.add(i32::MIN + 2);
        assert_eq!(s.min_index(), Some(i32::MIN + 2));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseStore::new();
        for i in 0..1000 {
            s.add(i);
        }
        let bytes = s.memory_bytes();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(
            s.memory_bytes(),
            bytes,
            "clear should retain the allocation"
        );
        // Store must be reusable after clear.
        s.add(5);
        assert_eq!(s.bins_ascending(), vec![(5, 1)]);
    }

    #[test]
    fn removal_rescans_extremes() {
        let mut s = DenseStore::new();
        s.add(1);
        s.add(5);
        s.add(9);
        assert!(s.remove_n(1, 1));
        assert_eq!(s.min_index(), Some(5));
        assert!(s.remove_n(9, 1));
        assert_eq!(s.max_index(), Some(5));
    }

    #[test]
    fn memory_grows_linearly_with_span() {
        let mut narrow = DenseStore::new();
        let mut wide = DenseStore::new();
        for i in 0..100 {
            narrow.add(i);
            wide.add(i * 100);
        }
        assert!(wide.memory_bytes() > narrow.memory_bytes() * 10);
    }

    proptest! {
        #[test]
        fn prop_matches_btreemap_model(ops in proptest::collection::vec((-5000i32..5000, 1u64..20), 1..200)) {
            let mut s = DenseStore::new();
            let mut model = std::collections::BTreeMap::<i32, u64>::new();
            for (idx, c) in ops {
                s.add_n(idx, c);
                *model.entry(idx).or_default() += c;
            }
            let bins: Vec<(i32, u64)> = model.into_iter().collect();
            prop_assert_eq!(s.bins_ascending(), bins);
        }

        #[test]
        fn prop_merge_equals_union(a in proptest::collection::vec(-3000i32..3000, 0..100),
                                   b in proptest::collection::vec(-3000i32..3000, 0..100)) {
            storetests::run_merge_equivalence(DenseStore::new, &a, &b);
        }

        #[test]
        fn prop_bulk_matches_scalar(stream in proptest::collection::vec(-3000i32..3000, 0..200)) {
            storetests::run_bulk_equivalence(DenseStore::new, &stream);
        }

        #[test]
        fn prop_merge_many_matches_sequential(
            a in proptest::collection::vec(-3000i32..3000, 0..80),
            b in proptest::collection::vec(-3000i32..3000, 0..80),
            c in proptest::collection::vec(-3000i32..3000, 0..80),
            warm in proptest::collection::vec(-3000i32..3000, 0..40),
        ) {
            storetests::run_merge_many_equivalence(DenseStore::new, &warm, &[&a, &b, &c]);
        }
    }
}
