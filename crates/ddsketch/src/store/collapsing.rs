//! Bounded-size contiguous stores (paper Algorithms 3 and 4, dense
//! span-limited variant).

use super::cell::{Cell, PlainCell};
use super::count::Count;
use super::dense::{round_up_chunk, CHUNK};
use super::{BinIter, Store, StoreKind};

/// Contiguous store whose index **span** is capped at `max_bins`; when an
/// insertion would exceed the cap, the lowest indices are folded into the
/// lowest kept bucket.
///
/// This is the store behind the paper's headline configuration
/// (`α = 0.01`, `m = 2048`, Table 2): quantile queries stay α-accurate as
/// long as `x₁ ≤ x_q·γ^(m−1)` (Proposition 4) — with 2048 buckets and
/// α = 0.01 that covers values "from 80 microseconds to 1 year".
///
/// Compared to Algorithm 3's letter (which bounds *non-empty* buckets —
/// see [`super::CollapsingSparseStore`]), bounding the span is stricter, so
/// Proposition 4's guarantee carries over unchanged.
#[derive(Debug, Clone)]
pub struct CollapsingLowestDenseStore<C: Cell = u64> {
    counts: Vec<C>,
    offset: i64,
    min_idx: i64,
    max_idx: i64,
    total: C::Value,
    max_bins: i64,
    collapsed: bool,
}

impl CollapsingLowestDenseStore {
    /// Create a store holding at most `max_bins` contiguous buckets.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins == 0`; the sketch-level builder validates this
    /// before construction.
    pub fn new(max_bins: usize) -> Self {
        Self::with_max_bins(max_bins)
    }
}

impl<C: Cell> CollapsingLowestDenseStore<C> {
    /// Create a store holding at most `max_bins` contiguous buckets, for
    /// any cell type (use turbofish for non-default counts:
    /// `CollapsingLowestDenseStore::<f64>::with_max_bins(m)`).
    ///
    /// # Panics
    ///
    /// Panics if `max_bins == 0`; the sketch-level builder validates this
    /// before construction.
    pub fn with_max_bins(max_bins: usize) -> Self {
        assert!(max_bins > 0, "max_bins must be positive");
        Self {
            counts: Vec::new(),
            offset: 0,
            min_idx: 0,
            max_idx: 0,
            total: C::Value::ZERO,
            max_bins: max_bins as i64,
            collapsed: false,
        }
    }

    /// The configured bucket-span limit.
    pub fn max_bins(&self) -> usize {
        self.max_bins as usize
    }

    /// A zeroed cell buffer (generic stand-in for `vec![0; len]`).
    fn zeroed(len: usize) -> Vec<C> {
        std::iter::repeat_with(C::default).take(len).collect()
    }

    #[inline]
    fn pos(&self, index: i64) -> usize {
        debug_assert!(index >= self.offset);
        (index - self.offset) as usize
    }

    #[inline]
    fn in_range(&self, index: i64) -> bool {
        index >= self.offset && index < self.offset + self.counts.len() as i64
    }

    /// Reallocate (or initialize) so the array covers `index` plus the
    /// current live window. Caller guarantees the resulting span fits in
    /// `max_bins`.
    fn fit(&mut self, index: i64) {
        if self.counts.is_empty() {
            let len = CHUNK.min(self.max_bins) as usize;
            self.offset = index - (len as i64) / 2;
            self.counts = Self::zeroed(len);
            return;
        }
        if self.total == C::Value::ZERO {
            // Allocated but logically empty: recentre the existing buffer.
            if !self.in_range(index) {
                self.offset = index - (self.counts.len() as i64) / 2;
            }
            return;
        }
        if self.in_range(index) && self.in_range(self.min_idx) && self.in_range(self.max_idx) {
            return;
        }
        let lo = self.min_idx.min(index);
        let hi = self.max_idx.max(index);
        let span = hi - lo + 1;
        debug_assert!(
            span <= self.max_bins,
            "span {span} exceeds cap {}",
            self.max_bins
        );
        let target_len = span.max(self.counts.len() as i64 * 2).max(1);
        let target_len = round_up_chunk(target_len).min(self.max_bins).max(span);
        let extra = target_len - span;
        // The window only ever slides upward (lowest buckets collapse), so
        // put slack above when growing up, below when growing down.
        let new_offset = if index >= self.max_idx {
            lo
        } else {
            lo - extra
        };
        let mut new_counts = Self::zeroed(target_len as usize);
        for i in self.min_idx..=self.max_idx {
            let src = self.pos(i);
            new_counts[(i - new_offset) as usize] = std::mem::take(&mut self.counts[src]);
        }
        self.counts = new_counts;
        self.offset = new_offset;
    }

    /// Ensure the array covers `[lo, hi]` (whose span the caller has
    /// already bounded by `max_bins`) as well as the current live window,
    /// with a single reallocation.
    fn fit_range(&mut self, lo: i64, hi: i64) {
        debug_assert!(lo <= hi);
        let (wlo, whi) = if self.total > C::Value::ZERO {
            (self.min_idx.min(lo), self.max_idx.max(hi))
        } else {
            (lo, hi)
        };
        let span = whi - wlo + 1;
        debug_assert!(
            span <= self.max_bins,
            "span {span} exceeds cap {}",
            self.max_bins
        );
        if self.total == C::Value::ZERO {
            // Every counter is zero: resize if needed and re-anchor.
            let target = round_up_chunk(span)
                .min(self.max_bins)
                .max(span)
                .max(CHUNK.min(self.max_bins));
            if (self.counts.len() as i64) < target {
                self.counts = Self::zeroed(target as usize);
            }
            self.offset = wlo;
            return;
        }
        if self.in_range(wlo) && self.in_range(whi) {
            return;
        }
        let target_len = round_up_chunk(span.max(self.counts.len() as i64))
            .min(self.max_bins)
            .max(span);
        // Slack goes above: the window only slides upward over time.
        let new_offset = wlo;
        let mut new_counts = Self::zeroed(target_len as usize);
        for i in self.min_idx..=self.max_idx {
            let src = self.pos(i);
            new_counts[(i - new_offset) as usize] = std::mem::take(&mut self.counts[src]);
        }
        self.counts = new_counts;
        self.offset = new_offset;
        debug_assert!(self.in_range(wlo) && self.in_range(whi));
    }

    /// Fold every bucket below `new_min` into the bucket at `new_min`
    /// (Algorithm 3's collapse, applied in bulk).
    fn collapse_lowest_to(&mut self, new_min: i64) {
        if self.total == C::Value::ZERO || new_min <= self.min_idx {
            return;
        }
        let mut folded = C::Value::ZERO;
        let fold_end = new_min.min(self.max_idx + 1);
        for i in self.min_idx..fold_end {
            let pos = self.pos(i);
            folded += std::mem::take(&mut self.counts[pos]).get();
        }
        debug_assert!(
            folded > C::Value::ZERO,
            "min bucket was non-empty by invariant"
        );
        self.collapsed = true;
        if new_min > self.max_idx {
            // Everything folded: every counter is now zero, so the buffer
            // can simply be recentred on the single surviving bucket.
            self.min_idx = new_min;
            self.max_idx = new_min;
            if !self.in_range(new_min) {
                debug_assert!(self.counts.iter().all(|c| c.get() == C::Value::ZERO));
                self.offset = new_min - (self.counts.len() as i64) / 2;
            }
        } else {
            self.min_idx = new_min;
        }
        let pos = self.pos(new_min);
        self.counts[pos].add_assign(folded);
    }
}

impl<C: PlainCell> CollapsingLowestDenseStore<C> {
    /// Shared bulk-insertion core: add `count(i)` occurrences for every
    /// index in the batch, collapsing/clamping against the **final** span
    /// exactly once.
    ///
    /// Scalar insertion routes every bucket below `final_max − m + 1` to
    /// that lowest kept index eventually (either clamped on arrival or
    /// folded when the maximum later grows), so processing the whole batch
    /// against the final window yields bit-identical bins.
    fn bulk_add<I: Iterator<Item = (i32, C)> + Clone>(&mut self, bins: I) {
        let mut span: Option<(i64, i64)> = None;
        let mut added = C::ZERO;
        for (i, c) in bins.clone() {
            if c > C::ZERO {
                let i = i as i64;
                span = Some(match span {
                    None => (i, i),
                    Some((lo, hi)) => (lo.min(i), hi.max(i)),
                });
                added += c;
            }
        }
        let Some((lo, hi)) = span else { return };
        let new_max = if self.total == C::ZERO {
            hi
        } else {
            self.max_idx.max(hi)
        };
        let allowed_min = new_max - self.max_bins + 1;
        // Fold our own low buckets first if the batch's maximum demands it.
        if self.total > C::ZERO && self.min_idx < allowed_min {
            self.collapse_lowest_to(allowed_min);
        }
        let eff_lo = lo.max(allowed_min);
        self.fit_range(eff_lo, new_max);
        let offset = self.offset;
        let mut clamped = false;
        for (i, c) in bins {
            if c > C::ZERO {
                let eff = (i as i64).max(allowed_min);
                clamped |= eff != i as i64;
                let pos = (eff - offset) as usize;
                // SAFETY: `fit_range(eff_lo, new_max)` covers the whole
                // clamped batch span and `eff_lo <= eff <= new_max`.
                unsafe {
                    *self.counts.get_unchecked_mut(pos) += c;
                }
            }
        }
        if clamped {
            self.collapsed = true;
        }
        if self.total == C::ZERO {
            self.min_idx = eff_lo;
            self.max_idx = hi.max(eff_lo);
        } else {
            self.min_idx = self.min_idx.min(eff_lo);
            self.max_idx = self.max_idx.max(hi);
        }
        self.total += added;
    }

    /// The live slice covering `[min_idx, max_idx]`; valid when `total > 0`.
    #[inline]
    fn live(&self) -> &[C] {
        let lo = self.pos(self.min_idx);
        let hi = self.pos(self.max_idx);
        &self.counts[lo..=hi]
    }
}

impl<C: PlainCell> Store for CollapsingLowestDenseStore<C> {
    type Count = C;

    fn store_kind(&self) -> StoreKind {
        StoreKind::CollapsingDense
    }

    fn add_n(&mut self, index: i32, count: C) {
        if count <= C::ZERO {
            return;
        }
        let index = index as i64;
        if self.total == C::ZERO {
            self.fit(index);
            let pos = self.pos(index);
            self.counts[pos] += count;
            self.min_idx = index;
            self.max_idx = index;
            self.total = count;
            return;
        }
        let effective = if index > self.max_idx {
            if index - self.min_idx + 1 > self.max_bins {
                self.collapse_lowest_to(index - self.max_bins + 1);
            }
            index
        } else if index < self.min_idx {
            if self.max_idx - index + 1 > self.max_bins {
                // `index` falls inside the collapsed region: route the count
                // to the lowest bucket the span cap allows.
                self.collapsed = true;
                self.max_idx - self.max_bins + 1
            } else {
                index
            }
        } else {
            index
        };
        self.fit(effective);
        let pos = self.pos(effective);
        self.counts[pos] += count;
        self.min_idx = self.min_idx.min(effective);
        self.max_idx = self.max_idx.max(effective);
        self.total += count;
    }

    fn add_indices(&mut self, indices: &[i32]) {
        self.bulk_add(indices.iter().map(|&i| (i, C::ONE)));
    }

    fn add_bins(&mut self, bins: &[(i32, C)]) {
        self.bulk_add(bins.iter().copied());
    }

    fn remove_n(&mut self, index: i32, count: C) -> bool {
        if count <= C::ZERO {
            return true;
        }
        let index = index as i64;
        if self.total == C::ZERO
            || !self.in_range(index)
            || index < self.min_idx
            || index > self.max_idx
        {
            return false;
        }
        let pos = self.pos(index);
        if self.counts[pos] < count {
            return false;
        }
        self.counts[pos] -= count;
        self.total -= count;
        if self.total == C::ZERO {
            return true;
        }
        if self.counts[pos] == C::ZERO {
            if index == self.min_idx {
                while self.counts[self.pos(self.min_idx)] == C::ZERO {
                    self.min_idx += 1;
                }
            }
            if index == self.max_idx {
                while self.counts[self.pos(self.max_idx)] == C::ZERO {
                    self.max_idx -= 1;
                }
            }
        }
        true
    }

    fn remove_up_to(&mut self, index: i32, count: C) -> C {
        if count <= C::ZERO || self.total == C::ZERO {
            return C::ZERO;
        }
        let idx = index as i64;
        if !self.in_range(idx) || idx < self.min_idx || idx > self.max_idx {
            return C::ZERO;
        }
        let present = self.counts[self.pos(idx)];
        let take = if count < present { count } else { present };
        if take > C::ZERO && self.remove_n(index, take) {
            take
        } else {
            C::ZERO
        }
    }

    fn scale_counts(&mut self, factor: f64) {
        if self.total == C::ZERO {
            return;
        }
        let (lo, hi) = (self.pos(self.min_idx), self.pos(self.max_idx));
        let mut total = C::ZERO;
        for c in &mut self.counts[lo..=hi] {
            let scaled = c.scale(factor);
            *c = scaled;
            total += scaled;
        }
        self.total = total;
        if total == C::ZERO {
            return;
        }
        // Rounding (u64 plane) may have emptied the extremes.
        while self.counts[self.pos(self.min_idx)] == C::ZERO {
            self.min_idx += 1;
        }
        while self.counts[self.pos(self.max_idx)] == C::ZERO {
            self.max_idx -= 1;
        }
    }

    #[inline]
    fn total_count(&self) -> C {
        self.total
    }

    fn min_index(&self) -> Option<i32> {
        (self.total > C::ZERO).then_some(self.min_idx as i32)
    }

    fn max_index(&self) -> Option<i32> {
        (self.total > C::ZERO).then_some(self.max_idx as i32)
    }

    fn bin_iter(&self) -> BinIter<'_, C> {
        if self.total == C::ZERO {
            return BinIter::empty();
        }
        BinIter::Dense {
            counts: self.live(),
            first: self.min_idx,
        }
    }

    fn merge_from(&mut self, other: &Self) {
        self.merge_many(&[other]);
    }

    fn merge_many(&mut self, others: &[&Self]) {
        // Bulk Algorithm 4, k ways at once: determine the union maximum
        // first, fold our own out-of-span buckets exactly once, reallocate
        // exactly once for the union's effective window, then add every
        // source's array elementwise — no per-bucket re-insertion and no
        // per-source capacity work, which is what makes DDSketch merges an
        // order of magnitude faster than GK/HDR in the paper's Figure 9.
        let mut others_max: Option<i64> = None;
        for other in others {
            self.collapsed |= other.collapsed;
            if other.total > C::ZERO {
                others_max = Some(others_max.map_or(other.max_idx, |m| m.max(other.max_idx)));
            }
        }
        let Some(others_max) = others_max else { return };
        let new_max = if self.total == C::ZERO {
            others_max
        } else {
            self.max_idx.max(others_max)
        };
        let allowed_min = new_max - self.max_bins + 1;

        // Fold our own low buckets once if the union span demands it.
        if self.total > C::ZERO && self.min_idx < allowed_min {
            self.collapse_lowest_to(allowed_min);
        }

        // One reallocation covering every source's effective window.
        let mut lo = if self.total > C::ZERO {
            self.min_idx
        } else {
            i64::MAX
        };
        for other in others {
            if other.total > C::ZERO {
                lo = lo.min(other.min_idx.max(allowed_min));
            }
        }
        self.fit_range(lo, new_max);

        for other in others {
            if other.total == C::ZERO {
                continue;
            }
            let eff_other_min = other.min_idx.max(allowed_min);
            // Elementwise add. Fast path: nothing of `other` collapses, so
            // the two windows add as plain slices (vectorizable).
            if other.min_idx >= allowed_min {
                let dst = self.pos(other.min_idx);
                let src = other.pos(other.min_idx);
                let len = (other.max_idx - other.min_idx + 1) as usize;
                for (d, s) in self.counts[dst..dst + len]
                    .iter_mut()
                    .zip(&other.counts[src..src + len])
                {
                    *d += *s;
                }
            } else {
                for i in other.min_idx..=other.max_idx {
                    let c = other.counts[other.pos(i)];
                    if c > C::ZERO {
                        let eff = i.max(allowed_min);
                        if eff != i {
                            self.collapsed = true;
                        }
                        let pos = self.pos(eff);
                        self.counts[pos] += c;
                    }
                }
            }
            if self.total == C::ZERO {
                self.min_idx = eff_other_min;
                self.max_idx = other.max_idx.max(eff_other_min);
            } else {
                self.min_idx = self.min_idx.min(eff_other_min);
                self.max_idx = self.max_idx.max(other.max_idx.max(eff_other_min));
            }
            self.total += other.total;
        }
    }

    fn merge_clamp_iter<'s>(stores: impl Iterator<Item = &'s Self> + Clone) -> (i32, i32) {
        let unclamped = (i32::MIN, i32::MAX);
        let (Some(first), Some(union_max)) = (
            stores.clone().next(),
            stores.filter_map(|s| s.max_index()).max(),
        ) else {
            return unclamped;
        };
        // Everything below the merged window's lowest kept bucket folds
        // into it; the merge target's (the first store's) cap governs.
        let lo = (i64::from(union_max) - first.max_bins + 1).max(i64::from(i32::MIN));
        (lo as i32, i32::MAX)
    }

    fn clear(&mut self) {
        self.counts.fill(C::ZERO);
        self.total = C::ZERO;
        self.collapsed = false;
    }

    fn has_collapsed(&self) -> bool {
        self.collapsed
    }

    fn bin_limit(&self) -> Option<usize> {
        Some(self.max_bins as usize)
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<C>()
    }
}

/// Mirror image of [`CollapsingLowestDenseStore`]: the **highest** indices
/// collapse instead.
///
/// Used for the negative-value half of a sketch (paper Section 2.2:
/// "the indices for the negative sketch need to be calculated on the
/// absolute values, and collapses start from the highest indices"), so that
/// the buckets closest to zero — the ones that matter least for tail
/// latencies — are the ones sacrificed.
///
/// Implemented by delegating to a lowest-collapsing store over negated
/// indices, which makes the two behaviours mirror images by construction.
#[derive(Debug, Clone)]
pub struct CollapsingHighestDenseStore<C: Cell = u64> {
    inner: CollapsingLowestDenseStore<C>,
}

#[inline]
fn neg(index: i32) -> i32 {
    // The mappings keep indices two buckets away from the i32 extremes, so
    // negation cannot overflow; saturate defensively anyway.
    index.checked_neg().unwrap_or(i32::MAX)
}

impl CollapsingHighestDenseStore {
    /// Create a store holding at most `max_bins` contiguous buckets.
    pub fn new(max_bins: usize) -> Self {
        Self::with_max_bins(max_bins)
    }
}

impl<C: Cell> CollapsingHighestDenseStore<C> {
    /// Create a store holding at most `max_bins` contiguous buckets, for
    /// any cell type.
    pub fn with_max_bins(max_bins: usize) -> Self {
        Self {
            inner: CollapsingLowestDenseStore::with_max_bins(max_bins),
        }
    }

    /// The configured bucket-span limit.
    pub fn max_bins(&self) -> usize {
        self.inner.max_bins()
    }
}

impl<C: PlainCell> Store for CollapsingHighestDenseStore<C> {
    type Count = C;

    fn store_kind(&self) -> StoreKind {
        StoreKind::CollapsingDense
    }

    fn add_n(&mut self, index: i32, count: C) {
        self.inner.add_n(neg(index), count);
    }

    fn add_indices(&mut self, indices: &[i32]) {
        self.inner
            .bulk_add(indices.iter().map(|&i| (neg(i), C::ONE)));
    }

    fn add_bins(&mut self, bins: &[(i32, C)]) {
        self.inner.bulk_add(bins.iter().map(|&(i, c)| (neg(i), c)));
    }

    fn remove_n(&mut self, index: i32, count: C) -> bool {
        self.inner.remove_n(neg(index), count)
    }

    fn remove_up_to(&mut self, index: i32, count: C) -> C {
        self.inner.remove_up_to(neg(index), count)
    }

    fn scale_counts(&mut self, factor: f64) {
        self.inner.scale_counts(factor);
    }

    fn total_count(&self) -> C {
        self.inner.total_count()
    }

    fn min_index(&self) -> Option<i32> {
        self.inner.max_index().map(neg)
    }

    fn max_index(&self) -> Option<i32> {
        self.inner.min_index().map(neg)
    }

    fn num_bins(&self) -> usize {
        self.inner.num_bins()
    }

    fn bin_iter(&self) -> BinIter<'_, C> {
        if self.inner.total == C::ZERO {
            return BinIter::empty();
        }
        // Ascending mirrored order: BinIter walks the inner (negated)
        // window backward and negates each index.
        BinIter::DenseNeg {
            counts: self.inner.live(),
            first: self.inner.min_idx,
        }
    }

    fn merge_from(&mut self, other: &Self) {
        self.inner.merge_from(&other.inner);
    }

    fn merge_many(&mut self, others: &[&Self]) {
        let inners: Vec<&CollapsingLowestDenseStore<C>> =
            others.iter().map(|other| &other.inner).collect();
        self.inner.merge_many(&inners);
    }

    fn merge_clamp_iter<'s>(stores: impl Iterator<Item = &'s Self> + Clone) -> (i32, i32) {
        let unclamped = (i32::MIN, i32::MAX);
        let (Some(first), Some(union_min)) = (
            stores.clone().next(),
            stores.filter_map(|s| s.min_index()).min(),
        ) else {
            return unclamped;
        };
        // Mirror image of the lowest-collapsing clamp: everything above
        // the merged window's highest kept bucket folds into it.
        let hi = (i64::from(union_min) + first.inner.max_bins - 1).min(i64::from(i32::MAX));
        (i32::MIN, hi as i32)
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn has_collapsed(&self) -> bool {
        self.inner.has_collapsed()
    }

    fn bin_limit(&self) -> Option<usize> {
        self.inner.bin_limit()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<CollapsingLowestDenseStore<C>>()
            + self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::storetests;
    use proptest::prelude::*;

    #[test]
    fn basic_suite_lowest() {
        // Wide cap: behaves like a plain dense store.
        storetests::run_basic_suite(|| CollapsingLowestDenseStore::new(100_000));
    }

    #[test]
    fn basic_suite_highest() {
        storetests::run_basic_suite(|| CollapsingHighestDenseStore::new(100_000));
    }

    #[test]
    fn weighted_mirror_suites() {
        let stream = [(5, 3u64), (6, 1), (7, 2), (20, 4), (-3, 1), (100, 2)];
        for cap in [4usize, 16, 100_000] {
            storetests::run_weighted_mirror_suite(
                || CollapsingLowestDenseStore::new(cap),
                || CollapsingLowestDenseStore::<f64>::with_max_bins(cap),
                &stream,
            );
            storetests::run_weighted_mirror_suite(
                || CollapsingHighestDenseStore::new(cap),
                || CollapsingHighestDenseStore::<f64>::with_max_bins(cap),
                &stream,
            );
        }
    }

    #[test]
    fn collapses_lowest_when_growing_up() {
        let mut s = CollapsingLowestDenseStore::new(4);
        for i in 0..8 {
            s.add(i);
        }
        // Span capped at 4: buckets 0..4 folded into bucket 4.
        assert!(s.has_collapsed());
        assert_eq!(s.total_count(), 8);
        assert_eq!(s.bins_ascending(), vec![(4, 5), (5, 1), (6, 1), (7, 1)]);
    }

    #[test]
    fn low_inserts_fold_into_lowest_kept_bucket() {
        let mut s = CollapsingLowestDenseStore::new(4);
        s.add(100);
        s.add(1); // below 100 - 4 + 1 = 97 → folds to 97
        assert!(s.has_collapsed());
        assert_eq!(s.bins_ascending(), vec![(97, 1), (100, 1)]);
    }

    #[test]
    fn giant_upward_jump_folds_everything() {
        let mut s = CollapsingLowestDenseStore::new(4);
        s.add(0);
        s.add(1);
        s.add(1_000_000);
        assert_eq!(s.total_count(), 3);
        assert_eq!(
            s.bins_ascending(),
            vec![(1_000_000 - 3, 2), (1_000_000, 1)],
            "old buckets fold into the lowest kept index"
        );
    }

    #[test]
    fn never_collapses_within_cap() {
        let mut s = CollapsingLowestDenseStore::new(2048);
        for i in -1000..1040 {
            s.add(i);
        }
        assert!(!s.has_collapsed());
        assert_eq!(s.num_bins(), 2040);
    }

    #[test]
    fn collapsing_highest_mirrors_lowest() {
        let mut s = CollapsingHighestDenseStore::new(4);
        for i in 0..8 {
            s.add(i);
        }
        assert!(s.has_collapsed());
        // Highest indices 3..8 folded into bucket 3.
        assert_eq!(s.bins_ascending(), vec![(0, 1), (1, 1), (2, 1), (3, 5)]);
        assert_eq!(s.min_index(), Some(0));
        assert_eq!(s.max_index(), Some(3));
    }

    #[test]
    fn merge_respects_cap() {
        let mut a = CollapsingLowestDenseStore::new(4);
        let mut b = CollapsingLowestDenseStore::new(4);
        for i in 0..4 {
            a.add(i);
        }
        for i in 10..14 {
            b.add(i);
        }
        a.merge_from(&b);
        assert_eq!(a.total_count(), 8);
        assert!(a.has_collapsed());
        let span = a.max_index().unwrap() - a.min_index().unwrap() + 1;
        assert!(span <= 4, "span {span} exceeds cap");
        // All of a's original mass folded into bucket 10 (= 13 - 4 + 1).
        assert_eq!(a.bins_ascending(), vec![(10, 5), (11, 1), (12, 1), (13, 1)]);
    }

    #[test]
    fn merge_matches_bulk_insert_semantics() {
        // merge(A, B) must equal inserting B's buckets highest-first.
        let mut a1 = CollapsingLowestDenseStore::new(8);
        let mut b = CollapsingLowestDenseStore::new(8);
        for i in [5, 6, 7, 20] {
            a1.add(i);
        }
        for i in [0, 1, 2, 25, 30] {
            b.add(i);
        }
        let mut a2 = a1.clone();
        a2.merge_from(&b);
        for (idx, c) in b.bins_ascending().into_iter().rev() {
            a1.add_n(idx, c);
        }
        assert_eq!(a1.bins_ascending(), a2.bins_ascending());
    }

    #[test]
    fn merge_into_empty_store_with_wide_span() {
        // Regression: an empty store has only a small initial buffer; a
        // bulk merge of a near-cap-width store must still fit.
        let mut wide = CollapsingLowestDenseStore::new(2048);
        for i in 0..2000 {
            wide.add(i);
        }
        let mut empty = CollapsingLowestDenseStore::new(2048);
        empty.merge_from(&wide);
        assert_eq!(empty.bins_ascending(), wide.bins_ascending());
        // And again after a clear (buffer allocated but zero).
        let mut cleared = CollapsingLowestDenseStore::new(2048);
        cleared.add(1_000_000);
        cleared.clear();
        cleared.merge_from(&wide);
        assert_eq!(cleared.bins_ascending(), wide.bins_ascending());
    }

    #[test]
    fn merge_with_mismatched_caps() {
        // The merge target's (smaller) cap governs.
        let mut big = CollapsingLowestDenseStore::new(1024);
        for i in 0..1000 {
            big.add(i);
        }
        let mut small = CollapsingLowestDenseStore::new(16);
        small.merge_from(&big);
        assert_eq!(small.total_count(), 1000);
        assert!(small.has_collapsed());
        let span = small.max_index().unwrap() - small.min_index().unwrap() + 1;
        assert!(span <= 16);
        assert_eq!(small.max_index(), Some(999));
    }

    #[test]
    fn bulk_merge_matches_descending_insertion() {
        // The bulk merge must produce exactly the state of inserting the
        // other store's buckets highest-first (the previous algorithm).
        for cap in [4usize, 16, 64] {
            let mut a = CollapsingLowestDenseStore::new(cap);
            let mut b = CollapsingLowestDenseStore::new(cap);
            for i in [5, 6, 7, 20, -3] {
                a.add(i);
            }
            for i in [0, 1, 2, 25, 30, 100, -50] {
                b.add(i);
            }
            let mut bulk = a.clone();
            bulk.merge_from(&b);
            let mut reference = a.clone();
            for (idx, c) in b.bins_ascending().into_iter().rev() {
                reference.add_n(idx, c);
            }
            assert_eq!(
                bulk.bins_ascending(),
                reference.bins_ascending(),
                "cap {cap}"
            );
            assert_eq!(bulk.total_count(), reference.total_count());
        }
    }

    #[test]
    fn bin_iter_suites() {
        let stream = [5, 6, 7, 20, -3, 100, -50, 20];
        storetests::run_bin_iter_suite(|| CollapsingLowestDenseStore::new(100_000), &stream);
        storetests::run_bin_iter_suite(|| CollapsingHighestDenseStore::new(100_000), &stream);
        // And in a collapsing regime.
        storetests::run_bin_iter_suite(|| CollapsingLowestDenseStore::new(8), &stream);
        storetests::run_bin_iter_suite(|| CollapsingHighestDenseStore::new(8), &stream);
    }

    #[test]
    fn merge_many_equivalence() {
        for cap in [4usize, 16, 100_000] {
            storetests::run_merge_many_equivalence(
                || CollapsingLowestDenseStore::new(cap),
                &[7, -7],
                &[&[0, 5, 5], &[], &[-100, 2000], &[3, 3, 3]],
            );
            storetests::run_merge_many_equivalence(
                || CollapsingHighestDenseStore::new(cap),
                &[7, -7],
                &[&[0, 5, 5], &[], &[-100, 2000], &[3, 3, 3]],
            );
        }
    }

    #[test]
    fn merge_clamp_mirrors_collapse() {
        let mut a = CollapsingLowestDenseStore::new(4);
        let mut b = CollapsingLowestDenseStore::new(4);
        for i in 0..4 {
            a.add(i);
        }
        for i in 10..14 {
            b.add(i);
        }
        // Union max 13, cap 4 → everything below 10 folds into 10.
        assert_eq!(
            CollapsingLowestDenseStore::merge_clamp(&[&a, &b]),
            (10, i32::MAX)
        );
        // Mirrored for the highest-collapsing store.
        let mut ha = CollapsingHighestDenseStore::new(4);
        let mut hb = CollapsingHighestDenseStore::new(4);
        for i in 0..4 {
            ha.add(i);
        }
        for i in 10..14 {
            hb.add(i);
        }
        assert_eq!(
            CollapsingHighestDenseStore::merge_clamp(&[&ha, &hb]),
            (i32::MIN, 3)
        );
        // Within-cap unions clamp below every live bin — a functional
        // no-op.
        let mut c = CollapsingLowestDenseStore::new(4096);
        c.add(0);
        let (lo, hi) = CollapsingLowestDenseStore::merge_clamp(&[&c]);
        assert!(lo <= c.min_index().unwrap());
        assert_eq!(hi, i32::MAX);
        // Empty inputs never clamp.
        let empty = CollapsingLowestDenseStore::new(4);
        assert_eq!(
            CollapsingLowestDenseStore::merge_clamp(&[&empty]),
            (i32::MIN, i32::MAX)
        );
        assert_eq!(
            CollapsingLowestDenseStore::<u64>::merge_clamp(&[]),
            (i32::MIN, i32::MAX)
        );
    }

    #[test]
    fn total_count_preserved_through_collapse() {
        let mut s = CollapsingLowestDenseStore::new(16);
        let mut expected = 0u64;
        for i in 0..10_000 {
            s.add_n(i % 500, 2);
            expected += 2;
        }
        assert_eq!(s.total_count(), expected);
    }

    #[test]
    #[should_panic(expected = "max_bins must be positive")]
    fn zero_cap_panics() {
        let _ = CollapsingLowestDenseStore::new(0);
    }

    proptest! {
        #[test]
        fn prop_count_preserved(ops in proptest::collection::vec((-2000i32..2000, 1u64..5), 1..300),
                                cap in 1usize..64) {
            let mut s = CollapsingLowestDenseStore::new(cap);
            let mut expected = 0u64;
            for (idx, c) in ops {
                s.add_n(idx, c);
                expected += c;
            }
            prop_assert_eq!(s.total_count(), expected);
            let span = (s.max_index().unwrap() - s.min_index().unwrap()) as usize + 1;
            prop_assert!(span <= cap);
        }

        #[test]
        fn prop_highest_is_exact_mirror(ops in proptest::collection::vec(-500i32..500, 1..200), cap in 1usize..32) {
            let mut lo = CollapsingLowestDenseStore::new(cap);
            let mut hi = CollapsingHighestDenseStore::new(cap);
            for &i in &ops {
                lo.add(i);
                hi.add(-i);
            }
            let mirrored: Vec<(i32, u64)> = hi
                .bins_ascending()
                .into_iter()
                .rev()
                .map(|(i, c)| (-i, c))
                .collect();
            prop_assert_eq!(lo.bins_ascending(), mirrored);
        }

        #[test]
        fn prop_bulk_merge_matches_descending_insertion(
            a in proptest::collection::vec(-500i32..500, 0..120),
            b in proptest::collection::vec(-500i32..500, 0..120),
            cap in 2usize..48,
        ) {
            let mut sa = CollapsingLowestDenseStore::new(cap);
            let mut sb = CollapsingLowestDenseStore::new(cap);
            for &i in &a { sa.add(i); }
            for &i in &b { sb.add(i); }
            let mut bulk = sa.clone();
            bulk.merge_from(&sb);
            let mut reference = sa;
            for (idx, c) in sb.bins_ascending().into_iter().rev() {
                reference.add_n(idx, c);
            }
            prop_assert_eq!(bulk.bins_ascending(), reference.bins_ascending());
        }

        #[test]
        fn prop_bulk_matches_scalar(stream in proptest::collection::vec(-500i32..500, 0..200),
                                    cap in 1usize..64) {
            storetests::run_bulk_equivalence(|| CollapsingLowestDenseStore::new(cap), &stream);
            storetests::run_bulk_equivalence(|| CollapsingHighestDenseStore::new(cap), &stream);
        }

        #[test]
        fn prop_merge_many_matches_sequential(
            a in proptest::collection::vec(-500i32..500, 0..100),
            b in proptest::collection::vec(-500i32..500, 0..100),
            c in proptest::collection::vec(-500i32..500, 0..100),
            warm in proptest::collection::vec(-500i32..500, 0..50),
            cap in 2usize..48,
        ) {
            storetests::run_merge_many_equivalence(
                || CollapsingLowestDenseStore::new(cap), &warm, &[&a, &b, &c]);
            storetests::run_merge_many_equivalence(
                || CollapsingHighestDenseStore::new(cap), &warm, &[&a, &b, &c]);
        }

        #[test]
        fn prop_wide_cap_matches_dense(ops in proptest::collection::vec((-1000i32..1000, 1u64..4), 1..200)) {
            use crate::store::DenseStore;
            let mut bounded = CollapsingLowestDenseStore::new(1_000_000);
            let mut dense = DenseStore::new();
            for (idx, c) in ops {
                bounded.add_n(idx, c);
                dense.add_n(idx, c);
            }
            prop_assert!(!bounded.has_collapsed());
            prop_assert_eq!(bounded.bins_ascending(), dense.bins_ascending());
        }
    }
}
