//! Sparse stores: memory proportional to the number of *non-empty*
//! buckets, the paper's "implement the sketch in a sparse manner ...
//! sacrificing speed for space efficiency" option.

use std::collections::BTreeMap;

use super::count::Count;
use super::{BinIter, Store, StoreKind};

/// Estimated per-entry overhead of a `BTreeMap<i32, u64>` node: 12 bytes of
/// payload, amortized node headers/edges, and allocator slack. B-tree nodes
/// hold up to 11 entries and are at least half full, so ~2× payload is a
/// fair structural estimate; used only for the Figure 6 size comparison.
const BTREE_ENTRY_BYTES: usize = 24;

/// Unbounded sparse store backed by an ordered map, generic over the
/// count domain (`SparseStore` = `SparseStore<u64>`; `SparseStore<f64>`
/// is its weighted mirror).
#[derive(Debug, Clone, Default)]
pub struct SparseStore<C: Count = u64> {
    bins: BTreeMap<i32, C>,
    total: C,
}

impl SparseStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<C: Count> Store for SparseStore<C> {
    type Count = C;

    fn store_kind(&self) -> StoreKind {
        StoreKind::Sparse
    }

    fn add_n(&mut self, index: i32, count: C) {
        if count <= C::ZERO {
            return;
        }
        *self.bins.entry(index).or_insert(C::ZERO) += count;
        self.total += count;
    }

    fn add_indices(&mut self, indices: &[i32]) {
        if indices.is_empty() {
            return;
        }
        // Sort a scratch copy and run-length-merge it so each distinct
        // index costs one B-tree descent instead of one per occurrence —
        // batches are typically heavy with duplicates (values that map to
        // the same bucket).
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        let mut run_start = 0;
        for k in 1..=sorted.len() {
            if k == sorted.len() || sorted[k] != sorted[run_start] {
                let run = C::from_u64((k - run_start) as u64);
                *self.bins.entry(sorted[run_start]).or_insert(C::ZERO) += run;
                run_start = k;
            }
        }
        self.total += C::from_u64(indices.len() as u64);
    }

    fn remove_n(&mut self, index: i32, count: C) -> bool {
        if count <= C::ZERO {
            return true;
        }
        match self.bins.get_mut(&index) {
            Some(c) if *c >= count => {
                *c -= count;
                if *c == C::ZERO {
                    self.bins.remove(&index);
                }
                self.total -= count;
                true
            }
            _ => false,
        }
    }

    fn remove_up_to(&mut self, index: i32, count: C) -> C {
        if count <= C::ZERO {
            return C::ZERO;
        }
        let Some(c) = self.bins.get_mut(&index) else {
            return C::ZERO;
        };
        let take = if count < *c { count } else { *c };
        *c -= take;
        if *c == C::ZERO {
            self.bins.remove(&index);
        }
        self.total -= take;
        take
    }

    fn scale_counts(&mut self, factor: f64) {
        let mut total = C::ZERO;
        self.bins.retain(|_, c| {
            let scaled = c.scale(factor);
            if scaled > C::ZERO {
                *c = scaled;
                total += scaled;
                true
            } else {
                false
            }
        });
        self.total = total;
    }

    fn total_count(&self) -> C {
        self.total
    }

    fn min_index(&self) -> Option<i32> {
        self.bins.keys().next().copied()
    }

    fn max_index(&self) -> Option<i32> {
        self.bins.keys().next_back().copied()
    }

    fn num_bins(&self) -> usize {
        self.bins.len()
    }

    fn bin_iter(&self) -> BinIter<'_, C> {
        BinIter::Sparse(self.bins.iter())
    }

    fn merge_from(&mut self, other: &Self) {
        for (&i, &c) in &other.bins {
            *self.bins.entry(i).or_insert(C::ZERO) += c;
        }
        self.total += other.total;
    }

    fn clear(&mut self) {
        self.bins.clear();
        self.total = C::ZERO;
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bins.len() * BTREE_ENTRY_BYTES
    }
}

/// Sparse store implementing Algorithm 3 to the letter: whenever the number
/// of **non-empty** buckets exceeds `max_bins`, the two lowest non-empty
/// buckets are merged (the lower one's count moves into the next one up).
#[derive(Debug, Clone)]
pub struct CollapsingSparseStore<C: Count = u64> {
    inner: SparseStore<C>,
    max_bins: usize,
    collapsed: bool,
}

impl CollapsingSparseStore {
    /// Create a store keeping at most `max_bins` non-empty buckets.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins == 0`.
    pub fn new(max_bins: usize) -> Self {
        Self::with_max_bins(max_bins)
    }
}

impl<C: Count> CollapsingSparseStore<C> {
    /// Create a store keeping at most `max_bins` non-empty buckets, for
    /// any count type.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins == 0`.
    pub fn with_max_bins(max_bins: usize) -> Self {
        assert!(max_bins > 0, "max_bins must be positive");
        Self {
            inner: SparseStore::default(),
            max_bins,
            collapsed: false,
        }
    }

    /// The configured non-empty-bucket limit.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Algorithm 3's collapse step: fold `B_{i0}` (lowest) into `B_{i1}`
    /// (second lowest), repeated until within the limit.
    fn collapse_if_needed(&mut self) {
        while self.inner.bins.len() > self.max_bins {
            let mut keys = self.inner.bins.keys();
            let i0 = *keys.next().expect("len > max_bins >= 1");
            let i1 = *keys.next().expect("len >= 2");
            let c0 = self.inner.bins.remove(&i0).expect("i0 exists");
            *self.inner.bins.get_mut(&i1).expect("i1 exists") += c0;
            self.collapsed = true;
        }
    }
}

/// K-way ascending walk over several stores' *distinct* bin indices,
/// allocation-free apart from one small `Vec` of cursors. Used to predict
/// the Algorithm-3 collapse threshold of a merge without performing it.
struct DistinctAscending<'a, C: Count> {
    iters: Vec<std::iter::Peekable<BinIter<'a, C>>>,
}

impl<'a, C: Count> DistinctAscending<'a, C> {
    fn over(stores: impl Iterator<Item = &'a CollapsingSparseStore<C>>) -> Self {
        Self {
            iters: stores.map(|s| s.bin_iter().peekable()).collect(),
        }
    }
}

impl<C: Count> Iterator for DistinctAscending<'_, C> {
    type Item = i32;

    fn next(&mut self) -> Option<i32> {
        let mut min: Option<i32> = None;
        for iter in &mut self.iters {
            if let Some(&(i, _)) = iter.peek() {
                min = Some(match min {
                    None => i,
                    Some(m) => m.min(i),
                });
            }
        }
        let min = min?;
        for iter in &mut self.iters {
            while matches!(iter.peek(), Some(&(i, _)) if i == min) {
                iter.next();
            }
        }
        Some(min)
    }
}

impl<C: Count> Store for CollapsingSparseStore<C> {
    type Count = C;

    fn store_kind(&self) -> StoreKind {
        StoreKind::CollapsingSparse
    }

    fn add_n(&mut self, index: i32, count: C) {
        self.inner.add_n(index, count);
        self.collapse_if_needed();
    }

    fn add_indices(&mut self, indices: &[i32]) {
        // Insert the whole batch, then collapse once. Algorithm 3's fold
        // ("merge the two lowest non-empty buckets") always ends in the
        // same state for a given multiset — everything at or below the
        // (m-th from the top) distinct index folds into that bucket — so
        // collapsing per batch instead of per value is bit-identical.
        self.inner.add_indices(indices);
        self.collapse_if_needed();
    }

    fn add_bins(&mut self, bins: &[(i32, C)]) {
        self.inner.add_bins(bins);
        self.collapse_if_needed();
    }

    fn remove_n(&mut self, index: i32, count: C) -> bool {
        self.inner.remove_n(index, count)
    }

    fn remove_up_to(&mut self, index: i32, count: C) -> C {
        self.inner.remove_up_to(index, count)
    }

    fn scale_counts(&mut self, factor: f64) {
        self.inner.scale_counts(factor);
    }

    fn total_count(&self) -> C {
        self.inner.total_count()
    }

    fn min_index(&self) -> Option<i32> {
        self.inner.min_index()
    }

    fn max_index(&self) -> Option<i32> {
        self.inner.max_index()
    }

    fn num_bins(&self) -> usize {
        self.inner.num_bins()
    }

    fn bin_iter(&self) -> BinIter<'_, C> {
        self.inner.bin_iter()
    }

    fn merge_from(&mut self, other: &Self) {
        // Algorithm 4: sum all buckets first, then collapse back under the
        // limit.
        self.inner.merge_from(&other.inner);
        self.collapse_if_needed();
        self.collapsed |= other.collapsed;
    }

    // merge_many keeps the trait's fold-of-merge_from default on purpose:
    // summing all k sources before one collapse would be bit-identical
    // (Algorithm 3's fold is confluent), but it would let the B-tree hold
    // up to k·max_bins live entries mid-merge — transiently defeating the
    // bounded-memory property this store family is selected for. A B-tree
    // has no batch capacity decision to amortize anyway.

    fn merge_clamp_iter<'s>(stores: impl Iterator<Item = &'s Self> + Clone) -> (i32, i32) {
        let unclamped = (i32::MIN, i32::MAX);
        let Some(first) = stores.clone().next() else {
            return unclamped;
        };
        let m = first.max_bins;
        // Count the union's distinct indices with a k-way walk; if the
        // merge would overflow the non-empty-bucket bound, everything at
        // or below the (distinct − m + 1)-th smallest distinct index folds
        // into it (Algorithm 3 applied to the summed buckets).
        let distinct = DistinctAscending::over(stores.clone()).count();
        if distinct <= m {
            return unclamped;
        }
        let threshold = DistinctAscending::over(stores)
            .nth(distinct - m)
            .expect("distinct > m implies at least distinct - m + 1 indices");
        (threshold, i32::MAX)
    }

    fn clear(&mut self) {
        self.inner.clear();
        self.collapsed = false;
    }

    fn has_collapsed(&self) -> bool {
        self.collapsed
    }

    fn bin_limit(&self) -> Option<usize> {
        Some(self.max_bins)
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<SparseStore<C>>()
            + self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::storetests;
    use proptest::prelude::*;

    #[test]
    fn basic_suite_sparse() {
        storetests::run_basic_suite(SparseStore::new);
    }

    #[test]
    fn basic_suite_collapsing_sparse() {
        storetests::run_basic_suite(|| CollapsingSparseStore::new(100_000));
    }

    #[test]
    fn merge_equivalence_sparse() {
        storetests::run_merge_equivalence(
            SparseStore::new,
            &[0, 5, 5, -100, 2000, 3],
            &[5, -100, -100, 77],
        );
    }

    #[test]
    fn weighted_mirror_suites() {
        let stream = [(0, 3u64), (5, 1), (-100, 7), (2000, 2), (3, 4)];
        storetests::run_weighted_mirror_suite(
            SparseStore::new,
            SparseStore::<f64>::default,
            &stream,
        );
        for cap in [3usize, 8, 100_000] {
            storetests::run_weighted_mirror_suite(
                || CollapsingSparseStore::new(cap),
                || CollapsingSparseStore::<f64>::with_max_bins(cap),
                &stream,
            );
        }
    }

    #[test]
    fn collapse_merges_two_lowest_nonempty() {
        // Algorithm 3 with m = 3: inserting a 4th distinct bucket collapses
        // the two lowest.
        let mut s = CollapsingSparseStore::new(3);
        s.add_n(10, 1);
        s.add_n(20, 2);
        s.add_n(30, 3);
        assert!(!s.has_collapsed());
        s.add_n(40, 4);
        assert!(s.has_collapsed());
        assert_eq!(s.bins_ascending(), vec![(20, 3), (30, 3), (40, 4)]);
        assert_eq!(s.total_count(), 10);
    }

    #[test]
    fn collapse_cascades_on_merge() {
        let mut a = CollapsingSparseStore::new(2);
        let mut b = CollapsingSparseStore::new(2);
        a.add(1);
        a.add(2);
        b.add(3);
        b.add(4);
        a.merge_from(&b);
        assert_eq!(a.num_bins(), 2);
        assert_eq!(a.total_count(), 4);
        // 1 folds into 2, then {2:2} folds into 3 → {3:3, 4:1}.
        assert_eq!(a.bins_ascending(), vec![(3, 3), (4, 1)]);
    }

    #[test]
    fn bin_iter_suites() {
        let stream = [0, 5, 5, -100, 2000, 3, -100];
        storetests::run_bin_iter_suite(SparseStore::new, &stream);
        storetests::run_bin_iter_suite(|| CollapsingSparseStore::new(100_000), &stream);
        storetests::run_bin_iter_suite(|| CollapsingSparseStore::new(3), &stream);
    }

    #[test]
    fn merge_many_equivalence() {
        for cap in [2usize, 8, 100_000] {
            storetests::run_merge_many_equivalence(
                || CollapsingSparseStore::new(cap),
                &[7, -7],
                &[&[0, 5, 5], &[], &[-100, 2000], &[3, 3, 3]],
            );
        }
        storetests::run_merge_many_equivalence(
            SparseStore::new,
            &[7, -7],
            &[&[0, 5, 5], &[], &[-100, 2000], &[3, 3, 3]],
        );
    }

    #[test]
    fn merge_clamp_predicts_algorithm3_fold() {
        let mut a = CollapsingSparseStore::new(3);
        let mut b = CollapsingSparseStore::new(3);
        for i in [10, 20] {
            a.add(i);
        }
        for i in [30, 40] {
            b.add(i);
        }
        // Union distinct {10, 20, 30, 40}, m = 3 → fold at the 2nd
        // smallest distinct index (20).
        assert_eq!(
            CollapsingSparseStore::merge_clamp(&[&a, &b]),
            (20, i32::MAX)
        );
        // The materialized merge agrees.
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.min_index(), Some(20));
        // Under the bound: no clamp.
        assert_eq!(
            CollapsingSparseStore::merge_clamp(&[&a]),
            (i32::MIN, i32::MAX)
        );
        assert_eq!(
            CollapsingSparseStore::<u64>::merge_clamp(&[]),
            (i32::MIN, i32::MAX)
        );
    }

    #[test]
    fn sparse_memory_tracks_bins_not_span() {
        let mut sparse = SparseStore::new();
        sparse.add(0);
        sparse.add(1_000_000);
        let sparse_bytes = sparse.memory_bytes();

        let mut dense = crate::store::DenseStore::new();
        dense.add(0);
        dense.add(1_000_000);
        assert!(
            sparse_bytes * 100 < dense.memory_bytes(),
            "sparse ({sparse_bytes}) should be far smaller than dense ({}) on wide sparse data",
            dense.memory_bytes()
        );
    }

    #[test]
    fn paper_exact_collapse_keeps_high_quantiles() {
        // Proposition 4 flavour: with the top m buckets intact, high
        // bucket contents are untouched by collapse.
        let mut s = CollapsingSparseStore::new(4);
        for i in 0..100 {
            s.add(i);
        }
        let bins = s.bins_ascending();
        assert_eq!(bins.len(), 4);
        // The top three buckets must be exact.
        assert_eq!(&bins[1..], &[(97, 1), (98, 1), (99, 1)]);
        // The lowest kept bucket absorbed everything else.
        assert_eq!(bins[0], (96, 97));
    }

    proptest! {
        #[test]
        fn prop_sparse_matches_model(ops in proptest::collection::vec((-5000i32..5000, 1u64..20), 1..200)) {
            let mut s = SparseStore::new();
            let mut model = std::collections::BTreeMap::<i32, u64>::new();
            for (idx, c) in ops {
                s.add_n(idx, c);
                *model.entry(idx).or_default() += c;
            }
            prop_assert_eq!(s.bins_ascending(), model.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn prop_collapsing_bounds_bins(ops in proptest::collection::vec(-2000i32..2000, 1..300), cap in 1usize..32) {
            let mut s = CollapsingSparseStore::new(cap);
            let mut expected = 0u64;
            for &i in &ops {
                s.add(i);
                expected += 1;
            }
            prop_assert!(s.num_bins() <= cap);
            prop_assert_eq!(s.total_count(), expected);
        }

        #[test]
        fn prop_bulk_matches_scalar(stream in proptest::collection::vec(-800i32..800, 0..200),
                                    cap in 1usize..32) {
            storetests::run_bulk_equivalence(SparseStore::new, &stream);
            storetests::run_bulk_equivalence(|| CollapsingSparseStore::new(cap), &stream);
        }

        #[test]
        fn prop_merge_count_preserved(a in proptest::collection::vec(-100i32..100, 0..100),
                                      b in proptest::collection::vec(-100i32..100, 0..100),
                                      cap in 2usize..16) {
            let mut sa = CollapsingSparseStore::new(cap);
            let mut sb = CollapsingSparseStore::new(cap);
            for &i in &a { sa.add(i); }
            for &i in &b { sb.add(i); }
            sa.merge_from(&sb);
            prop_assert_eq!(sa.total_count(), (a.len() + b.len()) as u64);
            prop_assert!(sa.num_bins() <= cap);
        }
    }
}
