//! Compact binary codec and serde payload for wire transfer.
//!
//! DDSketch is designed for agents that ship sketches to a central
//! monitoring system every few seconds (paper Figure 1), so a compact,
//! versioned, **self-describing** wire format matters: the aggregator must
//! be able to reconstruct whatever configuration an agent runs without
//! compile-time knowledge. The current encoding (`DDS2`) is:
//!
//! ```text
//! magic   : 4 bytes  "DDS2"
//! kind    : u8       mapping family (MappingKind)
//! store   : u8       store family (StoreKind)
//! alpha   : f64 LE   relative accuracy
//! limit   : varint   bucket limit (0 = unbounded)
//! zero    : varint   zero-bucket count
//! min,max,sum : 3 × f64 LE
//! positive: bins     (see below)
//! negative: bins
//!
//! bins    : varint n, then if n > 0:
//!           zigzag-varint first_index,
//!           n × varint count interleaved with (n−1) × varint gap
//!           where gap = index_delta − 1 (indices are strictly ascending)
//! ```
//!
//! Counts and index gaps are LEB128 varints, so a warm sketch with mostly
//! small dense counts costs ~2 bytes per non-empty bucket.
//!
//! ## Legacy `DDS1` payloads
//!
//! The v1 format lacked the `store` byte, so the store family must be
//! **guessed** from the bucket limit: `limit > 0` is read as collapsing
//! dense stores (the only bounded v1 producers in practice were the
//! bounded/fast presets) and `limit == 0` as unbounded dense stores. The
//! guess is documented rather than reliable — v1 payloads from the sparse
//! preset are literally indistinguishable from unbounded ones (both
//! encoded `limit == 0`), and bounded v1 payloads from the paper-exact
//! preset decode as collapsing-dense. `DDS2` exists precisely to close
//! that ambiguity; decoders accept both, encoders only emit v2.

use bytes::{Buf, BufMut};

use crate::any::AnyDDSketch;
use crate::mapping::{IndexMapping, MappingKind};
use crate::presets::{
    BoundedDDSketch, FastDDSketch, PaperExactDDSketch, SparseDDSketch, UnboundedDDSketch,
};
use crate::sketch::DDSketch;
use crate::store::{Store, StoreKind};
use sketch_core::SketchError;

const MAGIC_V1: &[u8; 4] = b"DDS1";
const MAGIC: &[u8; 4] = b"DDS2";

/// Mapping-agnostic serializable snapshot of a sketch's state.
///
/// Any `DDSketch` converts to a payload with [`DDSketch::to_payload`], and
/// each preset converts back via its `from_payload` constructor — or, when
/// the concrete type is only known at runtime, via
/// [`AnyDDSketch::from_payload`], which dispatches on the mapping and
/// store discriminants. (The offline build has no `serde`; the plain-data
/// payload struct is the integration point where a serde derive would go.)
#[derive(Debug, Clone, PartialEq)]
pub struct SketchPayload {
    /// Mapping family discriminant ([`MappingKind`] as u8).
    pub kind: u8,
    /// Store family discriminant ([`StoreKind`] as u8). For payloads read
    /// from legacy `DDS1` bytes this is a documented guess (see the module
    /// docs), not ground truth.
    pub store: u8,
    /// Relative accuracy α.
    pub relative_accuracy: f64,
    /// Bucket limit of the positive store; 0 means unbounded.
    pub bin_limit: u64,
    /// Exact zero-bucket count.
    pub zero_count: u64,
    /// Tracked minimum (`+∞` when empty).
    pub min: f64,
    /// Tracked maximum (`−∞` when empty).
    pub max: f64,
    /// Exact sum of inserted values.
    pub sum: f64,
    /// Positive-store bins, ascending index.
    pub positive: Vec<(i32, u64)>,
    /// Negative-store bins, ascending index (of |x|).
    pub negative: Vec<(i32, u64)>,
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, SketchError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(SketchError::Decode("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(SketchError::Decode("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_bins(buf: &mut Vec<u8>, bins: &[(i32, u64)]) {
    put_varint(buf, bins.len() as u64);
    let mut prev: Option<i32> = None;
    for &(idx, count) in bins {
        match prev {
            None => put_varint(buf, zigzag(idx as i64)),
            Some(p) => {
                debug_assert!(idx > p, "bins must be strictly ascending");
                put_varint(buf, (idx as i64 - p as i64 - 1) as u64);
            }
        }
        put_varint(buf, count);
        prev = Some(idx);
    }
}

fn get_bins(buf: &mut &[u8]) -> Result<Vec<(i32, u64)>, SketchError> {
    let n = get_varint(buf)? as usize;
    // Each bin needs at least 2 bytes; reject absurd lengths before
    // allocating (defends against corrupted/hostile input).
    if n > buf.remaining() {
        return Err(SketchError::Decode(format!(
            "bin count {n} exceeds payload size"
        )));
    }
    let mut bins = Vec::with_capacity(n);
    let mut prev: Option<i64> = None;
    for _ in 0..n {
        let idx = match prev {
            None => unzigzag(get_varint(buf)?),
            Some(p) => p
                .checked_add(get_varint(buf)? as i64)
                .and_then(|v| v.checked_add(1))
                .ok_or_else(|| SketchError::Decode("index overflow".into()))?,
        };
        if idx < i32::MIN as i64 || idx > i32::MAX as i64 {
            return Err(SketchError::Decode(format!(
                "bin index {idx} out of i32 range"
            )));
        }
        let count = get_varint(buf)?;
        if count == 0 {
            return Err(SketchError::Decode("zero-count bin".into()));
        }
        bins.push((idx as i32, count));
        prev = Some(idx);
    }
    Ok(bins)
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, SketchError> {
    if buf.remaining() < 8 {
        return Err(SketchError::Decode("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

impl SketchPayload {
    /// Serialize to the compact binary wire format (always `DDS2`).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 4 * (self.positive.len() + self.negative.len()));
        buf.put_slice(MAGIC);
        buf.put_u8(self.kind);
        buf.put_u8(self.store);
        buf.put_f64_le(self.relative_accuracy);
        put_varint(&mut buf, self.bin_limit);
        put_varint(&mut buf, self.zero_count);
        buf.put_f64_le(self.min);
        buf.put_f64_le(self.max);
        buf.put_f64_le(self.sum);
        put_bins(&mut buf, &self.positive);
        put_bins(&mut buf, &self.negative);
        buf
    }

    /// Decode from the compact binary wire format, accepting both the
    /// self-describing `DDS2` layout and legacy `DDS1` bytes (whose store
    /// family is inferred by the heuristic in the module docs).
    pub fn decode(mut bytes: &[u8]) -> Result<Self, SketchError> {
        let buf = &mut bytes;
        if buf.remaining() < 4 {
            return Err(SketchError::Decode("bad magic".into()));
        }
        let v1 = match &buf[..4] {
            m if m == MAGIC => false,
            m if m == MAGIC_V1 => true,
            _ => return Err(SketchError::Decode("bad magic".into())),
        };
        buf.advance(4);
        if !buf.has_remaining() {
            return Err(SketchError::Decode("truncated header".into()));
        }
        let kind = buf.get_u8();
        MappingKind::from_u8(kind)?;
        let store = if v1 {
            // v1 carried no store byte: guess from the bucket limit once
            // it is known (below). Placeholder here.
            0
        } else {
            if !buf.has_remaining() {
                return Err(SketchError::Decode("truncated header".into()));
            }
            let store = buf.get_u8();
            StoreKind::from_u8(store)?;
            store
        };
        let relative_accuracy = get_f64(buf)?;
        let bin_limit = get_varint(buf)?;
        let store = if v1 {
            // The documented v1 heuristic: bounded payloads came from the
            // collapsing dense presets, unbounded ones from the dense
            // unbounded preset (sparse payloads are indistinguishable).
            if bin_limit > 0 {
                StoreKind::CollapsingDense as u8
            } else {
                StoreKind::Unbounded as u8
            }
        } else {
            store
        };
        let zero_count = get_varint(buf)?;
        let min = get_f64(buf)?;
        let max = get_f64(buf)?;
        let sum = get_f64(buf)?;
        let positive = get_bins(buf)?;
        let negative = get_bins(buf)?;
        if buf.has_remaining() {
            return Err(SketchError::Decode("trailing bytes".into()));
        }
        Ok(Self {
            kind,
            store,
            relative_accuracy,
            bin_limit,
            zero_count,
            min,
            max,
            sum,
            positive,
            negative,
        })
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> DDSketch<M, SP, SN> {
    /// Snapshot this sketch into a serializable payload.
    pub fn to_payload(&self) -> SketchPayload {
        SketchPayload {
            kind: self.mapping().kind() as u8,
            store: self.positive_store().store_kind() as u8,
            relative_accuracy: self.mapping().relative_accuracy(),
            bin_limit: self.positive_store().bin_limit().unwrap_or(0) as u64,
            zero_count: self.zero_count(),
            min: self.min().unwrap_or(f64::INFINITY),
            max: self.max().unwrap_or(f64::NEG_INFINITY),
            sum: self.sum(),
            positive: self.positive_store().bins_ascending(),
            negative: self.negative_store().bins_ascending(),
        }
    }

    /// Serialize to the compact binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_payload().encode()
    }
}

impl AnyDDSketch {
    /// Snapshot into a serializable payload (dispatching to the wrapped
    /// preset).
    pub fn to_payload(&self) -> SketchPayload {
        crate::any::dispatch!(self, s => s.to_payload())
    }

    /// Serialize to the self-describing `DDS2` wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_payload().encode()
    }

    /// Reconstruct the right sketch variant from a payload — the
    /// self-describing decode path: the payload's mapping and store
    /// discriminants select the variant, so the caller needs no
    /// compile-time knowledge of what produced the bytes.
    pub fn from_payload(payload: &SketchPayload) -> Result<Self, SketchError> {
        let mapping = MappingKind::from_u8(payload.kind)?;
        let store = StoreKind::from_u8(payload.store)?;
        if store.is_bounded() != (payload.bin_limit > 0) {
            return Err(SketchError::Decode(format!(
                "{} store with bin_limit {} is inconsistent",
                store.name(),
                payload.bin_limit
            )));
        }
        Ok(match (mapping, store) {
            (MappingKind::Logarithmic, StoreKind::Unbounded) => {
                AnyDDSketch::Unbounded(UnboundedDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingDense) => {
                AnyDDSketch::Bounded(BoundedDDSketch::from_payload(payload)?)
            }
            (MappingKind::CubicInterpolated, StoreKind::CollapsingDense) => {
                AnyDDSketch::Fast(FastDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::Sparse) => {
                AnyDDSketch::Sparse(SparseDDSketch::from_payload(payload)?)
            }
            (MappingKind::Logarithmic, StoreKind::CollapsingSparse) => {
                AnyDDSketch::PaperExact(PaperExactDDSketch::from_payload(payload)?)
            }
            (mapping, store) => {
                return Err(SketchError::Decode(format!(
                    "no sketch variant for {mapping:?} mapping with {} store",
                    store.name()
                )))
            }
        })
    }

    /// Decode from the compact binary wire format (`DDS2`, with legacy
    /// `DDS1` fallback), reconstructing whichever variant was encoded.
    pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
        Self::from_payload(&SketchPayload::decode(bytes)?)
    }
}

/// Shared reconstruction logic for `from_payload` implementations.
///
/// Validates the mapping discriminant and boundedness but deliberately
/// **not** the store discriminant: a caller reaching for a concrete preset
/// type has already decided the store family, and legacy `DDS1` payloads
/// only carry a guessed one (see the module docs). Runtime store dispatch
/// belongs to [`AnyDDSketch::from_payload`], where the byte is
/// authoritative.
fn rebuild<M: IndexMapping, SP: Store, SN: Store>(
    payload: &SketchPayload,
    mapping: M,
    positive: SP,
    negative: SN,
) -> Result<DDSketch<M, SP, SN>, SketchError> {
    if payload.kind != mapping.kind() as u8 {
        return Err(SketchError::Decode(format!(
            "payload mapping kind {} does not match target {:?}",
            payload.kind,
            mapping.kind()
        )));
    }
    let mut sketch = DDSketch::from_parts(mapping, positive, negative);
    sketch.load(
        payload.zero_count,
        payload.min,
        payload.max,
        payload.sum,
        &payload.positive,
        &payload.negative,
    );
    Ok(sketch)
}

macro_rules! impl_from_payload {
    ($ty:ty, $ctor:expr, $doc:literal) => {
        impl $ty {
            #[doc = $doc]
            pub fn from_payload(payload: &SketchPayload) -> Result<Self, SketchError> {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(payload)
            }

            /// Decode from the compact binary wire format.
            pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
                Self::from_payload(&SketchPayload::decode(bytes)?)
            }
        }
    };
}

impl_from_payload!(
    UnboundedDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::DenseStore::new(),
            crate::store::DenseStore::new(),
        )
    },
    "Reconstruct an unbounded sketch from a payload."
);

impl_from_payload!(
    BoundedDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("bounded sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a bounded (collapsing) sketch from a payload."
);

impl_from_payload!(
    FastDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("fast sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::CubicInterpolatedMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a fast (cubic-mapping) sketch from a payload."
);

impl_from_payload!(
    SparseDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::SparseStore::new(),
            crate::store::SparseStore::new(),
        )
    },
    "Reconstruct a sparse sketch from a payload."
);

impl_from_payload!(
    PaperExactDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| {
                SketchError::Decode("paper-exact sketch requires bin_limit > 0".into())
            })?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingSparseStore::new(limit),
            crate::store::CollapsingSparseStore::new(limit),
        )
    },
    "Reconstruct an Algorithm-3-exact sketch from a payload."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    fn populated() -> BoundedDDSketch {
        let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=1000 {
            s.add(i as f64 * 0.01).unwrap();
        }
        for i in 1..=50 {
            s.add(-(i as f64)).unwrap();
        }
        s.add(0.0).unwrap();
        s
    }

    #[test]
    fn roundtrip_preserves_state_exactly() {
        let s = populated();
        let bytes = s.encode();
        let d = BoundedDDSketch::decode(&bytes).unwrap();
        assert_eq!(d.count(), s.count());
        assert_eq!(d.zero_count(), s.zero_count());
        assert_eq!(d.min(), s.min());
        assert_eq!(d.max(), s.max());
        assert_eq!(d.sum(), s.sum());
        assert_eq!(d.to_payload(), s.to_payload());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.quantile(q).unwrap(), s.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn roundtrip_empty_sketch() {
        let s = presets::unbounded(0.02).unwrap();
        let d = presets::UnboundedDDSketch::decode(&s.encode()).unwrap();
        assert!(d.is_empty());
        assert!((d.relative_accuracy() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn roundtrip_all_presets() {
        let mut u = presets::unbounded(0.01).unwrap();
        let mut f = presets::fast(0.01, 512).unwrap();
        let mut sp = presets::sparse(0.01).unwrap();
        let mut pe = presets::paper_exact(0.01, 512).unwrap();
        for i in 1..200 {
            let v = (i * i) as f64;
            u.add(v).unwrap();
            f.add(v).unwrap();
            sp.add(v).unwrap();
            pe.add(v).unwrap();
        }
        assert_eq!(
            presets::UnboundedDDSketch::decode(&u.encode())
                .unwrap()
                .to_payload(),
            u.to_payload()
        );
        assert_eq!(
            presets::FastDDSketch::decode(&f.encode())
                .unwrap()
                .to_payload(),
            f.to_payload()
        );
        assert_eq!(
            presets::SparseDDSketch::decode(&sp.encode())
                .unwrap()
                .to_payload(),
            sp.to_payload()
        );
        assert_eq!(
            presets::PaperExactDDSketch::decode(&pe.encode())
                .unwrap()
                .to_payload(),
            pe.to_payload()
        );
    }

    #[test]
    fn decode_rejects_wrong_kind() {
        let s = populated(); // logarithmic kind
        let bytes = s.encode();
        assert!(matches!(
            presets::FastDDSketch::decode(&bytes),
            Err(SketchError::Decode(_))
        ));
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(SketchPayload::decode(b"").is_err());
        assert!(SketchPayload::decode(b"XXXX").is_err());
        assert!(SketchPayload::decode(b"DDS1").is_err());
        let bytes = populated().encode();
        // Every strict prefix must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(
                SketchPayload::decode(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
        // Trailing garbage must fail too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SketchPayload::decode(&extended).is_err());
    }

    #[test]
    fn decode_rejects_hostile_bin_count() {
        // Header claiming 2^40 bins with a tiny body must fail fast.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0); // kind
        buf.push(0); // store
        buf.extend_from_slice(&0.01f64.to_le_bytes());
        put_varint(&mut buf, 0); // limit
        put_varint(&mut buf, 0); // zero
        buf.extend_from_slice(&f64::INFINITY.to_le_bytes());
        buf.extend_from_slice(&f64::NEG_INFINITY.to_le_bytes());
        buf.extend_from_slice(&0f64.to_le_bytes());
        put_varint(&mut buf, 1 << 40); // absurd bin count
        assert!(SketchPayload::decode(&buf).is_err());
    }

    /// Re-encode a payload in the legacy `DDS1` layout (no store byte) so
    /// the fallback reader can be regression-tested against real v1 bytes.
    fn encode_v1(payload: &SketchPayload) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.put_u8(payload.kind);
        buf.put_f64_le(payload.relative_accuracy);
        put_varint(&mut buf, payload.bin_limit);
        put_varint(&mut buf, payload.zero_count);
        buf.put_f64_le(payload.min);
        buf.put_f64_le(payload.max);
        buf.put_f64_le(payload.sum);
        put_bins(&mut buf, &payload.positive);
        put_bins(&mut buf, &payload.negative);
        buf
    }

    /// The DDS2 store byte closes the v1 ambiguity: sparse, unbounded and
    /// paper-exact payloads — indistinguishable or conflated under v1 —
    /// each decode back to their own variant with no caller-side type
    /// knowledge.
    #[test]
    fn any_decode_distinguishes_every_variant() {
        for config in crate::SketchConfig::all(0.01, 512) {
            let mut s = config.build().unwrap();
            for i in 1..200 {
                s.add(i as f64 * 1.7).unwrap();
            }
            let decoded = AnyDDSketch::decode(&s.encode()).unwrap();
            assert_eq!(decoded.config(), config, "store byte must disambiguate");
            assert_eq!(decoded.to_payload(), s.to_payload());
        }
        // The pair that was literally indistinguishable under DDS1
        // (both encoded bin_limit = 0):
        let sparse = crate::SketchConfig::sparse(0.01).build().unwrap();
        let unbounded = crate::SketchConfig::unbounded(0.01).build().unwrap();
        assert!(matches!(
            AnyDDSketch::decode(&sparse.encode()).unwrap(),
            AnyDDSketch::Sparse(_)
        ));
        assert!(matches!(
            AnyDDSketch::decode(&unbounded.encode()).unwrap(),
            AnyDDSketch::Unbounded(_)
        ));
        // And the bounded pair DDS1 conflated with collapsing-dense:
        let paper = crate::SketchConfig::paper_exact(0.01, 512).build().unwrap();
        assert!(matches!(
            AnyDDSketch::decode(&paper.encode()).unwrap(),
            AnyDDSketch::PaperExact(_)
        ));
    }

    /// Legacy `DDS1` bytes still decode, via the documented heuristic:
    /// `bin_limit > 0` reads as collapsing dense stores, `bin_limit == 0`
    /// as unbounded dense stores. The heuristic is *wrong* for v1 sparse
    /// and paper-exact producers — that loss is inherent to v1 and the
    /// reason DDS2 exists; this test pins down exactly what a v1 payload
    /// turns into.
    #[test]
    fn legacy_v1_fallback_applies_documented_heuristic() {
        let mut values = Vec::new();
        for i in 1..300 {
            values.push((i * i) as f64 * 0.01);
        }

        // Faithful cases: v1 bytes from the presets the heuristic targets.
        let mut bounded = presets::logarithmic_collapsing(0.01, 512).unwrap();
        let mut fast = presets::fast(0.01, 512).unwrap();
        let mut unbounded = presets::unbounded(0.01).unwrap();
        for &v in &values {
            bounded.add(v).unwrap();
            fast.add(v).unwrap();
            unbounded.add(v).unwrap();
        }
        let decoded = AnyDDSketch::decode(&encode_v1(&bounded.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Bounded(_)));
        assert_eq!(decoded.count(), bounded.count());
        let decoded = AnyDDSketch::decode(&encode_v1(&fast.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Fast(_)));
        let decoded = AnyDDSketch::decode(&encode_v1(&unbounded.to_payload())).unwrap();
        assert!(matches!(decoded, AnyDDSketch::Unbounded(_)));

        // Lossy cases: the heuristic's documented misreadings.
        let mut sparse = presets::sparse(0.01).unwrap();
        let mut paper = presets::paper_exact(0.01, 512).unwrap();
        for &v in &values {
            sparse.add(v).unwrap();
            paper.add(v).unwrap();
        }
        let decoded = AnyDDSketch::decode(&encode_v1(&sparse.to_payload())).unwrap();
        assert!(
            matches!(decoded, AnyDDSketch::Unbounded(_)),
            "v1 sparse payloads are indistinguishable from unbounded ones"
        );
        // The bins themselves survive the store-family misreading intact.
        assert_eq!(
            decoded.positive_bins(),
            sparse.positive_store().bins_ascending()
        );
        let decoded = AnyDDSketch::decode(&encode_v1(&paper.to_payload())).unwrap();
        assert!(
            matches!(decoded, AnyDDSketch::Bounded(_)),
            "v1 bounded payloads all read as collapsing-dense"
        );

        // Statically-typed decoding of v1 bytes keeps working: the preset
        // constructors ignore the (guessed) store byte entirely.
        let restored = BoundedDDSketch::decode(&encode_v1(&bounded.to_payload())).unwrap();
        assert_eq!(restored.to_payload(), bounded.to_payload());
        let restored = SparseDDSketch::decode(&encode_v1(&sparse.to_payload())).unwrap();
        assert_eq!(restored.count(), sparse.count());
    }

    #[test]
    fn any_from_payload_rejects_inconsistent_store_and_limit() {
        let mut s = presets::sparse(0.01).unwrap();
        s.add(1.0).unwrap();
        let mut payload = s.to_payload();
        payload.bin_limit = 64; // unbounded store with a bound
        assert!(matches!(
            AnyDDSketch::from_payload(&payload),
            Err(SketchError::Decode(_))
        ));
        let mut b = presets::logarithmic_collapsing(0.01, 64).unwrap();
        b.add(1.0).unwrap();
        let mut payload = b.to_payload();
        payload.bin_limit = 0; // bounded store without a bound
        assert!(matches!(
            AnyDDSketch::from_payload(&payload),
            Err(SketchError::Decode(_))
        ));
        // Unknown store discriminant is rejected outright.
        let mut payload = b.to_payload();
        payload.store = 200;
        assert!(AnyDDSketch::from_payload(&payload).is_err());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn encoding_is_compact() {
        // 1000 adjacent buckets with count 1 should take ~2 bytes each.
        let mut s = presets::unbounded(0.01).unwrap();
        for i in 0..1000 {
            s.add(1.0210_f64.powi(i)).unwrap();
        }
        let bytes = s.encode();
        assert!(
            bytes.len() < 1000 * 3 + 64,
            "encoding too large: {} bytes for 1000 bins",
            bytes.len()
        );
    }

    proptest! {
        #[test]
        fn prop_payload_roundtrip(values in proptest::collection::vec(-1e9f64..1e9, 0..300)) {
            let mut s = presets::logarithmic_collapsing(0.02, 1024).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let decoded = BoundedDDSketch::decode(&s.encode()).unwrap();
            prop_assert_eq!(decoded.to_payload(), s.to_payload());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = SketchPayload::decode(&bytes);
        }
    }
}
