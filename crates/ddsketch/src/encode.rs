//! Compact binary codec and serde payload for wire transfer.
//!
//! DDSketch is designed for agents that ship sketches to a central
//! monitoring system every few seconds (paper Figure 1), so a compact,
//! versioned wire format matters. The encoding is:
//!
//! ```text
//! magic   : 4 bytes  "DDS1"
//! kind    : u8       mapping family (MappingKind)
//! alpha   : f64 LE   relative accuracy
//! limit   : varint   bucket limit (0 = unbounded)
//! zero    : varint   zero-bucket count
//! min,max,sum : 3 × f64 LE
//! positive: bins     (see below)
//! negative: bins
//!
//! bins    : varint n, then if n > 0:
//!           zigzag-varint first_index,
//!           n × varint count interleaved with (n−1) × varint gap
//!           where gap = index_delta − 1 (indices are strictly ascending)
//! ```
//!
//! Counts and index gaps are LEB128 varints, so a warm sketch with mostly
//! small dense counts costs ~2 bytes per non-empty bucket.

use bytes::{Buf, BufMut};

use crate::mapping::{IndexMapping, MappingKind};
use crate::presets::{
    BoundedDDSketch, FastDDSketch, PaperExactDDSketch, SparseDDSketch, UnboundedDDSketch,
};
use crate::sketch::DDSketch;
use crate::store::Store;
use sketch_core::SketchError;

const MAGIC: &[u8; 4] = b"DDS1";

/// Mapping-agnostic serializable snapshot of a sketch's state.
///
/// Any `DDSketch` converts to a payload with [`DDSketch::to_payload`], and
/// each preset converts back via its `from_payload` constructor. (The
/// offline build has no `serde`; the plain-data payload struct is the
/// integration point where a serde derive would go.)
#[derive(Debug, Clone, PartialEq)]
pub struct SketchPayload {
    /// Mapping family discriminant ([`MappingKind`] as u8).
    pub kind: u8,
    /// Relative accuracy α.
    pub relative_accuracy: f64,
    /// Bucket limit of the positive store; 0 means unbounded.
    pub bin_limit: u64,
    /// Exact zero-bucket count.
    pub zero_count: u64,
    /// Tracked minimum (`+∞` when empty).
    pub min: f64,
    /// Tracked maximum (`−∞` when empty).
    pub max: f64,
    /// Exact sum of inserted values.
    pub sum: f64,
    /// Positive-store bins, ascending index.
    pub positive: Vec<(i32, u64)>,
    /// Negative-store bins, ascending index (of |x|).
    pub negative: Vec<(i32, u64)>,
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, SketchError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(SketchError::Decode("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(SketchError::Decode("varint overflow".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_bins(buf: &mut Vec<u8>, bins: &[(i32, u64)]) {
    put_varint(buf, bins.len() as u64);
    let mut prev: Option<i32> = None;
    for &(idx, count) in bins {
        match prev {
            None => put_varint(buf, zigzag(idx as i64)),
            Some(p) => {
                debug_assert!(idx > p, "bins must be strictly ascending");
                put_varint(buf, (idx as i64 - p as i64 - 1) as u64);
            }
        }
        put_varint(buf, count);
        prev = Some(idx);
    }
}

fn get_bins(buf: &mut &[u8]) -> Result<Vec<(i32, u64)>, SketchError> {
    let n = get_varint(buf)? as usize;
    // Each bin needs at least 2 bytes; reject absurd lengths before
    // allocating (defends against corrupted/hostile input).
    if n > buf.remaining() {
        return Err(SketchError::Decode(format!(
            "bin count {n} exceeds payload size"
        )));
    }
    let mut bins = Vec::with_capacity(n);
    let mut prev: Option<i64> = None;
    for _ in 0..n {
        let idx = match prev {
            None => unzigzag(get_varint(buf)?),
            Some(p) => p
                .checked_add(get_varint(buf)? as i64)
                .and_then(|v| v.checked_add(1))
                .ok_or_else(|| SketchError::Decode("index overflow".into()))?,
        };
        if idx < i32::MIN as i64 || idx > i32::MAX as i64 {
            return Err(SketchError::Decode(format!(
                "bin index {idx} out of i32 range"
            )));
        }
        let count = get_varint(buf)?;
        if count == 0 {
            return Err(SketchError::Decode("zero-count bin".into()));
        }
        bins.push((idx as i32, count));
        prev = Some(idx);
    }
    Ok(bins)
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, SketchError> {
    if buf.remaining() < 8 {
        return Err(SketchError::Decode("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

impl SketchPayload {
    /// Serialize to the compact binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 4 * (self.positive.len() + self.negative.len()));
        buf.put_slice(MAGIC);
        buf.put_u8(self.kind);
        buf.put_f64_le(self.relative_accuracy);
        put_varint(&mut buf, self.bin_limit);
        put_varint(&mut buf, self.zero_count);
        buf.put_f64_le(self.min);
        buf.put_f64_le(self.max);
        buf.put_f64_le(self.sum);
        put_bins(&mut buf, &self.positive);
        put_bins(&mut buf, &self.negative);
        buf
    }

    /// Decode from the compact binary wire format.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, SketchError> {
        let buf = &mut bytes;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(SketchError::Decode("bad magic".into()));
        }
        buf.advance(4);
        if !buf.has_remaining() {
            return Err(SketchError::Decode("truncated header".into()));
        }
        let kind = buf.get_u8();
        MappingKind::from_u8(kind)?;
        let relative_accuracy = get_f64(buf)?;
        let bin_limit = get_varint(buf)?;
        let zero_count = get_varint(buf)?;
        let min = get_f64(buf)?;
        let max = get_f64(buf)?;
        let sum = get_f64(buf)?;
        let positive = get_bins(buf)?;
        let negative = get_bins(buf)?;
        if buf.has_remaining() {
            return Err(SketchError::Decode("trailing bytes".into()));
        }
        Ok(Self {
            kind,
            relative_accuracy,
            bin_limit,
            zero_count,
            min,
            max,
            sum,
            positive,
            negative,
        })
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> DDSketch<M, SP, SN> {
    /// Snapshot this sketch into a serializable payload.
    pub fn to_payload(&self) -> SketchPayload {
        SketchPayload {
            kind: self.mapping().kind() as u8,
            relative_accuracy: self.mapping().relative_accuracy(),
            bin_limit: self.positive_store().bin_limit().unwrap_or(0) as u64,
            zero_count: self.zero_count(),
            min: self.min().unwrap_or(f64::INFINITY),
            max: self.max().unwrap_or(f64::NEG_INFINITY),
            sum: self.sum(),
            positive: self.positive_store().bins_ascending(),
            negative: self.negative_store().bins_ascending(),
        }
    }

    /// Serialize to the compact binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.to_payload().encode()
    }
}

/// Shared reconstruction logic for `from_payload` implementations.
fn rebuild<M: IndexMapping, SP: Store, SN: Store>(
    payload: &SketchPayload,
    mapping: M,
    positive: SP,
    negative: SN,
) -> Result<DDSketch<M, SP, SN>, SketchError> {
    if payload.kind != mapping.kind() as u8 {
        return Err(SketchError::Decode(format!(
            "payload mapping kind {} does not match target {:?}",
            payload.kind,
            mapping.kind()
        )));
    }
    let mut sketch = DDSketch::from_parts(mapping, positive, negative);
    sketch.load(
        payload.zero_count,
        payload.min,
        payload.max,
        payload.sum,
        &payload.positive,
        &payload.negative,
    );
    Ok(sketch)
}

macro_rules! impl_from_payload {
    ($ty:ty, $ctor:expr, $doc:literal) => {
        impl $ty {
            #[doc = $doc]
            pub fn from_payload(payload: &SketchPayload) -> Result<Self, SketchError> {
                #[allow(clippy::redundant_closure_call)]
                ($ctor)(payload)
            }

            /// Decode from the compact binary wire format.
            pub fn decode(bytes: &[u8]) -> Result<Self, SketchError> {
                Self::from_payload(&SketchPayload::decode(bytes)?)
            }
        }
    };
}

impl_from_payload!(
    UnboundedDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::DenseStore::new(),
            crate::store::DenseStore::new(),
        )
    },
    "Reconstruct an unbounded sketch from a payload."
);

impl_from_payload!(
    BoundedDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("bounded sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a bounded (collapsing) sketch from a payload."
);

impl_from_payload!(
    FastDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| SketchError::Decode("fast sketch requires bin_limit > 0".into()))?;
        rebuild(
            p,
            crate::mapping::CubicInterpolatedMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingLowestDenseStore::new(limit),
            crate::store::CollapsingHighestDenseStore::new(limit),
        )
    },
    "Reconstruct a fast (cubic-mapping) sketch from a payload."
);

impl_from_payload!(
    SparseDDSketch,
    |p: &SketchPayload| {
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::SparseStore::new(),
            crate::store::SparseStore::new(),
        )
    },
    "Reconstruct a sparse sketch from a payload."
);

impl_from_payload!(
    PaperExactDDSketch,
    |p: &SketchPayload| {
        let limit = usize::try_from(p.bin_limit)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| {
                SketchError::Decode("paper-exact sketch requires bin_limit > 0".into())
            })?;
        rebuild(
            p,
            crate::mapping::LogarithmicMapping::new(p.relative_accuracy)?,
            crate::store::CollapsingSparseStore::new(limit),
            crate::store::CollapsingSparseStore::new(limit),
        )
    },
    "Reconstruct an Algorithm-3-exact sketch from a payload."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use proptest::prelude::*;

    fn populated() -> BoundedDDSketch {
        let mut s = presets::logarithmic_collapsing(0.01, 2048).unwrap();
        for i in 1..=1000 {
            s.add(i as f64 * 0.01).unwrap();
        }
        for i in 1..=50 {
            s.add(-(i as f64)).unwrap();
        }
        s.add(0.0).unwrap();
        s
    }

    #[test]
    fn roundtrip_preserves_state_exactly() {
        let s = populated();
        let bytes = s.encode();
        let d = BoundedDDSketch::decode(&bytes).unwrap();
        assert_eq!(d.count(), s.count());
        assert_eq!(d.zero_count(), s.zero_count());
        assert_eq!(d.min(), s.min());
        assert_eq!(d.max(), s.max());
        assert_eq!(d.sum(), s.sum());
        assert_eq!(d.to_payload(), s.to_payload());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.quantile(q).unwrap(), s.quantile(q).unwrap(), "q = {q}");
        }
    }

    #[test]
    fn roundtrip_empty_sketch() {
        let s = presets::unbounded(0.02).unwrap();
        let d = presets::UnboundedDDSketch::decode(&s.encode()).unwrap();
        assert!(d.is_empty());
        assert!((d.relative_accuracy() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn roundtrip_all_presets() {
        let mut u = presets::unbounded(0.01).unwrap();
        let mut f = presets::fast(0.01, 512).unwrap();
        let mut sp = presets::sparse(0.01).unwrap();
        let mut pe = presets::paper_exact(0.01, 512).unwrap();
        for i in 1..200 {
            let v = (i * i) as f64;
            u.add(v).unwrap();
            f.add(v).unwrap();
            sp.add(v).unwrap();
            pe.add(v).unwrap();
        }
        assert_eq!(
            presets::UnboundedDDSketch::decode(&u.encode())
                .unwrap()
                .to_payload(),
            u.to_payload()
        );
        assert_eq!(
            presets::FastDDSketch::decode(&f.encode())
                .unwrap()
                .to_payload(),
            f.to_payload()
        );
        assert_eq!(
            presets::SparseDDSketch::decode(&sp.encode())
                .unwrap()
                .to_payload(),
            sp.to_payload()
        );
        assert_eq!(
            presets::PaperExactDDSketch::decode(&pe.encode())
                .unwrap()
                .to_payload(),
            pe.to_payload()
        );
    }

    #[test]
    fn decode_rejects_wrong_kind() {
        let s = populated(); // logarithmic kind
        let bytes = s.encode();
        assert!(matches!(
            presets::FastDDSketch::decode(&bytes),
            Err(SketchError::Decode(_))
        ));
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(SketchPayload::decode(b"").is_err());
        assert!(SketchPayload::decode(b"XXXX").is_err());
        assert!(SketchPayload::decode(b"DDS1").is_err());
        let bytes = populated().encode();
        // Every strict prefix must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(
                SketchPayload::decode(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
        // Trailing garbage must fail too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SketchPayload::decode(&extended).is_err());
    }

    #[test]
    fn decode_rejects_hostile_bin_count() {
        // Header claiming 2^40 bins with a tiny body must fail fast.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0); // kind
        buf.extend_from_slice(&0.01f64.to_le_bytes());
        put_varint(&mut buf, 0); // limit
        put_varint(&mut buf, 0); // zero
        buf.extend_from_slice(&f64::INFINITY.to_le_bytes());
        buf.extend_from_slice(&f64::NEG_INFINITY.to_le_bytes());
        buf.extend_from_slice(&0f64.to_le_bytes());
        put_varint(&mut buf, 1 << 40); // absurd bin count
        assert!(SketchPayload::decode(&buf).is_err());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn encoding_is_compact() {
        // 1000 adjacent buckets with count 1 should take ~2 bytes each.
        let mut s = presets::unbounded(0.01).unwrap();
        for i in 0..1000 {
            s.add(1.0210_f64.powi(i)).unwrap();
        }
        let bytes = s.encode();
        assert!(
            bytes.len() < 1000 * 3 + 64,
            "encoding too large: {} bytes for 1000 bins",
            bytes.len()
        );
    }

    proptest! {
        #[test]
        fn prop_payload_roundtrip(values in proptest::collection::vec(-1e9f64..1e9, 0..300)) {
            let mut s = presets::logarithmic_collapsing(0.02, 1024).unwrap();
            for &v in &values {
                s.add(v).unwrap();
            }
            let decoded = BoundedDDSketch::decode(&s.encode()).unwrap();
            prop_assert_eq!(decoded.to_payload(), s.to_payload());
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = SketchPayload::decode(&bytes);
        }
    }
}
