//! Inlineable natural logarithm for the index hot path.
//!
//! `f64::ln` is an opaque libm call: besides its own cost, the call
//! boundary forces register spills and stops the compiler from pipelining
//! independent loop iterations, which caps batched index computation at
//! the call latency. This module implements the modern table-based `log`
//! design (as used by glibc 2.28+/ARM optimized-routines): reduce
//! `x = m·2^k`, look up a 128-entry table of `(1/c, ln c)` pairs keyed by
//! the top mantissa bits, and evaluate a short division-free polynomial in
//! `r = m/c − 1` with `|r| ≤ 2⁻⁸`:
//!
//! ```text
//! ln x = k·ln2 + ln c + ln(1+r),   ln(1+r) ≈ r − r²/2 + r³/3 − r⁴/4 + r⁵/5
//! ```
//!
//! The whole computation inlines and has no divide, so batched loops
//! overlap iterations instead of serializing on a libm call.
//!
//! **Accuracy.** The polynomial truncation error is `r⁶/6 ≤ 6.2e-16`
//! absolute; with table and rounding errors the result stays within a few
//! ulp of the true logarithm (verified against libm by the tests below).
//! For the index mapping this moves bucket decisions only for values
//! within ~1e-13 of a bucket boundary — far inside the conformance
//! suite's tolerances — and the scalar and batched paths share this
//! function, so they always agree **bit-for-bit**.
//!
//! Non-positive, subnormal, infinite, and NaN inputs fall back to
//! `f64::ln`; the mappings' min/max indexable bounds keep the hot path on
//! positive normal values.

use std::sync::OnceLock;

#[allow(clippy::excessive_precision)] // written as in fdlibm; rounds to the intended bits
const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-01; // low 21 bits zero: k·LN2_HI is exact
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

const TABLE_BITS: u32 = 7;
const TABLE_SIZE: usize = 1 << TABLE_BITS;

struct LnTable {
    /// `1/c` for the midpoint `c` of each mantissa interval.
    invc: [f64; TABLE_SIZE],
    /// `−ln(invc)` — paired with the *rounded* `invc` so the pair is
    /// exactly consistent.
    logc: [f64; TABLE_SIZE],
}

fn table() -> &'static LnTable {
    static TABLE: OnceLock<LnTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = LnTable {
            invc: [0.0; TABLE_SIZE],
            logc: [0.0; TABLE_SIZE],
        };
        for j in 0..TABLE_SIZE {
            // Interval j covers mantissas [1 + j/128, 1 + (j+1)/128).
            let c = 1.0 + (j as f64 + 0.5) / TABLE_SIZE as f64;
            t.invc[j] = 1.0 / c;
            t.logc[j] = -(t.invc[j].ln());
        }
        t
    })
}

/// Core computation against an already-fetched table; lets batch loops
/// fetch the table once instead of per value.
#[inline(always)]
fn fast_ln_with(t: &LnTable, x: f64) -> f64 {
    let bits = x.to_bits();
    let exponent_field = (bits >> 52) as u32;
    // Cold fallback: non-positive (sign bit set), subnormal (biased
    // exponent 0), infinity / NaN (biased exponent 0x7ff).
    if exponent_field.wrapping_sub(1) >= 0x7fe {
        return x.ln();
    }
    let k = exponent_field as i64 - 1023;
    let dk = k as f64;
    let mantissa = bits & 0x000f_ffff_ffff_ffff;
    if mantissa == 0 {
        // Exact powers of two — keeps ln(1.0) == 0.0 exactly.
        return dk * LN2_HI + dk * LN2_LO;
    }
    let j = (mantissa >> (52 - TABLE_BITS)) as usize;
    let m = f64::from_bits(mantissa | (1023u64 << 52));
    let r = m * t.invc[j] - 1.0;
    // ln(1+r) = r − r²/2 + r³/3 − r⁴/4 + r⁵/5 + O(r⁶), |r| ≤ 2⁻⁸,
    // evaluated in Estrin form to shorten the dependency chain.
    let r2 = r * r;
    let a = 0.5 - r * THIRD;
    let b = 0.25 - r * 0.2;
    let q = a + r2 * b;
    let p = r - r2 * q;
    dk * LN2_HI + (dk * LN2_LO + (t.logc[j] + p))
}

/// Natural logarithm, inlineable and division-free on the hot path.
#[inline]
pub(crate) fn fast_ln(x: f64) -> f64 {
    fast_ln_with(table(), x)
}

/// Shared loop body for the batched index kernel. `HW_CEIL` selects
/// `f64::ceil` (a single `vroundsd` when the surrounding function enables
/// AVX) over the portable [`super::ceil_to_i32`]; both compute the exact
/// ceiling, so results are identical either way — only the instruction
/// count differs. The floating-point math itself is the same expression in
/// both variants (no FMA contraction), keeping every dispatch path
/// bit-identical.
#[inline(always)]
fn ln_index_batch_body<const HW_CEIL: bool>(values: &[f64], multiplier: f64, out: &mut [i32]) {
    assert_eq!(
        values.len(),
        out.len(),
        "index_batch buffer length mismatch"
    );
    let t = table();
    for (v, o) in values.iter().zip(out.iter_mut()) {
        let scaled = fast_ln_with(t, *v) * multiplier;
        *o = if HW_CEIL {
            scaled.ceil() as i32
        } else {
            super::ceil_to_i32(scaled)
        };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn ln_index_batch_avx(values: &[f64], multiplier: f64, out: &mut [i32]) {
    ln_index_batch_body::<true>(values, multiplier, out);
}

/// `⌈fast_ln(v)·multiplier⌉` for every value, written into `out` — the
/// logarithmic mapping's batched index kernel, kept here so the table is
/// fetched once and the whole loop body inlines. Dispatches once per batch
/// to an AVX-compiled variant when the CPU supports it.
pub(crate) fn ln_index_batch(values: &[f64], multiplier: f64, out: &mut [i32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: feature presence checked at runtime.
        unsafe { ln_index_batch_avx(values, multiplier, out) };
        return;
    }
    ln_index_batch_body::<false>(values, multiplier, out);
}

/// Fused variant of [`ln_index_batch`] that also folds the stream
/// statistics (`min`, `max`, running `sum` from `sum0`) into the same
/// loop; the stat chains execute in the shadow of the logarithm's ILP.
/// Safe on arbitrary inputs — non-indexable values produce unspecified
/// `out` entries via the `fast_ln` fallback, and the caller discards them.
#[inline(always)]
fn ln_index_batch_stats_body<const HW_CEIL: bool>(
    values: &[f64],
    multiplier: f64,
    sum0: f64,
    out: &mut [i32],
) -> (f64, f64, f64) {
    assert_eq!(
        values.len(),
        out.len(),
        "index_batch buffer length mismatch"
    );
    let t = table();
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sum = sum0;
    for (v, o) in values.iter().zip(out.iter_mut()) {
        let v = *v;
        let scaled = fast_ln_with(t, v) * multiplier;
        *o = if HW_CEIL {
            scaled.ceil() as i32
        } else {
            super::ceil_to_i32(scaled)
        };
        min = if v < min { v } else { min };
        max = if v > max { v } else { max };
        sum += v;
    }
    (min, max, sum)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn ln_index_batch_stats_avx(
    values: &[f64],
    multiplier: f64,
    sum0: f64,
    out: &mut [i32],
) -> (f64, f64, f64) {
    ln_index_batch_stats_body::<true>(values, multiplier, sum0, out)
}

/// Dispatching front end for the fused stats+index kernel.
pub(crate) fn ln_index_batch_stats(
    values: &[f64],
    multiplier: f64,
    sum0: f64,
    out: &mut [i32],
) -> (f64, f64, f64) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: feature presence checked at runtime.
        return unsafe { ln_index_batch_stats_avx(values, multiplier, sum0, out) };
    }
    ln_index_batch_stats_body::<false>(values, multiplier, sum0, out)
}

#[allow(clippy::excessive_precision)]
const THIRD: f64 = 0.333_333_333_333_333_333;

#[cfg(test)]
mod tests {
    use super::fast_ln;

    /// Error bound: a few ulp of the result plus the absolute polynomial
    /// truncation floor (which dominates when `ln x` is tiny).
    fn assert_close(x: f64) {
        let got = fast_ln(x);
        let want = x.ln();
        let tol = 2e-15 + 4.0 * f64::EPSILON * want.abs();
        assert!(
            (got - want).abs() <= tol,
            "x = {x:e}: fast_ln {got} vs ln {want} (diff {:e}, tol {tol:e})",
            (got - want).abs()
        );
    }

    #[test]
    fn exact_special_values() {
        assert_eq!(fast_ln(1.0), 0.0);
        assert_eq!(fast_ln(4.0), 2.0 * fast_ln(2.0));
        assert_close(std::f64::consts::E);
        assert_close(2.0);
    }

    #[test]
    fn fallback_handles_cold_inputs() {
        assert!(fast_ln(f64::NAN).is_nan());
        assert!(fast_ln(-1.0).is_nan());
        assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
        assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
        // Subnormal: delegate to libm.
        let sub = 1e-310;
        assert_eq!(fast_ln(sub), sub.ln());
    }

    #[test]
    fn tracks_libm_across_the_normal_range() {
        // Geometric sweep across the full normal range plus a dense linear
        // sweep around 1 where cancellation is hardest.
        let mut x = 1e-300_f64;
        while x < 1e300 {
            assert_close(x);
            x *= 1.000_37;
        }
        let mut x = 0.5_f64;
        while x < 2.0 {
            assert_close(x);
            x += 1.9e-6;
        }
    }

    #[test]
    fn pseudorandom_mantissas_track_libm() {
        // Deterministic xorshift over raw bit patterns of positive normals.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Clamp exponent into the normal range, clear the sign.
            let exp = 1 + (state >> 52) % 2045;
            let bits = (exp << 52) | (state & 0x000f_ffff_ffff_ffff);
            assert_close(f64::from_bits(bits));
        }
    }

    #[test]
    fn monotone_over_fine_sweeps() {
        // The index mapping's monotonicity rests on fast_ln being monotone
        // at the granularity values actually differ; check dense sweeps
        // including table-interval boundaries.
        for start in [0.9999, 1.0038, 1.0, 0.0313, 517.3] {
            let mut prev = fast_ln(start);
            let mut x = start;
            for _ in 0..20_000 {
                x *= 1.0 + 1e-7;
                let y = fast_ln(x);
                assert!(y >= prev, "fast_ln not monotone at {x}");
                prev = y;
            }
        }
    }
}
