//! Index mappings: value ⇄ bucket-index schemes with a relative-accuracy
//! guarantee.
//!
//! The paper (Section 2.1) divides `ℝ>0` into buckets
//! `B_i = (γ^(i−1), γ^i]` with `γ = (1+α)/(1−α)` and assigns
//! `i = ⌈log_γ x⌉`; the representative value `2γ^i/(γ+1)` is then an
//! α-accurate estimate of anything in the bucket (Lemma 2).
//!
//! Section 4 additionally evaluates *DDSketch (fast)*, which replaces the
//! exact logarithm with interpolations computed from the IEEE-754 bit
//! representation of the value: `log2(x)` is free to extract (the exponent
//! field), and the fractional part is approximated by a polynomial in the
//! significand. Those mappings trade a slightly larger number of buckets for
//! an index computation with no transcendental function calls.
//!
//! All mappings in this module uphold the same contract, which is
//! property-tested by the `conformance` test suite:
//!
//! 1. **Monotonicity**: `x ≤ y ⇒ index(x) ≤ index(y)`.
//! 2. **Membership**: `lower_bound(i) < x ≤ upper_bound(i)` whenever
//!    `index(x) = i` (up to 1-ulp slack at bucket boundaries).
//! 3. **α-accuracy**: `|value(index(x)) − x| ≤ α·x` for every indexable `x`.

mod cubic;
mod fastln;
mod linear;
mod log_like;
mod logarithmic;
mod quadratic;

pub use cubic::CubicInterpolatedMapping;
pub use linear::LinearInterpolatedMapping;
pub use logarithmic::LogarithmicMapping;
pub use quadratic::QuadraticInterpolatedMapping;

use sketch_core::SketchError;

/// Identifies the mapping family, used by the binary codec and for merge
/// compatibility checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MappingKind {
    /// Exact logarithm — memory-optimal bucket widths.
    Logarithmic = 0,
    /// Linear interpolation of `log2` between powers of two (~44% more
    /// buckets than optimal, fastest index computation).
    LinearInterpolated = 1,
    /// Quadratic interpolation (~8% more buckets).
    QuadraticInterpolated = 2,
    /// Cubic interpolation (~1% more buckets).
    CubicInterpolated = 3,
}

impl MappingKind {
    /// Decode from the codec byte.
    pub fn from_u8(b: u8) -> Result<Self, SketchError> {
        match b {
            0 => Ok(MappingKind::Logarithmic),
            1 => Ok(MappingKind::LinearInterpolated),
            2 => Ok(MappingKind::QuadraticInterpolated),
            3 => Ok(MappingKind::CubicInterpolated),
            other => Err(SketchError::Decode(format!("unknown mapping kind {other}"))),
        }
    }
}

/// A scheme assigning positive values to integer bucket indices such that
/// every value in a bucket is within relative error `α` of the bucket's
/// representative value.
pub trait IndexMapping: Clone + std::fmt::Debug + PartialEq {
    /// Construct a mapping of this family with relative accuracy `alpha`.
    ///
    /// Every mapping derives its entire state deterministically from `α`,
    /// so this reconstruction is **bit-identical** to the producer's
    /// original mapping — which is what lets the codec rebuild the exact
    /// bucket scheme from a wire payload's `(kind, α)` header alone (the
    /// decode-free [`crate::codec::SketchView`] walks lean on it).
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError>
    where
        Self: Sized;

    /// The relative accuracy `α` this mapping guarantees.
    fn relative_accuracy(&self) -> f64;

    /// `γ = (1+α)/(1−α)`: the maximal ratio between the upper and lower
    /// boundary of any bucket.
    fn gamma(&self) -> f64;

    /// Bucket index for `value`, which must lie within
    /// `[min_indexable_value(), max_indexable_value()]`.
    fn index(&self, value: f64) -> i32;

    /// Bucket indices for a batch of values, written into `out`
    /// (`out[i] = index(values[i])`, bit-identical to the scalar path).
    ///
    /// Every value must lie within the indexable range — the sketch's
    /// batched ingestion classifies values before calling this. The default
    /// loops [`IndexMapping::index`]; implementations override it with
    /// tight loops free of per-value branching so the compiler can
    /// vectorize the index computation.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `out` have different lengths.
    fn index_batch(&self, values: &[f64], out: &mut [i32]) {
        assert_eq!(
            values.len(),
            out.len(),
            "index_batch buffer length mismatch"
        );
        for (v, o) in values.iter().zip(out.iter_mut()) {
            *o = self.index(*v);
        }
    }

    /// Fused kernel behind the sketch's batched clean path: compute
    /// `out[i] = index(values[i])` **and** the running stream statistics
    /// in one pass, so the cheap min/max/sum dependency chains execute in
    /// the shadow of the index computation.
    ///
    /// Returns `(batch_min, batch_max, sum)` where the extremes are over
    /// the batch alone (`+∞`/`−∞` when empty) and `sum` continues from
    /// `sum0` in stream order — bit-identical to folding each value into a
    /// running scalar, which is what the scalar insertion path does.
    ///
    /// Unlike [`IndexMapping::index_batch`], `values` need **not** be
    /// indexable: the caller inspects the returned extremes and sum (NaN
    /// poisons the sum) to decide whether the batch was clean, and must
    /// discard `out` otherwise. When every value is positive and
    /// indexable, `out` matches the scalar [`IndexMapping::index`] exactly;
    /// otherwise its contents are unspecified (but writing them is safe).
    fn index_batch_stats(&self, values: &[f64], sum0: f64, out: &mut [i32]) -> (f64, f64, f64) {
        assert_eq!(
            values.len(),
            out.len(),
            "index_batch buffer length mismatch"
        );
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut sum = sum0;
        for &v in values {
            min = if v < min { v } else { min };
            max = if v > max { v } else { max };
            sum += v;
        }
        if min >= self.min_indexable_value() && max <= self.max_indexable_value() && !sum.is_nan() {
            self.index_batch(values, out);
        }
        (min, max, sum)
    }

    /// Representative value of bucket `index`: the harmonic midpoint
    /// `2·l·u/(l+u)` of the bucket `(l, u]`, which minimizes the worst-case
    /// relative error over the bucket (and equals the paper's
    /// `2γ^i/(γ+1)` for the logarithmic mapping).
    fn value(&self, index: i32) -> f64;

    /// Exclusive lower boundary of bucket `index`.
    fn lower_bound(&self, index: i32) -> f64;

    /// Inclusive upper boundary of bucket `index`.
    fn upper_bound(&self, index: i32) -> f64 {
        self.lower_bound(index.saturating_add(1))
    }

    /// Smallest positive value this mapping can index.
    ///
    /// Below this, either the bucket index would underflow `i32` or the
    /// value is subnormal (the interpolated mappings read IEEE-754 exponent
    /// bits, which subnormals do not have). The sketch routes smaller values
    /// to its exact zero bucket, per the paper's Section 2.2.
    fn min_indexable_value(&self) -> f64;

    /// Largest value this mapping can index without the index overflowing.
    fn max_indexable_value(&self) -> f64;

    /// Stable identifier for codec/compatibility purposes.
    fn kind(&self) -> MappingKind;

    /// Mapping name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Whether `self` and `other` define identical bucket boundaries, i.e.
    /// whether sketches using them can be merged exactly.
    fn is_mergeable_with(&self, other: &Self) -> bool {
        self.kind() == other.kind()
            && (self.relative_accuracy() - other.relative_accuracy()).abs() < 1e-12
    }
}

/// Validate a relative accuracy parameter and derive `γ = (1+α)/(1−α)`.
pub(crate) fn gamma_of(relative_accuracy: f64) -> Result<f64, SketchError> {
    if !(relative_accuracy.is_finite() && relative_accuracy > 0.0 && relative_accuracy < 1.0) {
        return Err(SketchError::InvalidConfig(format!(
            "relative accuracy must be in (0, 1), got {relative_accuracy}"
        )));
    }
    Ok((1.0 + relative_accuracy) / (1.0 - relative_accuracy))
}

/// Branch-free `x.ceil() as i32` for finite `x` within i32 range (which the
/// mappings' min/max indexable bounds guarantee).
///
/// `f64::ceil` lowers to a libm **call** on baseline x86-64 (no SSE4.1
/// `roundsd`), costing ~5 ns per value — several times the rest of an
/// interpolated index computation. Truncate-and-adjust uses only a
/// `cvttsd2si` and a compare, identical in result: for `t = trunc(x)`,
/// `ceil(x) = t + (x > t)`.
#[inline]
pub(crate) fn ceil_to_i32(x: f64) -> i32 {
    let t = x as i64;
    (t + i64::from(x > t as f64)) as i32
}

/// Decompose a positive normal `f64` into `(exponent, significand)` with
/// `x = significand · 2^exponent` and `significand ∈ [1, 2)`.
///
/// This is the "costless way to evaluate the logarithm to the base 2" the
/// paper refers to: a couple of bit operations on the IEEE-754
/// representation.
#[inline]
pub(crate) fn decompose(x: f64) -> (i64, f64) {
    debug_assert!(x >= f64::MIN_POSITIVE && x.is_finite());
    let bits = x.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let significand = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    (exponent, significand)
}

/// Recompose `significand · 2^exponent` (the inverse of [`decompose`]) for
/// `significand ∈ [1, 2)` and an exponent within the normal range.
#[inline]
pub(crate) fn recompose(exponent: i64, significand: f64) -> f64 {
    debug_assert!((1.0..2.0 + 1e-9).contains(&significand));
    // Clamp into the representable normal exponent range; the mapping's
    // min/max indexable bounds keep us inside it in practice.
    let e = exponent.clamp(-1022, 1023);
    significand * f64::from_bits(((e + 1023) as u64) << 52)
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every mapping implementation.
    use super::*;

    /// Check the three-part mapping contract for a specific value.
    pub(crate) fn check_value<M: IndexMapping>(m: &M, x: f64) {
        let alpha = m.relative_accuracy();
        let i = m.index(x);
        let rep = m.value(i);
        let rel_err = (rep - x).abs() / x;
        assert!(
            rel_err <= alpha * (1.0 + 1e-9) + 1e-12,
            "{}: value {x} -> index {i} -> rep {rep}: relative error {rel_err} > alpha {alpha}",
            m.name()
        );
        // Membership with 1-ulp slack at boundaries.
        let lo = m.lower_bound(i);
        let hi = m.upper_bound(i);
        assert!(
            lo * (1.0 - 1e-12) <= x && x <= hi * (1.0 + 1e-12),
            "{}: value {x} outside its bucket [{lo}, {hi}] (index {i})",
            m.name()
        );
    }

    /// Exercise the full contract over a geometric sweep of the indexable
    /// range plus boundary-adjacent values.
    pub(crate) fn run_suite<M: IndexMapping>(m: &M) {
        // Geometric sweep across ~60 orders of magnitude.
        let mut x = 1e-30_f64.max(m.min_indexable_value());
        let stop = 1e30_f64.min(m.max_indexable_value());
        while x < stop {
            check_value(m, x);
            x *= 1.7;
        }
        check_value(m, m.min_indexable_value());
        check_value(m, m.max_indexable_value());

        // Monotonicity over a fine local sweep.
        let mut prev_index = m.index(0.5);
        let mut v = 0.5;
        while v < 4.0 {
            let idx = m.index(v);
            assert!(idx >= prev_index, "{}: index not monotone at {v}", m.name());
            prev_index = idx;
            v *= 1.0 + 1e-4;
        }

        // Batched indexing must agree bit-for-bit with the scalar path.
        let mut values = Vec::new();
        let mut x = 1e-30_f64.max(m.min_indexable_value());
        let stop = 1e30_f64.min(m.max_indexable_value());
        while x < stop {
            values.push(x);
            x *= 1.31;
        }
        values.push(m.min_indexable_value());
        values.push(m.max_indexable_value());
        let mut batch = vec![0i32; values.len()];
        m.index_batch(&values, &mut batch);
        for (v, &got) in values.iter().zip(&batch) {
            assert_eq!(
                got,
                m.index(*v),
                "{}: index_batch disagrees with index at {v}",
                m.name()
            );
        }

        // Bucket boundaries are increasing and consistent (probe only
        // indices whose buckets are representable for this mapping).
        let idx_lo = m.index(m.min_indexable_value()) + 1;
        let idx_hi = m.index(m.max_indexable_value()) - 1;
        for i in [-1000, -10, -1, 0, 1, 10, 1000].map(|i: i32| i.clamp(idx_lo, idx_hi)) {
            let lo = m.lower_bound(i);
            let hi = m.upper_bound(i);
            assert!(lo < hi, "{}: empty bucket at {i}", m.name());
            assert!(
                hi / lo <= m.gamma() * (1.0 + 1e-9),
                "{}: bucket {i} wider than gamma: {} vs {}",
                m.name(),
                hi / lo,
                m.gamma()
            );
            let rep = m.value(i);
            assert!(
                lo <= rep && rep <= hi,
                "{}: representative outside bucket {i}",
                m.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_rejects_bad_alpha() {
        assert!(gamma_of(0.0).is_err());
        assert!(gamma_of(1.0).is_err());
        assert!(gamma_of(-0.5).is_err());
        assert!(gamma_of(f64::NAN).is_err());
        assert!(gamma_of(f64::INFINITY).is_err());
    }

    #[test]
    fn gamma_of_matches_paper_formula() {
        let g = gamma_of(0.01).unwrap();
        assert!((g - 1.01 / 0.99).abs() < 1e-15);
        // alpha = 0.01 -> gamma ≈ 1.0202
        assert!((g - 1.0202).abs() < 1e-3);
    }

    #[test]
    fn ceil_to_i32_matches_ceil() {
        for &x in &[
            -2.5,
            -2.0,
            -1.0000001,
            -0.5,
            -0.0,
            0.0,
            0.5,
            1.0,
            1.0000001,
            2.5,
            1e9,
            -1e9,
            2147483.6,
            -2147483.6,
            f64::NAN,
        ] {
            assert_eq!(ceil_to_i32(x), x.ceil() as i32, "x = {x}");
        }
        let mut x = -1e6;
        while x < 1e6 {
            assert_eq!(ceil_to_i32(x), x.ceil() as i32, "x = {x}");
            x += 173.00071;
        }
    }

    #[test]
    fn decompose_recompose_roundtrip() {
        for &x in &[
            1.0,
            1.5,
            2.0,
            std::f64::consts::PI,
            1e-300,
            1e300,
            f64::MIN_POSITIVE,
            0.1,
        ] {
            let (e, s) = decompose(x);
            assert!((1.0..2.0).contains(&s), "significand {s} for {x}");
            let back = recompose(e, s);
            assert_eq!(back, x, "roundtrip failed for {x}");
        }
    }

    #[test]
    fn decompose_known_values() {
        assert_eq!(decompose(1.0), (0, 1.0));
        assert_eq!(decompose(2.0), (1, 1.0));
        assert_eq!(decompose(3.0), (1, 1.5));
        assert_eq!(decompose(0.5), (-1, 1.0));
    }

    #[test]
    fn mapping_kind_codec_roundtrip() {
        for kind in [
            MappingKind::Logarithmic,
            MappingKind::LinearInterpolated,
            MappingKind::QuadraticInterpolated,
            MappingKind::CubicInterpolated,
        ] {
            assert_eq!(MappingKind::from_u8(kind as u8).unwrap(), kind);
        }
        assert!(MappingKind::from_u8(200).is_err());
    }
}
