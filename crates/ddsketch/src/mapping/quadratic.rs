//! Quadratically-interpolated mapping.

use super::log_like::{Interpolation, LogLikeMapping};
use super::{IndexMapping, MappingKind};
use sketch_core::SketchError;

/// `P(s) = −s²/3 + 2s − 5/3`.
///
/// Derived by maximizing `inf s·P'(s)` over monotone quadratics with
/// `P(1)=0, P(2)=1`: balancing `s·P'(s)` at both endpoints gives
/// `P'(s) = −2s/3 + 2`, hence κ = 4/3 (attained at both `s=1` and `s=2`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Quadratic;

impl Interpolation for Quadratic {
    #[inline]
    fn p(s: f64) -> f64 {
        (-s / 3.0 + 2.0) * s - 5.0 / 3.0
    }

    #[inline]
    fn p_inv(r: f64) -> f64 {
        // Solve −s²/3 + 2s − 5/3 = r  ⇔  s² − 6s + (5 + 3r) = 0
        //  ⇒ s = 3 − √(4 − 3r)   (the root inside [1, 2]).
        3.0 - (4.0 - 3.0 * r).sqrt()
    }

    #[inline]
    fn kappa() -> f64 {
        4.0 / 3.0
    }

    fn kind() -> MappingKind {
        MappingKind::QuadraticInterpolated
    }

    fn name() -> &'static str {
        "QuadraticInterpolatedMapping"
    }
}

/// Index mapping approximating `log2` by a quadratic in the significand:
/// one square root per *query-side* inverse, only multiply/add on the
/// insertion path, ~8% more buckets than the exact logarithm.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticInterpolatedMapping(LogLikeMapping<Quadratic>);

impl QuadraticInterpolatedMapping {
    /// Create a mapping with relative accuracy `alpha ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, SketchError> {
        LogLikeMapping::new(alpha).map(Self)
    }
}

impl IndexMapping for QuadraticInterpolatedMapping {
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError> {
        Self::new(alpha)
    }

    #[inline]
    fn relative_accuracy(&self) -> f64 {
        self.0.relative_accuracy()
    }
    #[inline]
    fn gamma(&self) -> f64 {
        self.0.gamma()
    }
    #[inline]
    fn index(&self, value: f64) -> i32 {
        self.0.index(value)
    }
    #[inline]
    fn value(&self, index: i32) -> f64 {
        self.0.value(index)
    }
    #[inline]
    fn lower_bound(&self, index: i32) -> f64 {
        self.0.lower_bound(index)
    }
    #[inline]
    fn upper_bound(&self, index: i32) -> f64 {
        self.0.upper_bound(index)
    }
    fn min_indexable_value(&self) -> f64 {
        self.0.min_indexable_value()
    }
    fn max_indexable_value(&self) -> f64 {
        self.0.max_indexable_value()
    }
    fn kind(&self) -> MappingKind {
        self.0.kind()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::conformance;
    use proptest::prelude::*;

    #[test]
    fn conformance_suite() {
        for alpha in [0.001, 0.01, 0.05, 0.1] {
            let m = QuadraticInterpolatedMapping::new(alpha).unwrap();
            conformance::run_suite(&m);
        }
    }

    #[test]
    fn endpoint_values() {
        assert!(Quadratic::p(1.0).abs() < 1e-15);
        assert!((Quadratic::p(2.0) - 1.0).abs() < 1e-15);
        assert!((Quadratic::p_inv(0.0) - 1.0).abs() < 1e-15);
        assert!((Quadratic::p_inv(1.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn closer_to_log2_than_linear() {
        // Quadratic interpolation should approximate log2 strictly better
        // (in max error over the segment) than linear.
        let mut max_quad: f64 = 0.0;
        let mut max_lin: f64 = 0.0;
        let mut s = 1.0;
        while s < 2.0 {
            max_quad = max_quad.max((Quadratic::p(s) - s.log2()).abs());
            max_lin = max_lin.max(((s - 1.0) - s.log2()).abs());
            s += 1e-4;
        }
        assert!(max_quad < max_lin / 3.0, "quad {max_quad} vs lin {max_lin}");
    }

    proptest! {
        #[test]
        fn prop_alpha_accuracy(x in 1e-12_f64..1e12, alpha in 0.001_f64..0.3) {
            let m = QuadraticInterpolatedMapping::new(alpha).unwrap();
            conformance::check_value(&m, x);
        }
    }
}
