//! The paper's exact logarithmic mapping (Section 2.1).

use super::fastln::fast_ln;
use super::{ceil_to_i32, gamma_of, IndexMapping, MappingKind};
use sketch_core::SketchError;

/// Memory-optimal mapping: `index(x) = ⌈log_γ x⌉`.
///
/// Bucket `i` covers `(γ^(i−1), γ^i]` and its representative value is
/// `2γ^i/(γ+1)` (paper Lemma 2). This is the densest bucket layout that can
/// guarantee relative accuracy `α`; the price is a `ln` call per insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct LogarithmicMapping {
    relative_accuracy: f64,
    gamma: f64,
    /// `1 / ln(γ)` — multiplying by this converts natural logs to base-γ.
    multiplier: f64,
    min_indexable: f64,
    max_indexable: f64,
}

impl LogarithmicMapping {
    /// Create a mapping with relative accuracy `alpha ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, SketchError> {
        let gamma = gamma_of(alpha)?;
        let multiplier = 1.0 / gamma.ln();
        // Keep indices well inside i32 and values inside the normal f64
        // range. One bucket of headroom on each side guards the ±1 in
        // ceil/lower_bound arithmetic.
        let min_by_index = ((i32::MIN as f64 + 2.0) / multiplier).exp();
        let min_indexable = (f64::MIN_POSITIVE * gamma).max(min_by_index);
        let max_by_index =
            (((i32::MAX as f64 - 2.0) / multiplier).min(f64::MAX.ln()) - gamma.ln()).exp();
        let max_indexable = (f64::MAX / gamma).min(max_by_index);
        Ok(Self {
            relative_accuracy: alpha,
            gamma,
            multiplier,
            min_indexable,
            max_indexable,
        })
    }
}

impl IndexMapping for LogarithmicMapping {
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError> {
        Self::new(alpha)
    }

    #[inline]
    fn relative_accuracy(&self) -> f64 {
        self.relative_accuracy
    }

    #[inline]
    fn gamma(&self) -> f64 {
        self.gamma
    }

    #[inline]
    fn index(&self, value: f64) -> i32 {
        debug_assert!(value >= self.min_indexable && value <= self.max_indexable);
        ceil_to_i32(fast_ln(value) * self.multiplier)
    }

    fn index_batch(&self, values: &[f64], out: &mut [i32]) {
        // Fused ln + scale + ceil loop with no out-of-loop calls: the
        // table-based `fast_ln` and `ceil_to_i32` both inline, so the
        // compiler pipelines independent iterations instead of serializing
        // on a libm call. Same operations as the scalar path — results are
        // bit-identical.
        super::fastln::ln_index_batch(values, self.multiplier, out);
    }

    fn index_batch_stats(&self, values: &[f64], sum0: f64, out: &mut [i32]) -> (f64, f64, f64) {
        super::fastln::ln_index_batch_stats(values, self.multiplier, sum0, out)
    }

    #[inline]
    fn value(&self, index: i32) -> f64 {
        // 2γ^i/(γ+1): harmonic midpoint of (γ^(i−1), γ^i].
        (index as f64 / self.multiplier).exp() * (2.0 / (1.0 + self.gamma))
    }

    #[inline]
    fn lower_bound(&self, index: i32) -> f64 {
        ((index - 1) as f64 / self.multiplier).exp()
    }

    #[inline]
    fn upper_bound(&self, index: i32) -> f64 {
        (index as f64 / self.multiplier).exp()
    }

    fn min_indexable_value(&self) -> f64 {
        self.min_indexable
    }

    fn max_indexable_value(&self) -> f64 {
        self.max_indexable
    }

    fn kind(&self) -> MappingKind {
        MappingKind::Logarithmic
    }

    fn name(&self) -> &'static str {
        "LogarithmicMapping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::conformance;
    use proptest::prelude::*;

    #[test]
    fn conformance_suite() {
        for alpha in [0.001, 0.01, 0.02, 0.05, 0.1, 0.5] {
            let m = LogarithmicMapping::new(alpha).unwrap();
            conformance::run_suite(&m);
        }
    }

    #[test]
    fn index_matches_paper_formula() {
        let m = LogarithmicMapping::new(0.01).unwrap();
        let gamma = m.gamma();
        for &x in &[0.001f64, 0.5, 1.0, 2.0, 100.0, 1e9] {
            let expected = (x.ln() / gamma.ln()).ceil() as i32;
            assert_eq!(m.index(x), expected, "x = {x}");
        }
    }

    #[test]
    fn representative_is_paper_midpoint() {
        let m = LogarithmicMapping::new(0.01).unwrap();
        let gamma = m.gamma();
        for i in [-100, -1, 0, 1, 7, 250] {
            let expected = 2.0 * gamma.powi(i) / (gamma + 1.0);
            let got = m.value(i);
            assert!(
                (got - expected).abs() <= expected.abs() * 1e-12,
                "index {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn index_of_one_is_zero() {
        // ⌈log_γ 1⌉ = 0: bucket 0 covers (1/γ, 1].
        let m = LogarithmicMapping::new(0.01).unwrap();
        assert_eq!(m.index(1.0), 0);
    }

    #[test]
    fn bucket_width_is_exactly_gamma() {
        let m = LogarithmicMapping::new(0.01).unwrap();
        for i in [-5, 0, 3, 1000] {
            let ratio = m.upper_bound(i) / m.lower_bound(i);
            assert!(
                (ratio - m.gamma()).abs() < 1e-9,
                "bucket {i}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn rejects_invalid_accuracy() {
        assert!(LogarithmicMapping::new(0.0).is_err());
        assert!(LogarithmicMapping::new(1.0).is_err());
        assert!(LogarithmicMapping::new(-0.1).is_err());
    }

    #[test]
    fn extreme_alpha_keeps_indices_in_i32() {
        // Very tight accuracy: multiplier is huge, so the indexable range
        // must shrink to keep indices in i32.
        let m = LogarithmicMapping::new(1e-9).unwrap();
        let lo = m.min_indexable_value();
        let hi = m.max_indexable_value();
        assert!(lo > 0.0 && hi.is_finite() && lo < hi);
        // The extremes must index without overflow (checked arithmetic in
        // debug builds would panic on wrap).
        let _ = m.index(lo);
        let _ = m.index(hi);
        conformance::check_value(&m, lo);
        conformance::check_value(&m, hi);
    }

    #[test]
    fn wide_alpha_covers_full_float_range() {
        let m = LogarithmicMapping::new(0.01).unwrap();
        // Paper §2.2: α = 0.01 and 2048 buckets cover 80 µs .. 1 year; the
        // unbounded mapping must comfortably cover the full f64 range.
        assert!(m.min_indexable_value() < 1e-300);
        assert!(m.max_indexable_value() > 1e300);
    }

    proptest! {
        #[test]
        fn prop_alpha_accuracy(x in 1e-12_f64..1e12, alpha in 0.001_f64..0.3) {
            let m = LogarithmicMapping::new(alpha).unwrap();
            conformance::check_value(&m, x);
        }

        #[test]
        fn prop_monotone(a in 1e-9_f64..1e9, b in 1e-9_f64..1e9) {
            let m = LogarithmicMapping::new(0.01).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.index(lo) <= m.index(hi));
        }
    }
}
