//! Shared framework for the interpolated ("fast") mappings.
//!
//! Write `x = s·2^e` with `s ∈ [1, 2)` (free to extract from the IEEE-754
//! bits) and define the log-like function `ℓ(x) = e + P(s)` where `P` is a
//! monotone polynomial with `P(1) = 0` and `P(2) = 1`, so that `ℓ`
//! approximates `log2` and is continuous across powers of two. Bucket
//! indices are `i = ⌈ℓ(x)/h⌉` for a step `h`.
//!
//! **Accuracy derivation.** Within a segment, `dℓ/d(ln x) = s·P'(s)`, so
//! over any ℓ-interval of length `h` the value grows by a factor at most
//! `exp(h / κ)` where `κ = inf_{s∈[1,2)} s·P'(s)`. Choosing
//! `h = κ·ln γ` therefore guarantees every bucket has ratio ≤ γ, i.e. the
//! harmonic-midpoint representative is α-accurate — the same guarantee as
//! the exact logarithmic mapping. The bucket-count overhead relative to the
//! optimal mapping is `log2(γ)/h = 1/(κ·ln 2)`:
//!
//! | interpolation | κ     | overhead |
//! |---------------|-------|----------|
//! | linear        | 1     | ≈ 1.443  |
//! | quadratic     | 4/3   | ≈ 1.082  |
//! | cubic         | 10/7  | ≈ 1.010  |
//!
//! This matches the paper's report that DDSketch (fast) "can be up to twice
//! the size of DDSketch" (their fast variant rounds the multiplier further).

use super::{ceil_to_i32, decompose, gamma_of, recompose, IndexMapping, MappingKind};
use sketch_core::SketchError;

/// A monotone interpolation polynomial `P` on `[1, 2]`.
pub(crate) trait Interpolation:
    Clone + Copy + std::fmt::Debug + PartialEq + Default + 'static
{
    /// `P(s)` for `s ∈ [1, 2)`; must satisfy `P(1) = 0`, `P(2) = 1`, `P' > 0`.
    fn p(s: f64) -> f64;
    /// Inverse of `P` on `[0, 1]`.
    fn p_inv(r: f64) -> f64;
    /// `inf_{s∈[1,2)} s·P'(s)` — the step-size safety factor κ.
    fn kappa() -> f64;
    fn kind() -> MappingKind;
    fn name() -> &'static str;
}

/// Generic interpolated mapping; see module docs for the guarantee proof.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LogLikeMapping<I: Interpolation> {
    relative_accuracy: f64,
    gamma: f64,
    /// Bucket step in ℓ-units: `h = κ·ln γ`.
    step: f64,
    inv_step: f64,
    min_indexable: f64,
    max_indexable: f64,
    _marker: std::marker::PhantomData<I>,
}

impl<I: Interpolation> LogLikeMapping<I> {
    pub(crate) fn new(alpha: f64) -> Result<Self, SketchError> {
        let gamma = gamma_of(alpha)?;
        let step = I::kappa() * gamma.ln();
        let inv_step = 1.0 / step;

        // Keep ℓ within the normal-float exponent range with headroom, and
        // indices within i32 with headroom.
        let min_l = ((i32::MIN as f64 + 2.0) * step).max(-1021.0);
        let max_l = ((i32::MAX as f64 - 2.0) * step).min(1022.0);
        let min_indexable = (f64::MIN_POSITIVE * gamma).max(Self::l_inv(min_l));
        let max_indexable = (f64::MAX / gamma).min(Self::l_inv(max_l));

        Ok(Self {
            relative_accuracy: alpha,
            gamma,
            step,
            inv_step,
            min_indexable,
            max_indexable,
            _marker: std::marker::PhantomData,
        })
    }

    /// `ℓ(x) = e + P(s)`.
    #[inline]
    fn l(x: f64) -> f64 {
        let (e, s) = decompose(x);
        e as f64 + I::p(s)
    }

    /// `ℓ⁻¹(t)`.
    #[inline]
    fn l_inv(t: f64) -> f64 {
        let e = t.floor();
        let r = t - e;
        recompose(e as i64, I::p_inv(r))
    }
}

/// Shared batched index loop: branch-free IEEE-754 exponent/mantissa
/// extraction (inlined from `decompose` without its debug assertion) plus
/// the interpolation polynomial — nothing calls out of the loop, so
/// iterations pipeline. `HW_CEIL` selects `f64::ceil` (one `vroundsd` when
/// the surrounding function enables AVX) over the portable
/// [`ceil_to_i32`]; both compute the exact ceiling, so every dispatch path
/// produces bit-identical results, and the floating-point expression
/// matches the scalar `index` exactly.
#[inline(always)]
fn index_batch_body<I: Interpolation, const HW_CEIL: bool>(
    values: &[f64],
    inv_step: f64,
    out: &mut [i32],
) {
    assert_eq!(
        values.len(),
        out.len(),
        "index_batch buffer length mismatch"
    );
    for (v, o) in values.iter().zip(out.iter_mut()) {
        let bits = v.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let significand = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        let l = exponent as f64 + I::p(significand);
        let scaled = l * inv_step;
        *o = if HW_CEIL {
            scaled.ceil() as i32
        } else {
            ceil_to_i32(scaled)
        };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn index_batch_avx<I: Interpolation>(values: &[f64], inv_step: f64, out: &mut [i32]) {
    index_batch_body::<I, true>(values, inv_step, out);
}

/// Fused stats + index loop: the min/max/sum chains ride in the shadow of
/// the polynomial evaluation. Safe on arbitrary inputs — non-indexable
/// values yield unspecified (but safely computed) `out` entries.
#[inline(always)]
fn index_batch_stats_body<I: Interpolation, const HW_CEIL: bool>(
    values: &[f64],
    inv_step: f64,
    sum0: f64,
    out: &mut [i32],
) -> (f64, f64, f64) {
    assert_eq!(
        values.len(),
        out.len(),
        "index_batch buffer length mismatch"
    );
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sum = sum0;
    for (v, o) in values.iter().zip(out.iter_mut()) {
        let v = *v;
        let bits = v.to_bits();
        let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let significand = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
        let l = exponent as f64 + I::p(significand);
        let scaled = l * inv_step;
        *o = if HW_CEIL {
            scaled.ceil() as i32
        } else {
            ceil_to_i32(scaled)
        };
        min = if v < min { v } else { min };
        max = if v > max { v } else { max };
        sum += v;
    }
    (min, max, sum)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn index_batch_stats_avx<I: Interpolation>(
    values: &[f64],
    inv_step: f64,
    sum0: f64,
    out: &mut [i32],
) -> (f64, f64, f64) {
    index_batch_stats_body::<I, true>(values, inv_step, sum0, out)
}

impl<I: Interpolation> IndexMapping for LogLikeMapping<I> {
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError> {
        Self::new(alpha)
    }

    #[inline]
    fn relative_accuracy(&self) -> f64 {
        self.relative_accuracy
    }

    #[inline]
    fn gamma(&self) -> f64 {
        self.gamma
    }

    #[inline]
    fn index(&self, value: f64) -> i32 {
        debug_assert!(value >= self.min_indexable && value <= self.max_indexable);
        ceil_to_i32(Self::l(value) * self.inv_step)
    }

    fn index_batch(&self, values: &[f64], out: &mut [i32]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: feature presence checked at runtime.
            unsafe { index_batch_avx::<I>(values, self.inv_step, out) };
            return;
        }
        index_batch_body::<I, false>(values, self.inv_step, out);
    }

    fn index_batch_stats(&self, values: &[f64], sum0: f64, out: &mut [i32]) -> (f64, f64, f64) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: feature presence checked at runtime.
            return unsafe { index_batch_stats_avx::<I>(values, self.inv_step, sum0, out) };
        }
        index_batch_stats_body::<I, false>(values, self.inv_step, sum0, out)
    }

    #[inline]
    fn value(&self, index: i32) -> f64 {
        let lo = self.lower_bound(index);
        let hi = self.upper_bound(index);
        // Harmonic midpoint 2·l·u/(l+u), computed in ratio form
        // l · 2r/(1+r) with r = u/l ∈ (1, γ] so it neither underflows nor
        // overflows at the extremes of the f64 range.
        let r = hi / lo;
        lo * (2.0 * r / (1.0 + r))
    }

    #[inline]
    fn lower_bound(&self, index: i32) -> f64 {
        Self::l_inv((index as f64 - 1.0) * self.step)
    }

    #[inline]
    fn upper_bound(&self, index: i32) -> f64 {
        Self::l_inv(index as f64 * self.step)
    }

    fn min_indexable_value(&self) -> f64 {
        self.min_indexable
    }

    fn max_indexable_value(&self) -> f64 {
        self.max_indexable
    }

    fn kind(&self) -> MappingKind {
        I::kind()
    }

    fn name(&self) -> &'static str {
        I::name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{
        CubicInterpolatedMapping, LinearInterpolatedMapping, QuadraticInterpolatedMapping,
    };

    /// The κ constants must actually lower-bound s·P'(s); verify by dense
    /// numerical sweep using a symmetric finite difference.
    fn check_kappa<I: Interpolation>() {
        let eps = 1e-6;
        let mut s = 1.0 + eps;
        while s < 2.0 - eps {
            let dp = (I::p(s + eps) - I::p(s - eps)) / (2.0 * eps);
            let g = s * dp;
            assert!(
                g >= I::kappa() - 1e-4,
                "{}: s·P'(s) = {g} below kappa {} at s = {s}",
                I::name(),
                I::kappa()
            );
            s += 0.001;
        }
    }

    /// P and its inverse must agree to near machine precision.
    fn check_p_inverse<I: Interpolation>() {
        for k in 0..=1000 {
            let r = k as f64 / 1000.0;
            let s = I::p_inv(r);
            assert!((1.0..=2.0).contains(&s), "{}: p_inv({r}) = {s}", I::name());
            let back = I::p(s);
            assert!(
                (back - r).abs() < 1e-12,
                "{}: p(p_inv({r})) = {back}",
                I::name()
            );
        }
        assert!((I::p(1.0)).abs() < 1e-15);
        assert!((I::p(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_bounds_hold() {
        check_kappa::<super::super::linear::Linear>();
        check_kappa::<super::super::quadratic::Quadratic>();
        check_kappa::<super::super::cubic::Cubic>();
    }

    #[test]
    fn interpolation_inverses_exact() {
        check_p_inverse::<super::super::linear::Linear>();
        check_p_inverse::<super::super::quadratic::Quadratic>();
        check_p_inverse::<super::super::cubic::Cubic>();
    }

    #[test]
    fn bucket_overhead_matches_theory() {
        // Count buckets needed to span [1, 2^20] and compare against the
        // logarithmic mapping.
        let alpha = 0.01;
        let log = crate::mapping::LogarithmicMapping::new(alpha).unwrap();
        let lin = LinearInterpolatedMapping::new(alpha).unwrap();
        let quad = QuadraticInterpolatedMapping::new(alpha).unwrap();
        let cub = CubicInterpolatedMapping::new(alpha).unwrap();

        let span = |idx_lo: i32, idx_hi: i32| (idx_hi - idx_lo) as f64;
        let base = span(log.index(1.0), log.index(1048576.0));
        let overhead_lin = span(lin.index(1.0), lin.index(1048576.0)) / base;
        let overhead_quad = span(quad.index(1.0), quad.index(1048576.0)) / base;
        let overhead_cub = span(cub.index(1.0), cub.index(1048576.0)) / base;

        assert!(
            (overhead_lin - 1.0 / std::f64::consts::LN_2).abs() < 0.01,
            "linear {overhead_lin}"
        );
        assert!(
            (overhead_quad - 0.75 / std::f64::consts::LN_2).abs() < 0.01,
            "quad {overhead_quad}"
        );
        assert!(
            (overhead_cub - 0.7 / std::f64::consts::LN_2).abs() < 0.01,
            "cubic {overhead_cub}"
        );
    }
}
