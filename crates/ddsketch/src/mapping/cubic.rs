//! Cubically-interpolated mapping — near-optimal bucket count, no
//! transcendentals on the insertion path.

use super::log_like::{Interpolation, LogLikeMapping};
use super::{IndexMapping, MappingKind};
use sketch_core::SketchError;

const A: f64 = 6.0 / 35.0;
const B: f64 = -3.0 / 5.0;
const C: f64 = 10.0 / 7.0;

/// `P(s) = A·u³ + B·u² + C·u` with `u = s − 1` and
/// `A = 6/35, B = −3/5, C = 10/7`.
///
/// These are the coefficients used by Datadog's production implementations;
/// within our framework they satisfy `P(2) = 6/35 − 3/5 + 10/7 = 1` and
/// `κ = inf s·P'(s) = P'(1) = 10/7` (verified numerically in the shared
/// tests), giving only `1/(κ·ln 2) ≈ 1.01×` bucket overhead.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Cubic;

impl Interpolation for Cubic {
    #[inline]
    fn p(s: f64) -> f64 {
        let u = s - 1.0;
        ((A * u + B) * u + C) * u
    }

    #[inline]
    fn p_inv(r: f64) -> f64 {
        // Newton's method on the monotone cubic. P' ∈ [26/35, 10/7] on
        // [0, 1], so starting from the linear guess u₀ = r, four iterations
        // reach machine precision (each iteration roughly squares the
        // error, which starts below 0.1).
        let mut u = r;
        for _ in 0..4 {
            let f = ((A * u + B) * u + C) * u - r;
            let fp = (3.0 * A * u + 2.0 * B) * u + C;
            u -= f / fp;
        }
        (1.0 + u).clamp(1.0, 2.0)
    }

    #[inline]
    fn kappa() -> f64 {
        10.0 / 7.0
    }

    fn kind() -> MappingKind {
        MappingKind::CubicInterpolated
    }

    fn name() -> &'static str {
        "CubicInterpolatedMapping"
    }
}

/// Index mapping approximating `log2` by a cubic in the significand.
///
/// The recommended "fast" mapping: insertion costs a handful of multiplies
/// and adds, with only ~1% more buckets than the memory-optimal
/// [`super::LogarithmicMapping`].
#[derive(Debug, Clone, PartialEq)]
pub struct CubicInterpolatedMapping(LogLikeMapping<Cubic>);

impl CubicInterpolatedMapping {
    /// Create a mapping with relative accuracy `alpha ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, SketchError> {
        LogLikeMapping::new(alpha).map(Self)
    }
}

impl IndexMapping for CubicInterpolatedMapping {
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError> {
        Self::new(alpha)
    }

    #[inline]
    fn relative_accuracy(&self) -> f64 {
        self.0.relative_accuracy()
    }
    #[inline]
    fn gamma(&self) -> f64 {
        self.0.gamma()
    }
    #[inline]
    fn index(&self, value: f64) -> i32 {
        self.0.index(value)
    }
    #[inline]
    fn value(&self, index: i32) -> f64 {
        self.0.value(index)
    }
    #[inline]
    fn lower_bound(&self, index: i32) -> f64 {
        self.0.lower_bound(index)
    }
    #[inline]
    fn upper_bound(&self, index: i32) -> f64 {
        self.0.upper_bound(index)
    }
    fn min_indexable_value(&self) -> f64 {
        self.0.min_indexable_value()
    }
    fn max_indexable_value(&self) -> f64 {
        self.0.max_indexable_value()
    }
    fn kind(&self) -> MappingKind {
        self.0.kind()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::conformance;
    use proptest::prelude::*;

    #[test]
    fn conformance_suite() {
        for alpha in [0.001, 0.01, 0.05, 0.1] {
            let m = CubicInterpolatedMapping::new(alpha).unwrap();
            conformance::run_suite(&m);
        }
    }

    #[test]
    fn coefficients_sum_to_one() {
        // P(2) = A + B + C must be exactly 1 for cross-segment continuity.
        assert!((A + B + C - 1.0).abs() < 1e-15);
    }

    #[test]
    fn newton_inverse_is_machine_precise() {
        for k in 0..=10_000 {
            let r = k as f64 / 10_000.0;
            let s = Cubic::p_inv(r);
            assert!((Cubic::p(s) - r).abs() < 1e-14, "r = {r}");
        }
    }

    #[test]
    fn closest_to_log2_of_the_family() {
        let mut max_cub: f64 = 0.0;
        let mut s = 1.0;
        while s < 2.0 {
            max_cub = max_cub.max((Cubic::p(s) - s.log2()).abs());
            s += 1e-4;
        }
        // The cubic stays within 1e-2 of log2 across the whole segment.
        assert!(max_cub < 1e-2, "max deviation {max_cub}");
    }

    proptest! {
        #[test]
        fn prop_alpha_accuracy(x in 1e-12_f64..1e12, alpha in 0.001_f64..0.3) {
            let m = CubicInterpolatedMapping::new(alpha).unwrap();
            conformance::check_value(&m, x);
        }

        #[test]
        fn prop_monotone(a in 1e-9_f64..1e9, b in 1e-9_f64..1e9) {
            let m = CubicInterpolatedMapping::new(0.02).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.index(lo) <= m.index(hi));
        }
    }
}
