//! Linearly-interpolated mapping — the fastest index computation.

use super::log_like::{Interpolation, LogLikeMapping};
use super::{IndexMapping, MappingKind};
use sketch_core::SketchError;

/// `P(s) = s − 1`: linear interpolation of `log2` between powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Linear;

impl Interpolation for Linear {
    #[inline]
    fn p(s: f64) -> f64 {
        s - 1.0
    }

    #[inline]
    fn p_inv(r: f64) -> f64 {
        1.0 + r
    }

    #[inline]
    fn kappa() -> f64 {
        // s·P'(s) = s, minimized at s = 1.
        1.0
    }

    fn kind() -> MappingKind {
        MappingKind::LinearInterpolated
    }

    fn name() -> &'static str {
        "LinearInterpolatedMapping"
    }
}

/// Index mapping approximating `log2` by linear interpolation of the IEEE
/// 754 significand. No transcendental calls on the insertion path; ~44%
/// more buckets than [`super::LogarithmicMapping`] for the same `α`.
///
/// This is the family the paper benchmarks as **DDSketch (fast)**.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolatedMapping(LogLikeMapping<Linear>);

impl LinearInterpolatedMapping {
    /// Create a mapping with relative accuracy `alpha ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, SketchError> {
        LogLikeMapping::new(alpha).map(Self)
    }
}

impl IndexMapping for LinearInterpolatedMapping {
    fn with_accuracy(alpha: f64) -> Result<Self, SketchError> {
        Self::new(alpha)
    }

    #[inline]
    fn relative_accuracy(&self) -> f64 {
        self.0.relative_accuracy()
    }
    #[inline]
    fn gamma(&self) -> f64 {
        self.0.gamma()
    }
    #[inline]
    fn index(&self, value: f64) -> i32 {
        self.0.index(value)
    }
    #[inline]
    fn value(&self, index: i32) -> f64 {
        self.0.value(index)
    }
    #[inline]
    fn lower_bound(&self, index: i32) -> f64 {
        self.0.lower_bound(index)
    }
    #[inline]
    fn upper_bound(&self, index: i32) -> f64 {
        self.0.upper_bound(index)
    }
    fn min_indexable_value(&self) -> f64 {
        self.0.min_indexable_value()
    }
    fn max_indexable_value(&self) -> f64 {
        self.0.max_indexable_value()
    }
    fn kind(&self) -> MappingKind {
        self.0.kind()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::conformance;
    use proptest::prelude::*;

    #[test]
    fn conformance_suite() {
        for alpha in [0.001, 0.01, 0.05, 0.1] {
            let m = LinearInterpolatedMapping::new(alpha).unwrap();
            conformance::run_suite(&m);
        }
    }

    #[test]
    fn powers_of_two_are_continuous() {
        // ℓ must be continuous across segment boundaries: indices just
        // below and above a power of two differ by at most 1.
        let m = LinearInterpolatedMapping::new(0.01).unwrap();
        for e in [-100, -1, 0, 1, 10, 100] {
            let x = 2f64.powi(e);
            let just_below = x * (1.0 - 1e-12);
            let diff = m.index(x) - m.index(just_below);
            assert!(
                (0..=1).contains(&diff),
                "discontinuity at 2^{e}: diff {diff}"
            );
        }
    }

    #[test]
    fn rejects_invalid_accuracy() {
        assert!(LinearInterpolatedMapping::new(0.0).is_err());
        assert!(LinearInterpolatedMapping::new(2.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_alpha_accuracy(x in 1e-12_f64..1e12, alpha in 0.001_f64..0.3) {
            let m = LinearInterpolatedMapping::new(alpha).unwrap();
            conformance::check_value(&m, x);
        }

        #[test]
        fn prop_matches_exact_log2_at_powers(e in -300i32..300) {
            // At exact powers of two the approximation is exact, so the
            // index must agree with ceil(e·log2(γ)⁻¹·κ…) computed directly.
            let m = LinearInterpolatedMapping::new(0.01).unwrap();
            // ℓ(2^e) = e exactly, and the bucket step is κ·ln γ = ln γ.
            let x = 2f64.powi(e);
            let step = m.gamma().ln(); // κ = 1
            let expected = (e as f64 / step).ceil() as i32;
            prop_assert_eq!(m.index(x), expected);
        }
    }
}
