//! The DDSketch itself (paper Section 2).

use crate::mapping::{IndexMapping, MappingKind};
use crate::store::Store;
use sketch_core::{target_rank, MemoryFootprint, MergeableSketch, QuantileSketch, SketchError};

/// A quantile sketch with relative-error guarantees over all of ℝ.
///
/// Values are routed to one of three sub-structures (paper Section 2.2):
///
/// * positives → `positive` store, bucketed by `mapping.index(x)`;
/// * negatives → `negative` store, bucketed by `mapping.index(-x)` (so for
///   bounded stores, "collapses start from the highest indices" — use a
///   highest-collapsing store for `SN`);
/// * zero and anything smaller than the mapping's minimum indexable value
///   → an exact `zero_count` bucket.
///
/// The sketch additionally tracks exact `min`, `max`, and `sum` (the paper:
/// "like most sketch implementations, it is useful to keep separate track
/// of the minimum and maximum values"), which also lets quantile estimates
/// be clamped into `[min, max]` — a strict improvement that preserves the
/// α guarantee since the true quantile always lies in that interval.
///
/// Type parameters select the bucket-index scheme (`M`) and the backing
/// stores for the positive (`SP`) and negative (`SN`) halves; see the
/// [`crate::presets`] constructors for the standard combinations.
#[derive(Debug, Clone)]
pub struct DDSketch<M: IndexMapping, SP: Store, SN: Store = SP> {
    mapping: M,
    positive: SP,
    negative: SN,
    zero_count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl<M: IndexMapping, SP: Store, SN: Store> DDSketch<M, SP, SN> {
    /// Assemble a sketch from a mapping and two (empty) stores.
    pub fn from_parts(mapping: M, positive: SP, negative: SN) -> Self {
        Self {
            mapping,
            positive,
            negative,
            zero_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// The index mapping in use.
    pub fn mapping(&self) -> &M {
        &self.mapping
    }

    /// The relative accuracy `α` guaranteed for quantiles backed by
    /// non-collapsed buckets.
    pub fn relative_accuracy(&self) -> f64 {
        self.mapping.relative_accuracy()
    }

    /// Insert `count` occurrences of `value` in O(1).
    pub fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        if !value.is_finite() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if count == 0 {
            return Ok(());
        }
        let magnitude = value.abs();
        if magnitude > self.mapping.max_indexable_value() {
            return Err(SketchError::UnsupportedValue(value));
        }
        if magnitude < self.mapping.min_indexable_value() {
            // Within floating-point distance of zero (paper §2.2): exact
            // zero bucket.
            self.zero_count += count;
        } else if value > 0.0 {
            self.positive.add_n(self.mapping.index(value), count);
        } else {
            self.negative.add_n(self.mapping.index(magnitude), count);
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value * count as f64;
        Ok(())
    }

    /// Insert one occurrence of `value`.
    pub fn add(&mut self, value: f64) -> Result<(), SketchError> {
        self.add_n(value, 1)
    }

    /// Remove one previously-inserted occurrence of `value` (paper §2:
    /// "it is straightforward to insert items into this sketch as well as
    /// delete items").
    ///
    /// Returns `false` if the bucket `value` maps to holds no occurrences —
    /// which can happen legitimately after a collapse folded it away.
    /// `min`/`max` are *not* recomputed (they remain valid bounds but may
    /// become loose); `sum` is adjusted exactly.
    pub fn delete(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        let magnitude = value.abs();
        let removed = if magnitude > self.mapping.max_indexable_value() {
            false
        } else if magnitude < self.mapping.min_indexable_value() {
            if self.zero_count > 0 {
                self.zero_count -= 1;
                true
            } else {
                false
            }
        } else if value > 0.0 {
            self.positive.remove_n(self.mapping.index(value), 1)
        } else {
            self.negative.remove_n(self.mapping.index(magnitude), 1)
        };
        if removed {
            self.sum -= value;
        }
        removed
    }

    /// Total number of stored occurrences.
    pub fn count(&self) -> u64 {
        self.zero_count + self.positive.total_count() + self.negative.total_count()
    }

    /// Whether the sketch holds no data.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of inserted values (weighted).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or `None` if empty.
    pub fn average(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }

    /// Exact minimum inserted value (a lower bound after deletions).
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Exact maximum inserted value (an upper bound after deletions).
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Count of values in the exact zero bucket.
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// Number of non-empty buckets across both stores plus the zero bucket
    /// (the "bins" of the paper's Figure 7).
    pub fn num_bins(&self) -> usize {
        self.positive.num_bins() + self.negative.num_bins() + usize::from(self.zero_count > 0)
    }

    /// Whether any store has collapsed buckets, i.e. whether the lowest
    /// quantiles may no longer carry the α guarantee (Proposition 4).
    pub fn has_collapsed(&self) -> bool {
        self.positive.has_collapsed() || self.negative.has_collapsed()
    }

    /// Estimate the q-quantile (Algorithm 2, generalized to ℝ).
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        let n = self.count();
        if n == 0 {
            return Err(SketchError::Empty);
        }
        let rank = target_rank(q, n);
        let neg = self.negative.total_count() as f64;
        let raw = if rank < neg {
            // Walk the negative store from the most negative value, i.e.
            // from its largest |x| bucket index downward.
            let idx = self
                .negative
                .key_at_rank_descending(rank)
                .expect("negative store non-empty");
            -self.mapping.value(idx)
        } else if rank < neg + self.zero_count as f64 {
            0.0
        } else {
            let idx = self
                .positive
                .key_at_rank(rank - neg - self.zero_count as f64)
                .expect("rank < total implies positive store non-empty");
            self.mapping.value(idx)
        };
        // The true quantile lies in [min, max]; clamping can only reduce
        // the error of the bucket representative.
        Ok(raw.clamp(self.min, self.max))
    }

    /// Estimate several quantiles.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Hard bounds on the q-quantile: the boundaries of the bucket the
    /// quantile falls in, intersected with the tracked `[min, max]`.
    ///
    /// Unlike [`Self::quantile`]'s point estimate (which is α-accurate),
    /// the returned interval *contains the true quantile with certainty*
    /// as long as its bucket has not been collapsed — useful for
    /// alerting logic that must not fire on sketch error.
    pub fn quantile_bounds(&self, q: f64) -> Result<(f64, f64), SketchError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::InvalidQuantile(q));
        }
        let n = self.count();
        if n == 0 {
            return Err(SketchError::Empty);
        }
        let rank = target_rank(q, n);
        let neg = self.negative.total_count() as f64;
        let (lo, hi) = if rank < neg {
            let idx = self
                .negative
                .key_at_rank_descending(rank)
                .expect("negative store non-empty");
            (-self.mapping.upper_bound(idx), -self.mapping.lower_bound(idx))
        } else if rank < neg + self.zero_count as f64 {
            (0.0, 0.0)
        } else {
            let idx = self
                .positive
                .key_at_rank(rank - neg - self.zero_count as f64)
                .expect("rank < total implies positive store non-empty");
            (self.mapping.lower_bound(idx), self.mapping.upper_bound(idx))
        };
        Ok((lo.max(self.min), hi.min(self.max)))
    }

    /// Merge another sketch into this one (Algorithm 4). Bucket-exact: the
    /// result is identical to a single sketch over the union of the inputs.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        if !self.mapping.is_mergeable_with(&other.mapping) {
            return Err(SketchError::IncompatibleMerge(format!(
                "mapping {} (α={}) vs {} (α={})",
                self.mapping.name(),
                self.mapping.relative_accuracy(),
                other.mapping.name(),
                other.mapping.relative_accuracy()
            )));
        }
        self.positive.merge_from(&other.positive);
        self.negative.merge_from(&other.negative);
        self.zero_count += other.zero_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        Ok(())
    }

    /// Reset to empty, retaining allocations.
    pub fn clear(&mut self) {
        self.positive.clear();
        self.negative.clear();
        self.zero_count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.sum = 0.0;
    }

    /// Structural memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            - std::mem::size_of::<SP>()
            - std::mem::size_of::<SN>()
            + self.positive.memory_bytes()
            + self.negative.memory_bytes()
    }

    /// Access the positive-value store (read-only; used by the codec and
    /// the evaluation harness).
    pub fn positive_store(&self) -> &SP {
        &self.positive
    }

    /// Access the negative-value store.
    pub fn negative_store(&self) -> &SN {
        &self.negative
    }

    /// Internal: bulk-load decoded state. Used by the codec.
    pub(crate) fn load(
        &mut self,
        zero_count: u64,
        min: f64,
        max: f64,
        sum: f64,
        pos_bins: &[(i32, u64)],
        neg_bins: &[(i32, u64)],
    ) {
        for &(i, c) in pos_bins.iter().rev() {
            self.positive.add_n(i, c);
        }
        for &(i, c) in neg_bins {
            self.negative.add_n(i, c);
        }
        self.zero_count = zero_count;
        self.min = min;
        self.max = max;
        self.sum = sum;
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> Extend<f64> for DDSketch<M, SP, SN> {
    /// Bulk insertion; values the sketch cannot represent (NaN, ±∞,
    /// beyond the indexable range) are silently skipped — use [`Self::add`]
    /// when per-value errors matter.
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            let _ = self.add(v);
        }
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> QuantileSketch for DDSketch<M, SP, SN> {
    fn add(&mut self, value: f64) -> Result<(), SketchError> {
        DDSketch::add(self, value)
    }

    fn add_n(&mut self, value: f64, count: u64) -> Result<(), SketchError> {
        DDSketch::add_n(self, value, count)
    }

    fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        DDSketch::quantile(self, q)
    }

    fn count(&self) -> u64 {
        DDSketch::count(self)
    }

    fn name(&self) -> &'static str {
        match self.mapping.kind() {
            MappingKind::Logarithmic => "DDSketch",
            _ => "DDSketch (fast)",
        }
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> MergeableSketch for DDSketch<M, SP, SN> {
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        DDSketch::merge_from(self, other)
    }
}

impl<M: IndexMapping, SP: Store, SN: Store> MemoryFootprint for DDSketch<M, SP, SN> {
    fn memory_bytes(&self) -> usize {
        DDSketch::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::mapping::IndexMapping;
    use crate::presets::*;
    use crate::store::Store;
    use sketch_core::SketchError;

    #[test]
    fn empty_sketch_behaviour() {
        let s = unbounded(0.01).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.average(), None);
        assert!(matches!(s.quantile(0.5), Err(SketchError::Empty)));
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut s = unbounded(0.01).unwrap();
        assert!(s.add(f64::NAN).is_err());
        assert!(s.add(f64::INFINITY).is_err());
        assert!(s.add(f64::NEG_INFINITY).is_err());
        assert!(s.quantile(1.5).is_err());
        assert!(s.quantile(-0.5).is_err());
        assert!(s.quantile(f64::NAN).is_err());
        assert!(s.is_empty(), "failed adds must not change state");
    }

    #[test]
    fn single_value() {
        let mut s = unbounded(0.01).unwrap();
        s.add(42.0).unwrap();
        assert_eq!(s.count(), 1);
        for q in [0.0, 0.5, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!((v - 42.0).abs() <= 0.42, "q={q}: {v}");
        }
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
        assert_eq!(s.sum(), 42.0);
    }

    #[test]
    fn alpha_accuracy_on_a_known_stream() {
        let alpha = 0.01;
        let mut s = unbounded(alpha).unwrap();
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64).powf(1.3)).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(rel <= alpha + 1e-9, "q={q}: est {est} vs actual {actual} rel {rel}");
        }
    }

    #[test]
    fn zero_and_tiny_values_use_the_zero_bucket() {
        let mut s = unbounded(0.01).unwrap();
        s.add(0.0).unwrap();
        s.add(1e-320).unwrap(); // subnormal → zero bucket
        s.add(-0.0).unwrap();
        assert_eq!(s.zero_count(), 3);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
    }

    #[test]
    fn negative_values_are_alpha_accurate() {
        let alpha = 0.01;
        let mut s = unbounded(alpha).unwrap();
        let mut values: Vec<f64> = (1..=1000).map(|i| -(i as f64)).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual.abs();
            assert!(rel <= alpha + 1e-9, "q={q}: est {est} vs actual {actual}");
        }
    }

    #[test]
    fn mixed_sign_stream_orders_correctly() {
        let mut s = unbounded(0.01).unwrap();
        for v in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            s.add(v).unwrap();
        }
        // q = 0 → most negative; q = 1 → most positive; q = 0.5 → zero.
        assert!(s.quantile(0.0).unwrap() <= -99.0);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
        assert!(s.quantile(1.0).unwrap() >= 99.0);
        // Quantile estimates must be monotone in q.
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=20 {
            let v = s.quantile(k as f64 / 20.0).unwrap();
            assert!(v >= prev, "quantiles must be monotone: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn weighted_add_matches_repeated_add() {
        let mut a = unbounded(0.01).unwrap();
        let mut b = unbounded(0.01).unwrap();
        a.add_n(3.5, 100).unwrap();
        for _ in 0..100 {
            b.add(3.5).unwrap();
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(
            a.positive_store().bins_ascending(),
            b.positive_store().bins_ascending()
        );
        assert_eq!(a.sum(), b.sum());
    }

    #[test]
    fn delete_reverses_add() {
        let mut s = unbounded(0.01).unwrap();
        s.add(5.0).unwrap();
        s.add(10.0).unwrap();
        assert!(s.delete(5.0));
        assert_eq!(s.count(), 1);
        assert!((s.sum() - 10.0).abs() < 1e-12);
        // Deleting a value whose bucket is empty fails cleanly.
        assert!(!s.delete(5.0));
        assert!(!s.delete(1e9));
        // Zero-bucket deletion.
        s.add(0.0).unwrap();
        assert!(s.delete(0.0));
        assert!(!s.delete(0.0));
    }

    #[test]
    fn merge_is_bucket_exact() {
        let mut a = unbounded(0.01).unwrap();
        let mut b = unbounded(0.01).unwrap();
        let mut union = unbounded(0.01).unwrap();
        for i in 1..500 {
            let v = i as f64 * 0.37;
            a.add(v).unwrap();
            union.add(v).unwrap();
        }
        for i in 1..300 {
            let v = i as f64 * 11.1;
            b.add(v).unwrap();
            union.add(v).unwrap();
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), union.count());
        assert_eq!(
            a.positive_store().bins_ascending(),
            union.positive_store().bins_ascending()
        );
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
        assert!((a.sum() - union.sum()).abs() < 1e-6 * union.sum().abs());
    }

    #[test]
    fn merge_rejects_mismatched_accuracy() {
        let mut a = unbounded(0.01).unwrap();
        let b = unbounded(0.02).unwrap();
        assert!(matches!(
            a.merge_from(&b),
            Err(SketchError::IncompatibleMerge(_))
        ));
    }

    #[test]
    fn clamping_keeps_estimates_inside_observed_range() {
        let mut s = unbounded(0.05).unwrap();
        s.add(100.0).unwrap();
        let v = s.quantile(1.0).unwrap();
        assert!(v <= 100.0, "estimate {v} must not exceed the observed max");
        let v = s.quantile(0.0).unwrap();
        assert!(v >= 100.0 - 100.0 * 0.05 - 1e-9);
    }

    #[test]
    fn bounded_sketch_keeps_upper_quantiles_after_collapse() {
        // Proposition 4: with m buckets, quantiles q with
        // x₁ ≤ x_q·γ^(m−1) stay accurate. Build a stream wide enough to
        // force collapse and check the upper half.
        let alpha = 0.01;
        let mut s = logarithmic_collapsing(alpha, 128).unwrap();
        let mut values = Vec::new();
        for i in 0..50_000 {
            // Span many orders of magnitude so the 128-bucket cap collapses.
            let v = 1.0001_f64.powi(i % 30_000) * (1.0 + (i % 7) as f64);
            s.add(v).unwrap();
            values.push(v);
        }
        assert!(s.has_collapsed());
        values.sort_by(f64::total_cmp);
        for q in [0.9, 0.95, 0.99, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let est = s.quantile(q).unwrap();
            let rel = (est - actual).abs() / actual;
            assert!(rel <= alpha + 1e-9, "q={q}: rel {rel}");
        }
        assert_eq!(s.count(), 50_000, "collapse must not lose counts");
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = fast(0.01, 1024).unwrap();
        for i in 1..100 {
            s.add(i as f64).unwrap();
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.num_bins(), 0);
        assert!(s.quantile(0.5).is_err());
        s.add(7.0).unwrap();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn rejects_values_beyond_indexable_range() {
        let mut s = unbounded(1e-9).unwrap(); // tight α → narrow range
        let too_big = s.mapping().max_indexable_value() * 2.0;
        assert!(s.add(too_big).is_err());
        assert!(s.add(-too_big).is_err());
    }

    #[test]
    fn quantile_bounds_contain_the_true_quantile() {
        let mut s = unbounded(0.01).unwrap();
        let mut values: Vec<f64> = (1..=5000).map(|i| (i as f64) * 1.7).collect();
        for &v in &values {
            s.add(v).unwrap();
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let actual = values[sketch_core::lower_quantile_index(q, values.len())];
            let (lo, hi) = s.quantile_bounds(q).unwrap();
            assert!(
                lo <= actual && actual <= hi,
                "q={q}: true {actual} outside [{lo}, {hi}]"
            );
            // The point estimate also lies inside its own bounds.
            let est = s.quantile(q).unwrap();
            assert!(lo <= est && est <= hi);
        }
    }

    #[test]
    fn quantile_bounds_mixed_signs_and_zero() {
        let mut s = unbounded(0.01).unwrap();
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            s.add(v).unwrap();
        }
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert_eq!((lo, hi), (0.0, 0.0), "zero bucket is exact");
        let (lo, hi) = s.quantile_bounds(0.0).unwrap();
        assert!(lo <= -10.0 && hi >= -10.0 * 1.01);
        assert!(s.quantile_bounds(2.0).is_err());
        assert!(unbounded(0.01).unwrap().quantile_bounds(0.5).is_err());
    }

    #[test]
    fn extend_skips_unsupported_values() {
        let mut s = unbounded(0.01).unwrap();
        s.extend([1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 6.0);
    }

    #[test]
    fn average_and_sum_are_exact() {
        let mut s = unbounded(0.01).unwrap();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.add(v).unwrap();
        }
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.average(), Some(2.5));
    }
}
